"""The rule pack: determinism (DET), concurrency (CONC), hygiene (HYG).

Every checker is an :class:`ast.NodeVisitor` over one parsed file.  The
rules are deliberately *syntactic and conservative*: they flag the
patterns this codebase has promised never to rely on (wall-clock reads,
unseeded entropy, hash-ordered iteration, fork-shared mutable globals),
and the escape hatches — per-rule ``boundary`` module patterns, inline
``# repro: allow[RULE]`` suppressions, and the committed baseline — are
where human judgement records the exceptions.

Known, documented limitations (all err toward silence, not noise):

* DET002 only recognises *textually evident* set expressions
  (``set(..)``, ``frozenset(..)``, set literals, set comprehensions);
  a function returning a set is invisible to it.
* CONC001 is per-module: a mutable global mutated from *another*
  module's function is not seen.
* DET001 flags ``from time import time``-style imports at the import
  line, because the bare call sites are indistinguishable afterwards.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass

from repro.lint.findings import ERROR, WARNING, Finding


@dataclass(frozen=True)
class Rule:
    """Metadata for one lint rule."""

    id: str
    name: str
    severity: str
    summary: str
    rationale: str
    #: fnmatch patterns (posix, relative to the scan root) where the
    #: rule does not apply — the sanctioned boundary modules.
    boundary: tuple[str, ...] = ()


def _dotted(node: ast.AST) -> str | None:
    """``a.b.c`` for an Attribute/Name chain, else None."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _has_suffix(dotted: str, banned: str) -> bool:
    """Segment-aware suffix match (``x.time.time`` matches ``time.time``
    but ``mytime.time`` does not match it)."""
    dp = dotted.split(".")
    bp = banned.split(".")
    return len(dp) >= len(bp) and dp[-len(bp):] == bp


class Checker(ast.NodeVisitor):
    """Base class: one rule, one file, collected findings."""

    rule: Rule

    def __init__(self, ctx) -> None:
        self.ctx = ctx
        self.findings: list[Finding] = []

    def run(self) -> list[Finding]:
        self.visit(self.ctx.tree)
        return self.findings

    def emit(self, node: ast.AST, message: str) -> None:
        self.findings.append(self.ctx.finding(self.rule, node, message))


# ---------------------------------------------------------------------------
# DET001 — wall-clock / entropy reads


_WALL_CLOCK = (
    "time.time", "time.time_ns", "time.monotonic", "time.monotonic_ns",
    "time.perf_counter", "time.perf_counter_ns",
    "datetime.now", "datetime.utcnow", "datetime.today", "date.today",
)
_ENTROPY = (
    "uuid.uuid1", "uuid.uuid4", "os.urandom", "os.getrandom",
)
_RANDOM_FUNCS = frozenset({
    "random", "randint", "randrange", "randbytes", "choice", "choices",
    "shuffle", "sample", "uniform", "seed", "getrandbits", "gauss",
    "normalvariate", "lognormvariate", "expovariate", "betavariate",
    "gammavariate", "triangular", "vonmisesvariate", "paretovariate",
    "weibullvariate",
})
_FROM_IMPORT_BANS = {
    "time": {"time", "time_ns", "monotonic", "monotonic_ns",
             "perf_counter", "perf_counter_ns"},
    "uuid": {"uuid1", "uuid4"},
    "os": {"urandom", "getrandom"},
    "random": _RANDOM_FUNCS | {"SystemRandom"},
}


class WallClockEntropy(Checker):
    rule = Rule(
        id="DET001",
        name="wall-clock-entropy",
        severity=ERROR,
        summary="wall-clock or OS-entropy read outside a sanctioned boundary",
        rationale=(
            "Scan results must be a pure function of (seed, scale, settings). "
            "time.time/datetime.now/uuid4/os.urandom/module-level random.* "
            "smuggle the host's clock or entropy pool into outputs; use the "
            "SimClock for time and an explicitly seeded random.Random(seed) "
            "for randomness.  Wall-time observability lives behind the "
            "telemetry span boundary."
        ),
        boundary=("*/simtime.py", "*/telemetry/spans.py", "*/faults/*"),
    )

    def visit_Call(self, node: ast.Call) -> None:
        dotted = _dotted(node.func)
        if dotted:
            parts = dotted.split(".")
            if parts[0] == "secrets":
                self.emit(node, f"{dotted}() draws OS entropy (secrets module)")
            elif any(_has_suffix(dotted, b) for b in _WALL_CLOCK):
                self.emit(node, f"{dotted}() reads the wall clock; "
                                "use the SimClock")
            elif any(_has_suffix(dotted, b) for b in _ENTROPY):
                self.emit(node, f"{dotted}() draws OS entropy; derive values "
                                "from the campaign seed")
            elif _has_suffix(dotted, "random.SystemRandom"):
                self.emit(node, "random.SystemRandom draws OS entropy")
            elif len(parts) >= 2 and parts[-2] == "random" \
                    and parts[-1] in _RANDOM_FUNCS:
                self.emit(node, f"{dotted}() uses the shared module-level "
                                "generator; use a seeded random.Random(seed)")
        if self._is_unseeded_random(node, dotted):
            self.emit(node, "Random() without a seed argument is "
                            "entropy-seeded; pass an explicit seed")
        self.generic_visit(node)

    @staticmethod
    def _is_unseeded_random(node: ast.Call, dotted: str | None) -> bool:
        if node.args or node.keywords:
            return False
        if dotted is not None and _has_suffix(dotted, "random.Random"):
            return True
        return isinstance(node.func, ast.Name) and node.func.id == "Random"

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        module = node.module or ""
        if module == "secrets":
            self.emit(node, "importing from secrets (OS entropy)")
        banned = _FROM_IMPORT_BANS.get(module, ())
        for alias in node.names:
            if alias.name in banned:
                self.emit(node, f"'from {module} import {alias.name}' hides a "
                                "wall-clock/entropy call behind a bare name")
        self.generic_visit(node)


# ---------------------------------------------------------------------------
# DET002 — hash-ordered iteration


def _is_set_expr(node: ast.AST) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id in ("set", "frozenset")
        )


_SET_ORDER_MSG = (
    "iteration order of a set is hash-dependent (PYTHONHASHSEED); "
    "wrap in sorted(...) before the order can reach results"
)


class UnorderedIteration(Checker):
    rule = Rule(
        id="DET002",
        name="unordered-iteration",
        severity=ERROR,
        summary="iterating a set/frozenset without sorted(...)",
        rationale=(
            "Set iteration order depends on insertion history and, for "
            "strings, on per-process hash randomisation.  Any loop, "
            "comprehension, or list()/tuple()/join() over a set can leak "
            "that order into yielded values, accumulated floats, or dict "
            "insertion order that later rounds of the pipeline observe.  "
            "Order-insensitive reductions over *sets being built* "
            "(set comprehensions) are exempt; everything else must sort."
        ),
    )

    def visit_For(self, node: ast.For) -> None:
        if _is_set_expr(node.iter):
            self.emit(node.iter, _SET_ORDER_MSG)
        self.generic_visit(node)

    def _check_generators(self, node) -> None:
        for gen in node.generators:
            if _is_set_expr(gen.iter):
                self.emit(gen.iter, _SET_ORDER_MSG)
        self.generic_visit(node)

    # Set comprehensions are deliberately absent: a set built from a set
    # is order-insensitive by construction.
    visit_GeneratorExp = _check_generators
    visit_ListComp = _check_generators
    visit_DictComp = _check_generators

    def visit_Call(self, node: ast.Call) -> None:
        materialises = (
            isinstance(node.func, ast.Name)
            and node.func.id in ("list", "tuple", "enumerate", "iter")
        ) or (
            isinstance(node.func, ast.Attribute) and node.func.attr == "join"
        )
        if materialises and node.args and _is_set_expr(node.args[0]):
            self.emit(node.args[0], _SET_ORDER_MSG)
        self.generic_visit(node)


# ---------------------------------------------------------------------------
# DET003 — environment / filesystem-order reads


_FS_CALLS = ("os.listdir", "os.scandir", "os.walk", "glob.glob", "glob.iglob")
_FS_METHODS = frozenset({"iterdir", "glob", "rglob"})


class EnvFilesystemOrder(Checker):
    rule = Rule(
        id="DET003",
        name="env-fs-order",
        severity=ERROR,
        summary="os.environ read or unsorted directory listing",
        rationale=(
            "os.listdir/glob/Path.iterdir return entries in filesystem "
            "order, which differs across machines and runs — wrap the "
            "listing in sorted(...).  os.environ/os.getenv make behaviour "
            "depend on invisible host state; configuration must arrive "
            "through explicit settings objects or CLI flags."
        ),
    )

    def visit_Call(self, node: ast.Call) -> None:
        dotted = _dotted(node.func)
        if dotted and _has_suffix(dotted, "os.getenv"):
            self.emit(node, "os.getenv() reads hidden host state; take "
                            "configuration explicitly")
        elif dotted and any(_has_suffix(dotted, b) for b in _FS_CALLS):
            if not self.ctx.has_sorted_ancestor(node):
                self.emit(node, f"{dotted}() yields filesystem order; "
                                "wrap in sorted(...)")
        elif (
            isinstance(node.func, ast.Attribute)
            and node.func.attr in _FS_METHODS
            and not self.ctx.has_sorted_ancestor(node)
        ):
            self.emit(node, f".{node.func.attr}() yields filesystem order; "
                            "wrap in sorted(...)")
        self.generic_visit(node)

    def visit_Attribute(self, node: ast.Attribute) -> None:
        dotted = _dotted(node)
        if dotted and _has_suffix(dotted, "os.environ"):
            self.emit(node, "os.environ reads hidden host state; take "
                            "configuration explicitly")
        self.generic_visit(node)


# ---------------------------------------------------------------------------
# CONC001 — fork-shared module-level mutable state


_MUTATOR_METHODS = frozenset({
    "append", "extend", "insert", "add", "update", "clear", "remove",
    "discard", "pop", "popitem", "setdefault", "sort", "reverse",
})


def _is_mutable_value(node: ast.AST) -> bool:
    return isinstance(node, (
        ast.List, ast.Dict, ast.Set,
        ast.ListComp, ast.DictComp, ast.SetComp,
        ast.Call,
    ))


def module_mutable_candidates(tree: ast.Module) -> dict[str, int]:
    """Module-level names bound to mutable values → definition line.

    Shared with the whole-program fork-safety pass (CONC101), which
    needs the same candidate set per module to locate mutation sites
    reachable from worker entry points.
    """
    candidates: dict[str, int] = {}
    for stmt in tree.body:
        targets: list[ast.expr] = []
        if isinstance(stmt, ast.Assign):
            targets = stmt.targets
            value = stmt.value
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            targets = [stmt.target]
            value = stmt.value
        else:
            continue
        if not _is_mutable_value(value):
            continue
        for target in targets:
            if isinstance(target, ast.Name):
                candidates[target.id] = stmt.lineno
    return candidates


def function_mutation_sites(
    func: ast.AST, candidates: dict[str, int]
) -> list[tuple[ast.AST, str, str]]:
    """(node, global-name, message) for each mutation of a module-level
    mutable candidate inside one function body.

    Names shadowed by parameters or local assignment are excluded; a
    ``global`` declaration re-exposes them.  Shared between the per-file
    CONC001 checker and the whole-program CONC101 reachability pass.
    """
    args = func.args
    local = {a.arg for a in (
        args.posonlyargs + args.args + args.kwonlyargs
    )}
    if args.vararg:
        local.add(args.vararg.arg)
    if args.kwarg:
        local.add(args.kwarg.arg)
    declared_global: set[str] = set()
    for node in ast.walk(func):
        if isinstance(node, ast.Global):
            declared_global.update(node.names)
        elif isinstance(node, ast.Name) and isinstance(node.ctx, ast.Store):
            local.add(node.id)
    local -= declared_global

    def is_target(name: str) -> bool:
        return name in candidates and name not in local

    sites: list[tuple[ast.AST, str, str]] = []
    for node in ast.walk(func):
        if isinstance(node, ast.Global):
            for name in node.names:
                if name in candidates:
                    sites.append((node, name,
                                  f"'global {name}' rebinds module-"
                                  "level mutable state from a function"))
        elif isinstance(node, ast.Call):
            f = node.func
            if (
                isinstance(f, ast.Attribute)
                and f.attr in _MUTATOR_METHODS
                and isinstance(f.value, ast.Name)
                and is_target(f.value.id)
            ):
                sites.append((node, f.value.id,
                              f"mutates module-level '{f.value.id}' "
                              f"via .{f.attr}() (fork-shared state)"))
        elif isinstance(node, (ast.Assign, ast.AugAssign)):
            targets = node.targets if isinstance(node, ast.Assign) \
                else [node.target]
            for target in targets:
                base = None
                if isinstance(target, (ast.Subscript, ast.Attribute)):
                    base = target.value
                if isinstance(base, ast.Name) and is_target(base.id):
                    sites.append((node, base.id,
                                  "mutates module-level "
                                  f"'{base.id}' in place "
                                  "(fork-shared state)"))
        elif isinstance(node, ast.Delete):
            for target in node.targets:
                if (
                    isinstance(target, ast.Subscript)
                    and isinstance(target.value, ast.Name)
                    and is_target(target.value.id)
                ):
                    sites.append((node, target.value.id,
                                  "deletes from module-level "
                                  f"'{target.value.id}' "
                                  "(fork-shared state)"))
    return sites


class ModuleStateMutation(Checker):
    rule = Rule(
        id="CONC001",
        name="module-state-mutation",
        severity=ERROR,
        summary="module-level mutable object mutated from function scope",
        rationale=(
            "Shard workers inherit module globals by fork; a dict/list/"
            "set/instance at module scope that functions mutate diverges "
            "silently between the parent and each worker, so results come "
            "to depend on which process ran what.  State must be passed "
            "explicitly and worker contributions shipped back as explicit "
            "deltas (the telemetry owned-snapshot pattern)."
        ),
    )

    def run(self) -> list[Finding]:
        candidates = module_mutable_candidates(self.ctx.tree)
        if candidates:
            for func in ast.walk(self.ctx.tree):
                if isinstance(func, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    for node, _name, message in function_mutation_sites(
                        func, candidates
                    ):
                        self.emit(node, message)
        return self.findings


# ---------------------------------------------------------------------------
# CONC002 — process-control calls outside the fault plane


_PROCESS_CALLS = (
    "os._exit", "os.fork", "os.forkpty", "os.abort", "os.kill",
    "os.execv", "os.execve", "os.execvp", "os.execvpe",
    "signal.signal", "signal.raise_signal",
)


class ProcessControl(Checker):
    rule = Rule(
        id="CONC002",
        name="process-control",
        severity=ERROR,
        summary="os._exit/fork/kill-style call outside faults/",
        rationale=(
            "Raw process control bypasses every cleanup path: os._exit "
            "skips atexit/finally (checkpoints never flush), bare fork "
            "duplicates locks and buffers mid-state.  Only the fault-"
            "injection plane may model process death, and only behind a "
            "FaultPlan decision."
        ),
        boundary=("*/faults/*",),
    )

    def visit_Call(self, node: ast.Call) -> None:
        dotted = _dotted(node.func)
        if dotted:
            for banned in _PROCESS_CALLS:
                if _has_suffix(dotted, banned):
                    self.emit(node, f"{dotted}() is fork/exit-unsafe outside "
                                    "the fault plane")
                    break
        self.generic_visit(node)


# ---------------------------------------------------------------------------
# HYG001 — mutable default arguments


_MUTABLE_FACTORY_NAMES = frozenset({
    "list", "dict", "set", "bytearray", "defaultdict", "Counter", "deque",
})


def _is_mutable_default(node: ast.AST) -> bool:
    if isinstance(node, (ast.List, ast.Dict, ast.Set,
                         ast.ListComp, ast.DictComp, ast.SetComp)):
        return True
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id in _MUTABLE_FACTORY_NAMES
    )


class MutableDefaultArg(Checker):
    rule = Rule(
        id="HYG001",
        name="mutable-default-arg",
        severity=WARNING,
        summary="mutable default argument",
        rationale=(
            "Default values are evaluated once at def time; a [] or {} "
            "default is shared by every call and across every scan in the "
            "process, turning call history into hidden state.  Use None "
            "plus an in-body default, or dataclasses.field(default_factory)."
        ),
    )

    def _check(self, node) -> None:
        defaults = list(node.args.defaults)
        defaults += [d for d in node.args.kw_defaults if d is not None]
        for default in defaults:
            if _is_mutable_default(default):
                self.emit(default, "mutable default is evaluated once and "
                                   "shared across calls; use None")
        self.generic_visit(node)

    visit_FunctionDef = _check
    visit_AsyncFunctionDef = _check
    visit_Lambda = _check


# ---------------------------------------------------------------------------
# HYG002 — exception hygiene


def _handler_names(node: ast.ExceptHandler) -> list[str]:
    if isinstance(node.type, ast.Name):
        return [node.type.id]
    if isinstance(node.type, ast.Tuple):
        return [e.id for e in node.type.elts if isinstance(e, ast.Name)]
    return []


class ExceptHygiene(Checker):
    rule = Rule(
        id="HYG002",
        name="except-hygiene",
        severity=WARNING,
        summary="bare except / overbroad except Exception",
        rationale=(
            "A bare `except:` or `except Exception` in scan, merge, or "
            "recovery paths can swallow WorkerCrashed and CheckpointError "
            "and convert a crash into silently wrong results.  Catch the "
            "specific errors.py hierarchy type (ReproError subclasses), "
            "or re-raise with a bare `raise`."
        ),
    )

    def visit_ExceptHandler(self, node: ast.ExceptHandler) -> None:
        if node.type is None:
            self.emit(node, "bare 'except:' catches SystemExit/"
                            "KeyboardInterrupt too; name the errors.py type")
        else:
            names = _handler_names(node)
            if "Exception" in names or "BaseException" in names:
                reraises = any(
                    isinstance(n, ast.Raise) and n.exc is None
                    for n in ast.walk(node)
                )
                if not reraises:
                    self.emit(node, "'except Exception' is overbroad; catch "
                                    "the specific errors.py hierarchy type "
                                    "or re-raise")
        self.generic_visit(node)


#: Checker classes in rule-id order; the registry is derived from this
#: tuple at import time (no function-scope mutation of module state).
_CHECKERS: tuple[type[Checker], ...] = (
    WallClockEntropy,
    UnorderedIteration,
    EnvFilesystemOrder,
    ModuleStateMutation,
    ProcessControl,
    MutableDefaultArg,
    ExceptHygiene,
)

# ---------------------------------------------------------------------------
# Whole-program rules (graph passes — no per-file Checker class; they
# run over the resolved import/call graph in engine.run()).


GRAPH_RULE_LIST: tuple[Rule, ...] = (
    Rule(
        id="DET101",
        name="interproc-taint",
        severity=ERROR,
        summary="wall-clock/entropy/env value reaches a contract sink "
                "through the call graph",
        rationale=(
            "A time.time()/random.*/os.environ read is harmless in a "
            "display path but poison in anything persisted: checkpoint "
            "and snapshot encoders, result_digest, the canonical event "
            "stream, merged telemetry totals.  The per-file DET rules "
            "cannot see a wall value laundered through two calls; this "
            "pass propagates taint along resolved call edges and flags "
            "only functions whose taint can actually reach a registered "
            "sink, with the source→…→sink path as the witness."
        ),
    ),
    Rule(
        id="DET102",
        name="cross-module-set-order",
        severity=ERROR,
        summary="unsorted iteration over a set returned by a callee",
        rationale=(
            "DET002 only sees textually evident set expressions; a "
            "function whose return type is a set hides the hazard from "
            "it.  This pass marks set-returning functions across the "
            "whole program and flags call sites that iterate or "
            "materialise their result without sorted(...)."
        ),
    ),
    Rule(
        id="CONC101",
        name="fork-reachable-mutation",
        severity=ERROR,
        summary="module-level mutable state mutated on a path reachable "
                "from a sharded-worker entry point",
        rationale=(
            "CONC001 sees a mutation but not who runs it.  Workers "
            "inherit module globals by fork; only mutations on call "
            "paths reachable from worker entry points (sharding task "
            "functions, heartbeat paths) actually diverge between "
            "processes.  This pass walks the call graph from those "
            "entries and flags reachable mutation sites, witnessed by "
            "the entry→…→mutation path."
        ),
    ),
    Rule(
        id="LAYER001",
        name="layering",
        severity=ERROR,
        summary="import that violates the declared layer DAG",
        rationale=(
            "The package spine (netmodel → dns/quic/masque → relay → "
            "atlas/worldgen → scan → analysis/archive) plus leaf planes "
            "(telemetry, faults, monitor, lint) is what keeps the "
            "determinism boundary auditable: a lower layer importing a "
            "higher one (or a utility plane reaching into the spine) "
            "couples modules the contract treats as independent.  "
            "Allowed edges are declared in lint/graph.py; everything "
            "else is a violation."
        ),
    ),
    Rule(
        id="CONTRACT001",
        name="contract-drift",
        severity=WARNING,
        summary="telemetry counter or event-kind drift between emitters, "
                "schema, readers and tests",
        rationale=(
            "The event schema and telemetry counter names are cross-"
            "module contracts: an emitted kind missing from EVENT_KINDS "
            "(or never rendered by the monitor), a declared kind nobody "
            "emits, a counter name used with two different label sets, "
            "or a counter asserted in tests that no runtime path "
            "increments — all drift silently because each side "
            "type-checks alone.  This pass cross-references all four "
            "surfaces."
        ),
    ),
)

GRAPH_RULES: dict[str, Rule] = {r.id: r for r in GRAPH_RULE_LIST}

RULES: dict[str, Rule] = {
    **{c.rule.id: c.rule for c in _CHECKERS},
    **GRAPH_RULES,
}
CHECKERS: dict[str, type[Checker]] = {c.rule.id: c for c in _CHECKERS}
