"""Interprocedural passes over the :class:`~repro.lint.graph.ProgramGraph`.

Three analyses, all witness-carrying:

* :func:`check_taint` (DET101) — a function is *taint-carrying* when it
  reads the wall clock/OS entropy/environment itself or transitively
  calls one that does.  A finding fires only when a registered contract
  sink (:data:`DEFAULT_SINKS`) can reach such a read through its call
  tree; the finding is anchored at the *source site* (that is where the
  fix or the justification belongs) and its witness lists the
  ``sink → … → source`` chain reversed into reading order.
* :func:`check_fork_safety` (CONC101) — mutation sites of module-level
  mutable globals that are reachable from sharded-worker entry points
  (:data:`DEFAULT_ENTRY_POINTS` plus any ``pool.submit(fn, ...)``
  target discovered in the tree).
* :func:`check_set_order` (DET102) — call sites that iterate or
  materialise the result of a *set-returning* callee without
  ``sorted(...)``, either directly (``for x in f():``) or through a
  local variable (``xs = f()`` … ``for x in xs:``).

The taint lattice is function-granular (tainted or not); argument
dataflow is not tracked — a caller computing a wall value and passing
it *into* a sink as data is invisible here and remains the per-file
DET001 rule's job at the read site.  See DESIGN.md §13.
"""

from __future__ import annotations

from repro.lint.findings import Finding
from repro.lint.graph import ProgramGraph
from repro.lint.rules import Rule

#: Contract sinks: the functions whose output the determinism contract
#: covers (checkpoints, snapshots, digests, the canonical event stream,
#: merged telemetry).  fn id → short description used in messages.
DEFAULT_SINKS: dict[str, str] = {
    "repro.scan.checkpoint:encode_result": "checkpoint encoder",
    "repro.scan.checkpoint:CampaignCheckpointer.save": "checkpoint writer",
    "repro.scan.incremental:encode_snapshot": "snapshot encoder",
    "repro.scan.incremental:SnapshotStore.save": "snapshot writer",
    "repro.scan.incremental:result_digest": "result digest",
    "repro.scan.campaign:ScanCampaign._month_payload":
        "campaign month payload",
    "repro.monitor.events:EventLog.emit": "event stream record",
    "repro.monitor.events:canonical_lines": "canonical event stream",
    "repro.telemetry.registry:MetricsRegistry.absorb":
        "merged telemetry totals",
}

#: Known sharded-worker entry points; ``pool.submit(fn, ...)`` sites
#: found during extraction extend this list dynamically.
DEFAULT_ENTRY_POINTS: tuple[tuple[str, str], ...] = (
    ("repro.scan.sharding", "_run_shard"),
)


def _dedupe_anchor(
    best: dict, key: tuple, distance: int, origin: str, path: tuple
) -> None:
    """Keep the shortest (then lexicographically first) chain per site."""
    entry = (distance, origin, path)
    if key not in best or entry < best[key]:
        best[key] = entry


def check_taint(
    graph: ProgramGraph,
    rule: Rule,
    sinks: dict[str, str] | None = None,
) -> list[Finding]:
    """DET101: wall/entropy/env reads reachable from a contract sink."""
    if sinks is None:
        sinks = DEFAULT_SINKS
    best: dict[tuple, tuple] = {}
    sites: dict[tuple, dict] = {}
    owners: dict[tuple, str] = {}
    for sink_id in sorted(sinks):
        reach = graph.reachable_from([sink_id])
        for fn_id, chain in reach.items():
            summary, info = graph.functions[fn_id]
            for source in info.sources:
                key = (summary.path, source["lineno"], source["col"],
                       source["desc"])
                sites[key] = source
                owners[key] = fn_id
                _dedupe_anchor(best, key, len(chain), sink_id, chain)
    findings: list[Finding] = []
    for key in sorted(best):
        distance, sink_id, chain = best[key]
        source = sites[key]
        summary, _info = graph.functions[owners[key]]
        # Witness in reading order: source site, then the call chain
        # from the function containing it up to the sink.
        witness = [
            f"{source['desc']} @ {summary.path}:{source['lineno']}"
        ] + [fn for fn in reversed(chain)]
        hops = len(chain) - 1
        via = "directly" if hops == 0 else f"through {hops} call(s)"
        findings.append(Finding(
            rule=rule.id, path=summary.path, line=source["lineno"],
            col=source["col"], severity=rule.severity,
            message=(f"{source['desc']}; the value can reach contract "
                     f"sink {sink_id} ({sinks[sink_id]}) {via}"),
            content=source["content"], witness=witness,
        ))
    return findings


def entry_points(
    graph: ProgramGraph,
    static: tuple[tuple[str, str], ...] | None = None,
) -> list[str]:
    """Worker entry fn ids: the static registry plus submit() targets."""
    if static is None:
        static = DEFAULT_ENTRY_POINTS
    ids: set[str] = set()
    for module, qname in static:
        fn_id = f"{module}:{qname}"
        if fn_id in graph.functions:
            ids.add(fn_id)
    for summary in graph.summaries.values():
        aliases = graph._alias_maps[summary.module]
        for target in summary.submit_targets:
            name = target["name"]
            if name in summary.functions:
                ids.add(f"{summary.module}:{name}")
            elif name in aliases:
                resolved = graph._resolve_dotted(aliases[name])
                if resolved is not None:
                    ids.add(resolved)
    return sorted(ids)


def check_fork_safety(
    graph: ProgramGraph,
    rule: Rule,
    static_entry_points: tuple[tuple[str, str], ...] | None = None,
) -> list[Finding]:
    """CONC101: module-global mutations reachable from worker entries."""
    entries = entry_points(graph, static_entry_points)
    best: dict[tuple, tuple] = {}
    sites: dict[tuple, dict] = {}
    owners: dict[tuple, str] = {}
    for entry in entries:
        reach = graph.reachable_from([entry])
        for fn_id, chain in reach.items():
            summary, info = graph.functions[fn_id]
            for mutation in info.mutations:
                key = (summary.path, mutation["lineno"], mutation["col"],
                       mutation["message"])
                sites[key] = mutation
                owners[key] = fn_id
                _dedupe_anchor(best, key, len(chain), entry, chain)
    findings: list[Finding] = []
    for key in sorted(best):
        distance, entry, chain = best[key]
        mutation = sites[key]
        summary, _info = graph.functions[owners[key]]
        hops = len(chain) - 1
        via = "directly" if hops == 0 else f"through {hops} call(s)"
        findings.append(Finding(
            rule=rule.id, path=summary.path, line=mutation["lineno"],
            col=mutation["col"], severity=rule.severity,
            message=(f"{mutation['message']}; reachable {via} from "
                     f"forked worker entry point {entry}"),
            content=mutation["content"], witness=list(chain),
        ))
    return findings


def check_set_order(graph: ProgramGraph, rule: Rule) -> list[Finding]:
    """DET102: unsorted iteration over a set-returning callee's result."""
    findings: list[Finding] = []
    seen: set[tuple] = set()
    for fn_id in sorted(graph.call_edges):
        summary, info = graph.functions[fn_id]
        #: local name → set-returning callee it was assigned from.
        set_vars: dict[str, str] = {}
        for callee_id, site, _kind in graph.call_edges[fn_id]:
            _callee_summary, callee_info = graph.functions[callee_id]
            if not callee_info.returns_set:
                continue
            if site["iter_unsorted"]:
                key = (summary.path, site["lineno"], site["col"])
                if key not in seen:
                    seen.add(key)
                    findings.append(Finding(
                        rule=rule.id, path=summary.path,
                        line=site["lineno"], col=site["col"],
                        severity=rule.severity,
                        message=(f"iterating the set returned by "
                                 f"{callee_id} without sorted(...); set "
                                 "order is hash-dependent"),
                        content=site["content"],
                        witness=[fn_id, callee_id],
                    ))
            elif site["assigned_to"]:
                set_vars.setdefault(site["assigned_to"], callee_id)
        for var_iter in info.var_iters:
            callee_id = set_vars.get(var_iter["name"])
            if callee_id is None:
                continue
            key = (summary.path, var_iter["lineno"], var_iter["col"])
            if key in seen:
                continue
            seen.add(key)
            findings.append(Finding(
                rule=rule.id, path=summary.path, line=var_iter["lineno"],
                col=var_iter["col"], severity=rule.severity,
                message=(f"'{var_iter['name']}' holds the set returned "
                         f"by {callee_id}; iterating it without "
                         "sorted(...) leaks hash order"),
                content=var_iter["content"],
                witness=[fn_id, callee_id],
            ))
    return findings
