"""The lint engine: file walking, parsing, suppression, baseline, report.

Pipeline per file: parse → run every applicable rule (skipping rules
whose ``boundary`` patterns match the file) → apply inline
``# repro: allow[RULE-ID] <reason>`` suppressions.  Across files, the
engine applies the committed baseline and folds everything into a
:class:`LintReport` whose ``new_findings`` are the gate: any of them
means the run fails.

Suppression syntax (same line, or a comment-only line directly above)::

    value = time.time()  # repro: allow[DET001] wall-time display only
    # repro: allow[CONC001] content-keyed cache; per-process fork copy
    _CACHE[key] = value
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path, PurePosixPath
from fnmatch import fnmatch

from repro.errors import LintError
from repro.lint.baseline import BaselineEntry, apply_baseline
from repro.lint.findings import (
    STATUS_BASELINED,
    STATUS_NEW,
    STATUS_SUPPRESSED,
    Finding,
)
from repro.lint.rules import CHECKERS, RULES, Rule

REPORT_VERSION = 1

_SUPPRESS_RE = re.compile(
    r"#\s*repro:\s*allow\[([A-Za-z]+\d+)\]\s*(.*?)\s*$"
)


class FileContext:
    """One parsed source file plus the lookups checkers need."""

    def __init__(self, path: str, source: str, tree: ast.Module) -> None:
        self.path = path
        self.source = source
        self.tree = tree
        self.lines = source.splitlines()
        self._parents: dict[int, ast.AST] | None = None

    def finding(self, rule: Rule, node: ast.AST, message: str) -> Finding:
        line = getattr(node, "lineno", 1)
        col = getattr(node, "col_offset", 0)
        content = ""
        if 1 <= line <= len(self.lines):
            content = self.lines[line - 1].strip()
        return Finding(
            rule=rule.id, path=self.path, line=line, col=col,
            severity=rule.severity, message=message, content=content,
        )

    def _parent_map(self) -> dict[int, ast.AST]:
        if self._parents is None:
            parents: dict[int, ast.AST] = {}
            for parent in ast.walk(self.tree):
                for child in ast.iter_child_nodes(parent):
                    parents[id(child)] = parent
            self._parents = parents
        return self._parents

    def has_sorted_ancestor(self, node: ast.AST) -> bool:
        """Whether the node sits (anywhere) inside a ``sorted(...)`` call."""
        parents = self._parent_map()
        current: ast.AST | None = parents.get(id(node))
        while current is not None:
            if (
                isinstance(current, ast.Call)
                and isinstance(current.func, ast.Name)
                and current.func.id == "sorted"
            ):
                return True
            current = parents.get(id(current))
        return False

    def suppressions(self) -> dict[int, list[tuple[str, str]]]:
        """Line number → [(rule-id, reason)] from allow comments."""
        table: dict[int, list[tuple[str, str]]] = {}
        for lineno, text in enumerate(self.lines, start=1):
            match = _SUPPRESS_RE.search(text)
            if match:
                table.setdefault(lineno, []).append(
                    (match.group(1), match.group(2))
                )
        return table


@dataclass
class LintReport:
    """Everything one run produced, ready for text/JSON rendering."""

    root: str
    findings: list[Finding] = field(default_factory=list)
    files_scanned: int = 0
    stale_baseline: list[BaselineEntry] = field(default_factory=list)

    @property
    def new_findings(self) -> list[Finding]:
        return [f for f in self.findings if f.status == STATUS_NEW]

    @property
    def ok(self) -> bool:
        return not self.new_findings

    def count(self, status: str) -> int:
        return sum(1 for f in self.findings if f.status == status)

    def by_rule(self) -> dict[str, int]:
        """New-finding counts per rule (only rules with findings)."""
        counts: dict[str, int] = {}
        for finding in self.new_findings:
            counts[finding.rule] = counts.get(finding.rule, 0) + 1
        return dict(sorted(counts.items()))

    def to_json(self) -> dict:
        return {
            "version": REPORT_VERSION,
            "root": self.root,
            "files_scanned": self.files_scanned,
            "rules": [
                {
                    "id": rule.id,
                    "name": rule.name,
                    "severity": rule.severity,
                    "summary": rule.summary,
                }
                for rule in sorted(RULES.values(), key=lambda r: r.id)
            ],
            "findings": [f.to_json() for f in self.findings],
            "stale_baseline": [e.to_json() for e in self.stale_baseline],
            "summary": {
                "total": len(self.findings),
                "new": self.count(STATUS_NEW),
                "baselined": self.count(STATUS_BASELINED),
                "suppressed": self.count(STATUS_SUPPRESSED),
                "stale_baseline_entries": len(self.stale_baseline),
                "by_rule": self.by_rule(),
            },
        }


def _rule_applies(rule: Rule, path: str) -> bool:
    for pattern in rule.boundary:
        if fnmatch(path, pattern):
            return False
        stripped = pattern[2:] if pattern.startswith("*/") else pattern
        if fnmatch(path, stripped):
            return False
    return True


def _python_files(path: Path):
    """All .py files under a path, in sorted (deterministic) order."""
    if path.is_file():
        yield path
        return
    for child in sorted(path.iterdir()):
        if child.name == "__pycache__":
            continue
        if child.is_dir():
            yield from _python_files(child)
        elif child.suffix == ".py":
            yield child


class LintEngine:
    """Run the rule pack over files or in-memory source."""

    def __init__(self, rules: list[str] | None = None) -> None:
        if rules is None:
            self.rule_ids = sorted(RULES)
        else:
            unknown = sorted(set(rules) - set(RULES))
            if unknown:
                raise LintError(f"unknown rule id(s): {', '.join(unknown)}")
            self.rule_ids = sorted(rules)

    # -- per-file ----------------------------------------------------------

    def lint_source(self, source: str, path: str = "<memory>") -> list[Finding]:
        """Lint one source string; suppressions applied, no baseline."""
        try:
            tree = ast.parse(source)
        except SyntaxError as exc:
            raise LintError(
                f"{path}:{exc.lineno}: cannot parse: {exc.msg}"
            ) from exc
        ctx = FileContext(path, source, tree)
        findings: list[Finding] = []
        for rule_id in self.rule_ids:
            if not _rule_applies(RULES[rule_id], path):
                continue
            findings.extend(CHECKERS[rule_id](ctx).run())
        self._apply_suppressions(ctx, findings)
        findings.sort(key=Finding.sort_key)
        return findings

    @staticmethod
    def _apply_suppressions(ctx: FileContext, findings: list[Finding]) -> None:
        table = ctx.suppressions()
        if not table:
            return
        for finding in findings:
            for lineno in (finding.line, finding.line - 1):
                if lineno == finding.line - 1:
                    # Comment-above style: only a comment-only line may
                    # carry the suppression for the statement below it.
                    if not (1 <= lineno <= len(ctx.lines)
                            and ctx.lines[lineno - 1].lstrip().startswith("#")):
                        continue
                for rule_id, reason in table.get(lineno, ()):
                    if rule_id == finding.rule:
                        finding.status = STATUS_SUPPRESSED
                        finding.suppress_reason = reason
                        break
                if finding.status == STATUS_SUPPRESSED:
                    break

    # -- tree --------------------------------------------------------------

    def run(
        self,
        paths: list[str | Path],
        root: str | Path | None = None,
        baseline: list[BaselineEntry] | None = None,
    ) -> LintReport:
        """Lint files/directories; apply the baseline; build the report."""
        root_path = Path(root) if root is not None else Path.cwd()
        report = LintReport(root=str(root_path))
        for start in paths:
            start_path = Path(start)
            if not start_path.exists():
                raise LintError(f"no such file or directory: {start}")
            for file_path in _python_files(start_path):
                try:
                    rel = file_path.resolve().relative_to(root_path.resolve())
                    rel_text = str(PurePosixPath(rel))
                except ValueError:
                    rel_text = str(PurePosixPath(file_path))
                source = file_path.read_text()
                report.findings.extend(self.lint_source(source, rel_text))
                report.files_scanned += 1
        report.findings.sort(key=Finding.sort_key)
        if baseline is not None:
            live = [f for f in report.findings if f.status == STATUS_NEW]
            report.stale_baseline = apply_baseline(live, baseline)
        return report
