"""The lint engine: file walking, parsing, suppression, baseline, report.

Pipeline per file: parse → run every applicable rule (skipping rules
whose ``boundary`` patterns match the file) → apply inline
``# repro: allow[RULE-ID] <reason>`` suppressions.  Across files, the
engine applies the committed baseline and folds everything into a
:class:`LintReport` whose ``new_findings`` are the gate: any of them
means the run fails.

Suppression syntax (same line, or a comment-only line directly above)::

    value = time.time()  # repro: allow[DET001] wall-time display only
    # repro: allow[CONC001] content-keyed cache; per-process fork copy
    _CACHE[key] = value
"""

from __future__ import annotations

import ast
import hashlib
import json
from dataclasses import dataclass, field
from pathlib import Path, PurePosixPath
from fnmatch import fnmatch

from repro.errors import LintError
from repro.lint.baseline import BaselineEntry, apply_baseline
from repro.lint.findings import (
    STATUS_BASELINED,
    STATUS_NEW,
    STATUS_SUPPRESSED,
    Finding,
    apply_suppression_tables,
    comment_only_lines,
    scan_suppressions,
)
from repro.lint.graph import (
    CACHE_VERSION,
    ModuleSummary,
    ProgramGraph,
    check_layering,
    extract_summary,
)
from repro.lint.rules import CHECKERS, GRAPH_RULES, RULES, Rule

REPORT_VERSION = 1


class FileContext:
    """One parsed source file plus the lookups checkers need."""

    def __init__(self, path: str, source: str, tree: ast.Module) -> None:
        self.path = path
        self.source = source
        self.tree = tree
        self.lines = source.splitlines()
        self._parents: dict[int, ast.AST] | None = None

    def finding(self, rule: Rule, node: ast.AST, message: str) -> Finding:
        line = getattr(node, "lineno", 1)
        col = getattr(node, "col_offset", 0)
        content = ""
        if 1 <= line <= len(self.lines):
            content = self.lines[line - 1].strip()
        return Finding(
            rule=rule.id, path=self.path, line=line, col=col,
            severity=rule.severity, message=message, content=content,
        )

    def _parent_map(self) -> dict[int, ast.AST]:
        if self._parents is None:
            parents: dict[int, ast.AST] = {}
            for parent in ast.walk(self.tree):
                for child in ast.iter_child_nodes(parent):
                    parents[id(child)] = parent
            self._parents = parents
        return self._parents

    def has_sorted_ancestor(self, node: ast.AST) -> bool:
        """Whether the node sits (anywhere) inside a ``sorted(...)`` call."""
        parents = self._parent_map()
        current: ast.AST | None = parents.get(id(node))
        while current is not None:
            if (
                isinstance(current, ast.Call)
                and isinstance(current.func, ast.Name)
                and current.func.id == "sorted"
            ):
                return True
            current = parents.get(id(current))
        return False

    def suppressions(self) -> dict[int, list[tuple[str, str]]]:
        """Line number → [(rule-id, reason)] from allow comments."""
        return scan_suppressions(self.lines)


@dataclass
class LintReport:
    """Everything one run produced, ready for text/JSON rendering."""

    root: str
    findings: list[Finding] = field(default_factory=list)
    files_scanned: int = 0
    stale_baseline: list[BaselineEntry] = field(default_factory=list)
    #: whole-program pass statistics (None when the graph did not run).
    graph_summary: dict | None = None
    #: --changed-since bookkeeping (None outside incremental mode).
    changed: dict | None = None
    #: the live ProgramGraph for --graph-out (never serialised).
    program_graph: ProgramGraph | None = None
    #: counters emitted at runtime that no test asserts (informational).
    untested_counters: list[str] = field(default_factory=list)

    @property
    def new_findings(self) -> list[Finding]:
        return [f for f in self.findings if f.status == STATUS_NEW]

    @property
    def ok(self) -> bool:
        return not self.new_findings

    def count(self, status: str) -> int:
        return sum(1 for f in self.findings if f.status == status)

    def by_rule(self) -> dict[str, int]:
        """New-finding counts per rule (only rules with findings)."""
        counts: dict[str, int] = {}
        for finding in self.new_findings:
            counts[finding.rule] = counts.get(finding.rule, 0) + 1
        return dict(sorted(counts.items()))

    def to_json(self) -> dict:
        data = {
            "version": REPORT_VERSION,
            "root": self.root,
            "files_scanned": self.files_scanned,
            "rules": [
                {
                    "id": rule.id,
                    "name": rule.name,
                    "severity": rule.severity,
                    "summary": rule.summary,
                }
                for rule in sorted(RULES.values(), key=lambda r: r.id)
            ],
            "findings": [f.to_json() for f in self.findings],
            "stale_baseline": [e.to_json() for e in self.stale_baseline],
            "summary": {
                "total": len(self.findings),
                "new": self.count(STATUS_NEW),
                "baselined": self.count(STATUS_BASELINED),
                "suppressed": self.count(STATUS_SUPPRESSED),
                "stale_baseline_entries": len(self.stale_baseline),
                "by_rule": self.by_rule(),
            },
        }
        if self.graph_summary is not None:
            data["graph"] = self.graph_summary
        if self.changed is not None:
            data["changed_since"] = self.changed
        return data


def _rule_applies(rule: Rule, path: str) -> bool:
    for pattern in rule.boundary:
        if fnmatch(path, pattern):
            return False
        stripped = pattern[2:] if pattern.startswith("*/") else pattern
        if fnmatch(path, stripped):
            return False
    return True


def _python_files(path: Path):
    """All .py files under a path, in sorted (deterministic) order."""
    if path.is_file():
        yield path
        return
    for child in sorted(path.iterdir()):
        if child.name == "__pycache__":
            continue
        if child.is_dir():
            yield from _python_files(child)
        elif child.suffix == ".py":
            yield child


class LintEngine:
    """Run the rule pack over files or in-memory source."""

    def __init__(self, rules: list[str] | None = None) -> None:
        if rules is None:
            self.rule_ids = sorted(RULES)
        else:
            unknown = sorted(set(rules) - set(RULES))
            if unknown:
                raise LintError(f"unknown rule id(s): {', '.join(unknown)}")
            self.rule_ids = sorted(rules)

    # -- per-file ----------------------------------------------------------

    def lint_source(self, source: str, path: str = "<memory>") -> list[Finding]:
        """Lint one source string; suppressions applied, no baseline."""
        try:
            tree = ast.parse(source)
        except SyntaxError as exc:
            raise LintError(
                f"{path}:{exc.lineno}: cannot parse: {exc.msg}"
            ) from exc
        ctx = FileContext(path, source, tree)
        findings: list[Finding] = []
        for rule_id in self.rule_ids:
            if rule_id not in CHECKERS:
                continue  # whole-program rules only run in run()
            if not _rule_applies(RULES[rule_id], path):
                continue
            findings.extend(CHECKERS[rule_id](ctx).run())
        self._apply_suppressions(ctx, findings)
        findings.sort(key=Finding.sort_key)
        return findings

    @staticmethod
    def _apply_suppressions(ctx: FileContext, findings: list[Finding]) -> None:
        apply_suppression_tables(
            findings, ctx.suppressions(), comment_only_lines(ctx.lines)
        )

    # -- tree --------------------------------------------------------------

    def _analyze_file(
        self, rel_text: str, source: str
    ) -> tuple[ModuleSummary, list[Finding]]:
        """Parse once; extract the graph summary and run *every*
        per-file checker (cache entries are rule-selection independent;
        the caller filters to the engine's active rules)."""
        try:
            tree = ast.parse(source)
        except SyntaxError as exc:
            raise LintError(
                f"{rel_text}:{exc.lineno}: cannot parse: {exc.msg}"
            ) from exc
        ctx = FileContext(rel_text, source, tree)
        findings: list[Finding] = []
        for rule_id in sorted(CHECKERS):
            if not _rule_applies(RULES[rule_id], rel_text):
                continue
            findings.extend(CHECKERS[rule_id](ctx).run())
        self._apply_suppressions(ctx, findings)
        findings.sort(key=Finding.sort_key)
        summary = extract_summary(rel_text, source, tree)
        return summary, findings

    @staticmethod
    def _load_cache(cache_path: str | Path | None) -> dict:
        if cache_path is None:
            return {}
        try:
            with open(cache_path) as handle:
                data = json.load(handle)
        except (OSError, json.JSONDecodeError):
            return {}
        if not isinstance(data, dict) or data.get("version") != CACHE_VERSION:
            return {}
        entries = data.get("entries")
        return entries if isinstance(entries, dict) else {}

    @staticmethod
    def _write_cache(cache_path: str | Path | None, entries: dict) -> None:
        if cache_path is None:
            return
        payload = {"version": CACHE_VERSION, "entries": entries}
        try:
            with open(cache_path, "w") as handle:
                json.dump(payload, handle, separators=(",", ":"))
                handle.write("\n")
        except OSError:
            pass  # a read-only tree still lints, just without the cache

    @staticmethod
    def _finding_from_json(data: dict) -> Finding:
        return Finding(
            rule=data["rule"], path=data["path"], line=data["line"],
            col=data["col"], severity=data["severity"],
            message=data["message"], content=data["content"],
            status=data["status"],
            suppress_reason=data.get("suppress_reason", ""),
            witness=list(data.get("witness", [])),
        )

    def _graph_findings(
        self,
        graph: ProgramGraph,
        tests_root: str | Path | None,
        sinks: dict[str, str] | None,
        static_entry_points,
    ) -> tuple[list[Finding], list[str]]:
        """Run every selected whole-program pass over the graph."""
        from repro.lint.contracts import check_contracts
        from repro.lint.interproc import (
            check_fork_safety,
            check_set_order,
            check_taint,
        )

        findings: list[Finding] = []
        untested: list[str] = []
        if "DET101" in self.rule_ids:
            findings.extend(check_taint(graph, RULES["DET101"], sinks))
        if "DET102" in self.rule_ids:
            findings.extend(check_set_order(graph, RULES["DET102"]))
        if "CONC101" in self.rule_ids:
            findings.extend(check_fork_safety(
                graph, RULES["CONC101"], static_entry_points))
        if "LAYER001" in self.rule_ids:
            findings.extend(check_layering(graph, RULES["LAYER001"]))
        if "CONTRACT001" in self.rule_ids:
            contract_findings, untested = check_contracts(
                graph, RULES["CONTRACT001"], tests_root)
            findings.extend(contract_findings)
        findings = [
            f for f in findings if _rule_applies(RULES[f.rule], f.path)
        ]
        # Inline allows apply to graph findings through the summaries'
        # suppression tables (contract findings on test files arrive
        # already processed by contracts.py).
        by_path: dict[str, list[Finding]] = {}
        for finding in findings:
            by_path.setdefault(finding.path, []).append(finding)
        for path, group in by_path.items():
            summary = graph.by_path.get(path)
            if summary is None:
                continue
            apply_suppression_tables(
                group, summary.suppressions, summary.comment_lines)
        return findings, untested

    def run(
        self,
        paths: list[str | Path],
        root: str | Path | None = None,
        baseline: list[BaselineEntry] | None = None,
        *,
        cache_path: str | Path | None = None,
        changed_files: list[str] | None = None,
        tests_root: str | Path | None = None,
        sinks: dict[str, str] | None = None,
        static_entry_points=None,
    ) -> LintReport:
        """Lint files/directories; apply the baseline; build the report.

        ``cache_path`` enables the content-hash summary/finding cache.
        ``changed_files`` (posix paths relative to ``root``) switches to
        incremental mode: per-file and graph findings are limited to the
        changed files plus their reverse-dependency cone, and stale-
        baseline reporting is suppressed (the full tree was not seen by
        the gate).  ``tests_root`` (default ``<root>/tests``) feeds the
        CONTRACT001 tests-vs-runtime counter cross-reference.
        """
        root_path = Path(root) if root is not None else Path.cwd()
        report = LintReport(root=str(root_path))
        cache = self._load_cache(cache_path)
        next_cache: dict = {}
        hits = misses = 0
        summaries: dict[str, ModuleSummary] = {}
        per_file: dict[str, list[Finding]] = {}
        for start in paths:
            start_path = Path(start)
            if not start_path.exists():
                raise LintError(f"no such file or directory: {start}")
            for file_path in _python_files(start_path):
                try:
                    rel = file_path.resolve().relative_to(root_path.resolve())
                    rel_text = str(PurePosixPath(rel))
                except ValueError:
                    rel_text = str(PurePosixPath(file_path))
                if rel_text in summaries:
                    continue
                source = file_path.read_text()
                digest = hashlib.sha256(source.encode()).hexdigest()
                entry = cache.get(rel_text)
                if entry is not None and entry.get("hash") == digest:
                    hits += 1
                    summary = ModuleSummary.from_json(entry["summary"])
                    findings = [
                        self._finding_from_json(f)
                        for f in entry["findings"]
                    ]
                    next_cache[rel_text] = entry
                else:
                    misses += 1
                    summary, findings = self._analyze_file(rel_text, source)
                    next_cache[rel_text] = {
                        "hash": digest,
                        "summary": summary.to_json(),
                        "findings": [f.to_json() for f in findings],
                    }
                summaries[rel_text] = summary
                per_file[rel_text] = findings
                report.files_scanned += 1
        self._write_cache(cache_path, next_cache)

        run_graph = any(r in GRAPH_RULES for r in self.rule_ids)
        # Incremental mode needs the import graph for the reverse-
        # dependency cone even when no whole-program rule is selected.
        need_graph = run_graph or changed_files is not None
        graph: ProgramGraph | None = None
        graph_findings: list[Finding] = []
        if need_graph and summaries:
            graph = ProgramGraph(list(summaries.values()))
            report.program_graph = graph
        if run_graph and graph is not None:
            if tests_root is None:
                candidate = root_path / "tests"
                tests_root = candidate if candidate.is_dir() else None
            graph_findings, report.untested_counters = self._graph_findings(
                graph, tests_root, sinks, static_entry_points)
            report.graph_summary = {
                "modules": len(graph.summaries),
                "import_edges": len(graph.import_edges),
                "call_edges": sum(
                    len(edges) for edges in graph.call_edges.values()),
                "unresolved": len(graph.unresolved),
                "cache": {"hits": hits, "misses": misses},
            }

        target: set[str] | None = None
        if changed_files is not None:
            changed = set(changed_files)
            if graph is not None:
                target = graph.importers_cone(changed)
            else:
                target = changed
            report.changed = {
                "files": sorted(changed),
                "cone": sorted(target),
            }

        active = set(self.rule_ids)
        for rel_text, findings in per_file.items():
            if target is not None and rel_text not in target:
                continue
            report.findings.extend(
                f for f in findings if f.rule in active
            )
        for finding in graph_findings:
            if target is not None and finding.path not in target \
                    and finding.path not in (changed_files or ()):
                continue
            report.findings.append(finding)
        report.findings.sort(key=Finding.sort_key)
        if baseline is not None:
            live = [f for f in report.findings if f.status == STATUS_NEW]
            stale = apply_baseline(live, baseline)
            report.stale_baseline = [] if changed_files is not None else stale
        return report
