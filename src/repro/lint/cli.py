"""``repro-relay lint`` implementation (kept out of the main CLI module).

Exit codes: 0 clean (or everything baselined/suppressed), 1 new
findings, 2 usage or environment errors (via the main CLI's ReproError
handling).
"""

from __future__ import annotations

import json
import subprocess
import sys
import textwrap
from pathlib import Path, PurePosixPath

from repro.errors import LintError
from repro.lint.baseline import load_baseline, write_baseline
from repro.lint.engine import LintEngine, LintReport
from repro.lint.findings import STATUS_NEW, STATUS_SUPPRESSED
from repro.lint.rules import RULES


def default_lint_paths() -> list[str]:
    """The tree to lint when no paths are given: the repro package."""
    here = Path(__file__).resolve().parent.parent  # .../src/repro
    return [str(here)]


def changed_files_since(root: Path, ref: str) -> list[str]:
    """Paths (posix, relative to ``root``) changed since a git ref:
    ``git diff --name-only <ref>`` plus untracked files."""
    out: set[str] = set()
    for argv in (
        ["git", "diff", "--name-only", ref, "--"],
        ["git", "ls-files", "--others", "--exclude-standard"],
    ):
        try:
            proc = subprocess.run(
                argv, cwd=root, capture_output=True, text=True, check=True,
            )
        except (OSError, subprocess.CalledProcessError) as exc:
            detail = ""
            if isinstance(exc, subprocess.CalledProcessError):
                detail = f": {exc.stderr.strip()}"
            raise LintError(
                f"--changed-since {ref}: {' '.join(argv[:3])} failed{detail}"
            ) from exc
        out.update(
            str(PurePosixPath(line.strip()))
            for line in proc.stdout.splitlines()
            if line.strip()
        )
    return sorted(out)


def render_rules() -> str:
    """The ``--list-rules`` documentation output."""
    out = ["Rules (suppress inline with `# repro: allow[RULE-ID] <reason>`,"]
    out.append("grandfather with `--baseline FILE --update-baseline`):")
    out.append("")
    for rule in sorted(RULES.values(), key=lambda r: r.id):
        out.append(f"{rule.id}  {rule.severity:7s} {rule.name}")
        out.append(f"    {rule.summary}")
        out.extend(textwrap.wrap(
            rule.rationale, width=74,
            initial_indent="      ", subsequent_indent="      ",
        ))
        if rule.boundary:
            out.append(f"      boundary (rule not applied): "
                       f"{', '.join(rule.boundary)}")
        out.append("")
    return "\n".join(out)


def render_text(report: LintReport) -> str:
    lines = [f.render() for f in report.new_findings]
    summary = (
        f"{len(report.findings)} finding(s) in {report.files_scanned} "
        f"file(s): {len(report.new_findings)} new, "
        f"{report.count('baselined')} baselined, "
        f"{report.count('suppressed')} suppressed"
    )
    lines.append(summary)
    if report.graph_summary is not None:
        graph = report.graph_summary
        cache = graph["cache"]
        lines.append(
            f"graph: {graph['modules']} modules, "
            f"{graph['import_edges']} import edges, "
            f"{graph['call_edges']} call edges, "
            f"{graph['unresolved']} unresolved "
            f"(cache: {cache['hits']} hit, {cache['misses']} miss)"
        )
    if report.changed is not None:
        lines.append(
            f"changed-since: {len(report.changed['files'])} changed "
            f"file(s), {len(report.changed['cone'])} in re-analysis cone"
        )
    for entry in report.stale_baseline:
        lines.append(
            f"stale baseline entry ({entry.count} unmatched): "
            f"{entry.rule} {entry.path} :: {entry.content!r} "
            "(run --update-baseline to drop)"
        )
    return "\n".join(lines)


def _emit_telemetry(args, report: LintReport) -> None:
    if not getattr(args, "telemetry_out", None):
        return
    from repro.telemetry import Telemetry

    telemetry = Telemetry()
    registry = telemetry.registry
    registry.counter("lint.files_scanned").inc(report.files_scanned)
    # One counter per rule, zeros included, over live (new + baselined)
    # findings: CI artifacts then graph per-rule debt over time.
    live: dict[str, int] = {rule_id: 0 for rule_id in RULES}
    for finding in report.findings:
        if finding.status != STATUS_SUPPRESSED:
            live[finding.rule] = live.get(finding.rule, 0) + 1
    for rule_id, count in sorted(live.items()):
        registry.counter("lint.findings", rule=rule_id).inc(count)
    registry.counter("lint.new").inc(len(report.new_findings))
    for status in ("baselined", "suppressed"):
        registry.counter(f"lint.{status}").inc(report.count(status))
    if report.stale_baseline:
        registry.counter("lint.stale_baseline_entries").inc(
            sum(e.count for e in report.stale_baseline)
        )
    telemetry.write(args.telemetry_out)
    print(f"wrote telemetry to {args.telemetry_out}")


def run_lint(args) -> int:
    """Back the ``lint`` subcommand of the main CLI."""
    if args.list_rules:
        print(render_rules())
        return 0
    if args.update_baseline and not args.baseline:
        print("error: --update-baseline requires --baseline", file=sys.stderr)
        return 2

    engine = LintEngine(rules=args.rules or None)
    paths = args.paths or default_lint_paths()
    baseline = None
    if args.baseline and not args.update_baseline:
        baseline = load_baseline(args.baseline)
    root_path = Path(args.root) if args.root else Path.cwd()
    cache_path = None
    if not getattr(args, "no_cache", False):
        cache_path = getattr(args, "cache", None) or (
            root_path / ".lint_cache.json"
        )
    changed = None
    ref = getattr(args, "changed_since", None)
    if ref:
        changed = changed_files_since(root_path, ref)
    report = engine.run(
        paths, root=args.root, baseline=baseline,
        cache_path=cache_path, changed_files=changed,
    )
    graph_out = getattr(args, "graph_out", None)
    if graph_out and report.program_graph is not None:
        document = report.program_graph.export()
        document["untested_counters"] = report.untested_counters
        with open(graph_out, "w") as handle:
            json.dump(document, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"wrote graph to {graph_out}")

    if args.update_baseline:
        live = [f for f in report.findings if f.status == STATUS_NEW]
        entries = write_baseline(args.baseline, live)
        print(f"wrote {len(entries)} baseline entr"
              f"{'y' if len(entries) == 1 else 'ies'} to {args.baseline}")
        _emit_telemetry(args, report)
        return 0

    if args.json_out:
        with open(args.json_out, "w") as handle:
            json.dump(report.to_json(), handle, indent=2, sort_keys=True)
            handle.write("\n")
    if args.format == "json":
        print(json.dumps(report.to_json(), indent=2, sort_keys=True))
    else:
        print(render_text(report))
    _emit_telemetry(args, report)
    return 0 if report.ok else 1
