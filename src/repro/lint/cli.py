"""``repro-relay lint`` implementation (kept out of the main CLI module).

Exit codes: 0 clean (or everything baselined/suppressed), 1 new
findings, 2 usage or environment errors (via the main CLI's ReproError
handling).
"""

from __future__ import annotations

import json
import sys
import textwrap
from pathlib import Path

from repro.errors import LintError
from repro.lint.baseline import load_baseline, write_baseline
from repro.lint.engine import LintEngine, LintReport
from repro.lint.findings import STATUS_NEW, STATUS_SUPPRESSED
from repro.lint.rules import RULES


def default_lint_paths() -> list[str]:
    """The tree to lint when no paths are given: the repro package."""
    here = Path(__file__).resolve().parent.parent  # .../src/repro
    return [str(here)]


def render_rules() -> str:
    """The ``--list-rules`` documentation output."""
    out = ["Rules (suppress inline with `# repro: allow[RULE-ID] <reason>`,"]
    out.append("grandfather with `--baseline FILE --update-baseline`):")
    out.append("")
    for rule in sorted(RULES.values(), key=lambda r: r.id):
        out.append(f"{rule.id}  {rule.severity:7s} {rule.name}")
        out.append(f"    {rule.summary}")
        out.extend(textwrap.wrap(
            rule.rationale, width=74,
            initial_indent="      ", subsequent_indent="      ",
        ))
        if rule.boundary:
            out.append(f"      boundary (rule not applied): "
                       f"{', '.join(rule.boundary)}")
        out.append("")
    return "\n".join(out)


def render_text(report: LintReport) -> str:
    lines = [f.render() for f in report.new_findings]
    summary = (
        f"{len(report.findings)} finding(s) in {report.files_scanned} "
        f"file(s): {len(report.new_findings)} new, "
        f"{report.count('baselined')} baselined, "
        f"{report.count('suppressed')} suppressed"
    )
    lines.append(summary)
    for entry in report.stale_baseline:
        lines.append(
            f"stale baseline entry ({entry.count} unmatched): "
            f"{entry.rule} {entry.path} :: {entry.content!r} "
            "(run --update-baseline to drop)"
        )
    return "\n".join(lines)


def _emit_telemetry(args, report: LintReport) -> None:
    if not getattr(args, "telemetry_out", None):
        return
    from repro.telemetry import Telemetry

    telemetry = Telemetry()
    registry = telemetry.registry
    registry.counter("lint.files_scanned").inc(report.files_scanned)
    # One counter per rule, zeros included, over live (new + baselined)
    # findings: CI artifacts then graph per-rule debt over time.
    live: dict[str, int] = {rule_id: 0 for rule_id in RULES}
    for finding in report.findings:
        if finding.status != STATUS_SUPPRESSED:
            live[finding.rule] = live.get(finding.rule, 0) + 1
    for rule_id, count in sorted(live.items()):
        registry.counter("lint.findings", rule=rule_id).inc(count)
    registry.counter("lint.new").inc(len(report.new_findings))
    for status in ("baselined", "suppressed"):
        registry.counter(f"lint.{status}").inc(report.count(status))
    if report.stale_baseline:
        registry.counter("lint.stale_baseline_entries").inc(
            sum(e.count for e in report.stale_baseline)
        )
    telemetry.write(args.telemetry_out)
    print(f"wrote telemetry to {args.telemetry_out}")


def run_lint(args) -> int:
    """Back the ``lint`` subcommand of the main CLI."""
    if args.list_rules:
        print(render_rules())
        return 0
    if args.update_baseline and not args.baseline:
        print("error: --update-baseline requires --baseline", file=sys.stderr)
        return 2

    engine = LintEngine(rules=args.rules or None)
    paths = args.paths or default_lint_paths()
    baseline = None
    if args.baseline and not args.update_baseline:
        baseline = load_baseline(args.baseline)
    report = engine.run(paths, root=args.root, baseline=baseline)

    if args.update_baseline:
        live = [f for f in report.findings if f.status == STATUS_NEW]
        entries = write_baseline(args.baseline, live)
        print(f"wrote {len(entries)} baseline entr"
              f"{'y' if len(entries) == 1 else 'ies'} to {args.baseline}")
        _emit_telemetry(args, report)
        return 0

    if args.json_out:
        with open(args.json_out, "w") as handle:
            json.dump(report.to_json(), handle, indent=2, sort_keys=True)
            handle.write("\n")
    if args.format == "json":
        print(json.dumps(report.to_json(), indent=2, sort_keys=True))
    else:
        print(render_text(report))
    _emit_telemetry(args, report)
    return 0 if report.ok else 1
