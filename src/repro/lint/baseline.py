"""Committed-baseline support: grandfathered findings.

The baseline file records findings that existed when the linter was
adopted (or that a reviewer judged acceptable) so the gate only fails
on *new* findings.  Entries match on ``(rule, path, content)`` with a
count — never on line numbers — so edits elsewhere in a file do not
invalidate them.  Entries that no longer match anything in the tree are
*stale*: the CLI reports them and ``--update-baseline`` drops them,
keeping the baseline shrinking toward the justified allowlist.
"""

from __future__ import annotations

import json
from collections import Counter
from dataclasses import dataclass
from pathlib import Path

from repro.errors import LintError
from repro.lint.findings import STATUS_BASELINED, STATUS_NEW, Finding

BASELINE_VERSION = 1


@dataclass(frozen=True)
class BaselineEntry:
    """One grandfathered fingerprint with its occurrence count."""

    rule: str
    path: str
    content: str
    count: int = 1

    def to_json(self) -> dict:
        return {
            "rule": self.rule,
            "path": self.path,
            "content": self.content,
            "count": self.count,
        }


def load_baseline(path: str | Path) -> list[BaselineEntry]:
    """Parse a baseline file, validating version and entry shape."""
    try:
        with open(path) as handle:
            data = json.load(handle)
    except FileNotFoundError:
        raise LintError(f"baseline file not found: {path}") from None
    except json.JSONDecodeError as exc:
        raise LintError(f"baseline {path} is not valid JSON: {exc}") from exc
    if not isinstance(data, dict) or data.get("version") != BASELINE_VERSION:
        raise LintError(
            f"baseline {path} has unsupported version "
            f"{data.get('version') if isinstance(data, dict) else data!r}"
        )
    entries = []
    for raw in data.get("entries", []):
        try:
            entries.append(BaselineEntry(
                rule=raw["rule"],
                path=raw["path"],
                content=raw["content"],
                count=int(raw.get("count", 1)),
            ))
        except (KeyError, TypeError, ValueError) as exc:
            raise LintError(f"baseline {path}: malformed entry {raw!r}") from exc
    return entries


def write_baseline(path: str | Path, findings: list[Finding]) -> list[BaselineEntry]:
    """Write the current (non-suppressed) findings as the new baseline.

    A ``note`` header in the existing file (a human-written migration
    comment) is carried over unchanged.
    """
    note = None
    try:
        with open(path) as handle:
            existing = json.load(handle)
        if isinstance(existing, dict):
            note = existing.get("note")
    except (OSError, json.JSONDecodeError):
        pass
    counts = Counter(f.fingerprint for f in findings)
    entries = [
        BaselineEntry(rule=rule, path=fpath, content=content, count=n)
        for (rule, fpath, content), n in sorted(counts.items())
    ]
    payload = {
        "version": BASELINE_VERSION,
        "entries": [entry.to_json() for entry in entries],
    }
    if note:
        payload["note"] = note
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return entries


def apply_baseline(
    findings: list[Finding], entries: list[BaselineEntry]
) -> list[BaselineEntry]:
    """Mark baselined findings in place; return the stale entries.

    For each baseline fingerprint, up to ``count`` matching findings are
    marked :data:`STATUS_BASELINED`; matches beyond the count stay new
    (a regression that *added* an occurrence still fails).  Entries with
    unused budget — the tree now has fewer matches than the baseline
    recorded — are returned as stale so the baseline can shrink.
    """
    budget: Counter = Counter()
    for entry in entries:
        budget[(entry.rule, entry.path, entry.content)] += entry.count
    for finding in findings:
        if finding.status != STATUS_NEW:
            continue
        if budget.get(finding.fingerprint, 0) > 0:
            budget[finding.fingerprint] -= 1
            finding.status = STATUS_BASELINED
    stale = []
    for entry in entries:
        unused = budget.get((entry.rule, entry.path, entry.content), 0)
        if unused > 0:
            stale.append(BaselineEntry(
                rule=entry.rule, path=entry.path,
                content=entry.content, count=unused,
            ))
            budget[(entry.rule, entry.path, entry.content)] = 0
    return stale
