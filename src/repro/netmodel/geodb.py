"""MaxMind-GeoLite2-style geolocation database.

The paper queried MaxMind for the egress addresses and found the database
had *adopted Apple's published egress mapping* for most subnets — i.e. a
commercial geo DB reflects the represented client location, not the relay
node's physical location.  :class:`GeoDatabase` reproduces that: it is a
prefix→record store that worldgen seeds mostly from the egress list (with
a small fraction of divergent records) plus generic records for client
space.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.netmodel.addr import IPAddress, Prefix
from repro.netmodel.geo import GeoPoint
from repro.netmodel.prefix_trie import DualStackTrie


@dataclass(frozen=True, slots=True)
class GeoRecord:
    """One geolocation record: country, optional city, coordinates."""

    country: str
    city: str | None
    location: GeoPoint | None
    #: Where the record came from: "egress-list" when the DB vendor adopted
    #: the published Apple mapping, "vendor" for independently derived data.
    source: str = "vendor"


class GeoDatabase:
    """Longest-prefix-match geolocation lookups over both IP versions.

    Inserts are buffered and the trie is built on first lookup: worldgen
    seeds tens of thousands of records that analysis code may never
    query, and buffered inserts replay in ``add`` order so later records
    replace earlier ones exactly as direct inserts would.
    """

    def __init__(self) -> None:
        self._pending: list[tuple[Prefix, GeoRecord]] = []
        self._trie: DualStackTrie[GeoRecord] | None = None

    def _index(self) -> DualStackTrie[GeoRecord]:
        trie = self._trie
        if trie is None:
            trie = DualStackTrie()
            for prefix, record in self._pending:
                trie.insert(prefix, record)
            self._trie = trie
            self._pending.clear()
        return trie

    def __len__(self) -> int:
        return len(self._index())

    def add(self, prefix: Prefix, record: GeoRecord) -> None:
        """Insert or replace the record for a prefix."""
        if self._trie is None:
            self._pending.append((prefix, record))
        else:
            self._trie.insert(prefix, record)

    def lookup(self, address: IPAddress) -> GeoRecord | None:
        """The most specific record covering ``address``, or None."""
        hit = self._index().lookup(address)
        return hit[1] if hit else None

    def lookup_prefix(self, prefix: Prefix) -> GeoRecord | None:
        """The record covering the whole prefix, or None."""
        hit = self._index().covering(prefix)
        return hit[1] if hit else None

    def records(self) -> list[tuple[Prefix, GeoRecord]]:
        """All stored (prefix, record) pairs."""
        return list(self._index().items())

    def adoption_rate(self) -> float:
        """Fraction of records sourced from the published egress list.

        The paper's finding was that MaxMind "adapted the Apple egress
        mapping for most subnets"; worldgen seeds this database so that the
        rate is high, and the analysis layer reports it.
        """
        records = self.records()
        if not records:
            return 0.0
        adopted = sum(1 for _p, r in records if r.source == "egress-list")
        return adopted / len(records)
