"""Internet substrate: addresses, prefixes, ASes, BGP, geo, topology.

This package models the parts of the Internet the paper's measurements
touch: the IPv4/IPv6 address space, autonomous systems and their BGP
announcements (including a monthly visibility history), AS population
data in the style of APNIC's customer-population dataset, a geolocation
database in the style of MaxMind GeoLite2, and a router-level topology
that supports traceroute-style path measurements.
"""

from repro.netmodel.addr import IPAddress, Prefix
from repro.netmodel.asn import ASRegistry, AutonomousSystem, WellKnownAS
from repro.netmodel.aspath import ASGraph, AsPath, PathLoad, Relationship
from repro.netmodel.bgp import Announcement, BgpHistory, RoutingTable
from repro.netmodel.geo import City, GeoPoint
from repro.netmodel.geodb import GeoDatabase, GeoRecord
from repro.netmodel.population import ASPopulationDataset
from repro.netmodel.prefix_trie import PrefixTrie
from repro.netmodel.topology import Router, Topology
from repro.netmodel.traceroute import TracerouteResult, traceroute

__all__ = [
    "IPAddress",
    "Prefix",
    "ASRegistry",
    "AutonomousSystem",
    "WellKnownAS",
    "ASGraph",
    "AsPath",
    "PathLoad",
    "Relationship",
    "Announcement",
    "BgpHistory",
    "RoutingTable",
    "City",
    "GeoPoint",
    "GeoDatabase",
    "GeoRecord",
    "ASPopulationDataset",
    "PrefixTrie",
    "Router",
    "Topology",
    "TracerouteResult",
    "traceroute",
]
