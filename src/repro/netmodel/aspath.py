"""AS-level routing: relationships and valley-free path selection.

The paper's first open question: "Where and how is traffic routed to
and from the relay nodes?  Does the system have bottlenecks that can
lead to congestion for its users?"  Answering it needs AS-level paths,
not just router hops.  This module provides:

* an :class:`ASGraph` of business relationships — customer→provider
  and peer↔peer edges, the Gao/Rexford model;
* **valley-free** path computation: a path may climb customer→provider
  links, cross at most one peer link, then descend provider→customer —
  the standard export-policy constraint;
* best-path selection by (shortest length, then lowest next AS number)
  among valley-free candidates, via a three-phase BFS.

It also carries the paper's one concrete inter-AS observation: the
relay AS36183 "has only one publicly visible peering link, to
Akamai[_EG]" — worldgen builds exactly that.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from collections import deque

from repro.errors import RoutingError


class Relationship(enum.Enum):
    """The business relationship of an AS-graph edge, seen from ``a``."""

    CUSTOMER_OF = "customer-of"  # a pays b (b is a's provider)
    PEER = "peer"


@dataclass(frozen=True, slots=True)
class AsPath:
    """One AS-level path (origin first, destination last)."""

    asns: tuple[int, ...]

    def __len__(self) -> int:
        return len(self.asns)

    @property
    def hops(self) -> int:
        """Number of inter-AS hops."""
        return len(self.asns) - 1

    def transits(self) -> tuple[int, ...]:
        """The intermediate ASes (everything but the endpoints)."""
        return self.asns[1:-1]

    def __contains__(self, asn: int) -> bool:
        return asn in self.asns


# BFS phases of a valley-free walk.
_UP, _ACROSS, _DOWN = 0, 1, 2


class ASGraph:
    """Business-relationship graph with valley-free routing."""

    def __init__(self) -> None:
        #: asn -> set of provider asns.
        self._providers: dict[int, set[int]] = {}
        #: asn -> set of customer asns.
        self._customers: dict[int, set[int]] = {}
        #: asn -> set of peer asns.
        self._peers: dict[int, set[int]] = {}
        self._asns: set[int] = set()

    def __contains__(self, asn: int) -> bool:
        return asn in self._asns

    def __len__(self) -> int:
        return len(self._asns)

    def _touch(self, asn: int) -> None:
        if asn not in self._asns:
            self._asns.add(asn)
            self._providers.setdefault(asn, set())
            self._customers.setdefault(asn, set())
            self._peers.setdefault(asn, set())

    def add_customer(self, provider: int, customer: int) -> None:
        """Record that ``customer`` buys transit from ``provider``."""
        if provider == customer:
            raise RoutingError(f"AS{provider} cannot be its own provider")
        self._touch(provider)
        self._touch(customer)
        if provider in self._customers[customer]:
            raise RoutingError(
                f"AS{provider} is already a customer of AS{customer}"
            )
        self._customers[provider].add(customer)
        self._providers[customer].add(provider)

    def add_peer(self, a: int, b: int) -> None:
        """Record a settlement-free peering between two ASes."""
        if a == b:
            raise RoutingError(f"AS{a} cannot peer with itself")
        self._touch(a)
        self._touch(b)
        self._peers[a].add(b)
        self._peers[b].add(a)

    def providers_of(self, asn: int) -> set[int]:
        """Direct transit providers of an AS."""
        return set(self._providers.get(asn, set()))

    def customers_of(self, asn: int) -> set[int]:
        """Direct customers of an AS."""
        return set(self._customers.get(asn, set()))

    def peers_of(self, asn: int) -> set[int]:
        """Peering partners of an AS."""
        return set(self._peers.get(asn, set()))

    def degree(self, asn: int) -> int:
        """Total relationship count of an AS."""
        return (
            len(self._providers.get(asn, ()))
            + len(self._customers.get(asn, ()))
            + len(self._peers.get(asn, ()))
        )

    # ------------------------------------------------------------------
    # Valley-free best-path computation
    # ------------------------------------------------------------------

    def best_path(self, src: int, dst: int) -> AsPath | None:
        """The shortest valley-free path, or None if unreachable.

        Ties break towards the lexicographically smallest AS sequence,
        making selection deterministic.
        """
        if src not in self._asns or dst not in self._asns:
            raise RoutingError(f"unknown AS in path query: {src} -> {dst}")
        if src == dst:
            return AsPath((src,))
        # BFS over (asn, phase); track best predecessor per state.
        start = (src, _UP)
        best_prev: dict[tuple[int, int], tuple[int, int] | None] = {start: None}
        queue = deque([start])
        found: list[tuple[int, int]] = []
        depth = {start: 0}
        found_depth: int | None = None
        while queue:
            state = queue.popleft()
            asn, phase = state
            if found_depth is not None and depth[state] >= found_depth:
                continue
            for next_asn, next_phase in sorted(self._transitions(asn, phase)):
                next_state = (next_asn, next_phase)
                if next_state in best_prev:
                    continue
                best_prev[next_state] = state
                depth[next_state] = depth[state] + 1
                if next_asn == dst:
                    found.append(next_state)
                    found_depth = depth[next_state]
                else:
                    queue.append(next_state)
        if not found:
            return None
        # Reconstruct all shortest candidates; pick the smallest sequence.
        candidates = []
        for state in found:
            path = []
            cursor: tuple[int, int] | None = state
            while cursor is not None:
                path.append(cursor[0])
                cursor = best_prev[cursor]
            candidates.append(tuple(reversed(path)))
        return AsPath(min(candidates))

    def _transitions(self, asn: int, phase: int):
        """Valley-free next-hop states from (asn, phase)."""
        if phase == _UP:
            for provider in self._providers[asn]:
                yield provider, _UP
            for peer in self._peers[asn]:
                yield peer, _ACROSS
        if phase in (_UP, _ACROSS, _DOWN):
            for customer in self._customers[asn]:
                yield customer, _DOWN

    def reachable(self, src: int, dst: int) -> bool:
        """Whether a valley-free path exists."""
        return self.best_path(src, dst) is not None


@dataclass
class PathLoad:
    """Aggregate load statistics over a set of AS paths."""

    paths: list[AsPath] = field(default_factory=list)

    def add(self, path: AsPath) -> None:
        """Record one path in the aggregate."""
        self.paths.append(path)

    def transit_shares(self) -> dict[int, float]:
        """Per-transit-AS share of paths crossing it."""
        if not self.paths:
            return {}
        counts: dict[int, int] = {}
        for path in self.paths:
            for asn in sorted(set(path.transits())):
                counts[asn] = counts.get(asn, 0) + 1
        return {asn: count / len(self.paths) for asn, count in counts.items()}

    def bottleneck(self) -> tuple[int, float] | None:
        """The transit AS carrying the largest path share."""
        shares = self.transit_shares()
        if not shares:
            return None
        asn = max(shares, key=lambda a: (shares[a], -a))
        return asn, shares[asn]

    def average_hops(self) -> float:
        """Mean inter-AS hop count."""
        if not self.paths:
            return 0.0
        return sum(p.hops for p in self.paths) / len(self.paths)
