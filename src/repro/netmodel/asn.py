"""Autonomous systems and the AS registry.

The paper's analyses attribute addresses and prefixes to ASes: ingress
relays live in Apple's AS714 and the "Akamai private relay" AS36183;
egress relays live in AS36183, Akamai's AS20940, Cloudflare's AS13335,
and Fastly's AS54113.  Client traffic originates from tens of thousands
of other ASes.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.errors import RoutingError
from repro.netmodel.addr import Prefix


class WellKnownAS(enum.IntEnum):
    """AS numbers that appear by name in the paper."""

    APPLE = 714
    AKAMAI_PR = 36183  # "Akamai private relay" AS, first visible June 2021
    AKAMAI_EG = 20940  # Akamai's long-standing CDN AS
    CLOUDFLARE = 13335
    FASTLY = 54113


#: Human-readable operator names used in tables, keyed by AS number.
OPERATOR_NAMES: dict[int, str] = {
    WellKnownAS.APPLE: "Apple",
    WellKnownAS.AKAMAI_PR: "Akamai_PR",
    WellKnownAS.AKAMAI_EG: "Akamai_EG",
    WellKnownAS.CLOUDFLARE: "Cloudflare",
    WellKnownAS.FASTLY: "Fastly",
}


def operator_name(asn: int) -> str:
    """Table label for an AS number (falls back to ``AS<number>``)."""
    return OPERATOR_NAMES.get(asn, f"AS{asn}")


@dataclass
class AutonomousSystem:
    """One AS: number, name, country of registration, originated prefixes."""

    number: int
    name: str
    country: str = "ZZ"
    prefixes: list[Prefix] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not 0 < self.number < 2**32:
            raise RoutingError(f"AS number {self.number} out of range")

    def add_prefix(self, prefix: Prefix) -> None:
        """Record a prefix originated by this AS."""
        self.prefixes.append(prefix)

    def prefixes_v(self, version: int) -> list[Prefix]:
        """Originated prefixes of one IP version."""
        return [p for p in self.prefixes if p.version == version]

    def __hash__(self) -> int:
        return hash(self.number)


class ASRegistry:
    """All ASes known to a simulated world, indexed by number."""

    def __init__(self) -> None:
        self._by_number: dict[int, AutonomousSystem] = {}

    def __len__(self) -> int:
        return len(self._by_number)

    def __contains__(self, number: int) -> bool:
        return number in self._by_number

    def __iter__(self):
        return iter(self._by_number.values())

    def register(self, asys: AutonomousSystem) -> AutonomousSystem:
        """Add an AS; re-registering an existing number is an error."""
        if asys.number in self._by_number:
            raise RoutingError(f"AS{asys.number} already registered")
        self._by_number[asys.number] = asys
        return asys

    def ensure(self, number: int, name: str | None = None, country: str = "ZZ") -> AutonomousSystem:
        """Return the AS with ``number``, creating it if unknown."""
        existing = self._by_number.get(number)
        if existing is not None:
            return existing
        asys = AutonomousSystem(number, name or f"AS{number}", country)
        self._by_number[number] = asys
        return asys

    def get(self, number: int) -> AutonomousSystem:
        """The AS with ``number``; raises RoutingError if unknown."""
        try:
            return self._by_number[number]
        except KeyError:
            raise RoutingError(f"unknown AS{number}") from None

    def numbers(self) -> list[int]:
        """All registered AS numbers, sorted."""
        return sorted(self._by_number)
