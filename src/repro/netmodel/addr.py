"""Integer-backed IP addresses and prefixes.

The scanners in this library iterate over millions of subnets, so address
arithmetic must be cheap.  :class:`IPAddress` and :class:`Prefix` store the
address as a plain ``int`` plus an IP version, parse from and render to the
usual textual forms, and provide the subnet arithmetic the ECS scanner and
the egress-list analysis need (containment, iteration over /24 blocks,
supernet truncation).

The standard library :mod:`ipaddress` module is used for parsing and
formatting only; hot paths never construct :mod:`ipaddress` objects.
"""

from __future__ import annotations

import ipaddress
from dataclasses import dataclass
from typing import Iterator

from repro.errors import AddressError

IPV4_BITS = 32
IPV6_BITS = 128
_MAX = {4: (1 << IPV4_BITS) - 1, 6: (1 << IPV6_BITS) - 1}
_BITS = {4: IPV4_BITS, 6: IPV6_BITS}
# Host-bit masks indexed by [version][prefix length].  Worldgen and the
# scanner compute these hundreds of thousands of times; a table lookup
# beats re-deriving the shift each call.
_HOST_MASKS = {
    4: tuple((1 << (IPV4_BITS - length)) - 1 for length in range(IPV4_BITS + 1)),
    6: tuple((1 << (IPV6_BITS - length)) - 1 for length in range(IPV6_BITS + 1)),
}


def _check_version(version: int) -> None:
    if version not in (4, 6):
        raise AddressError(f"IP version must be 4 or 6, got {version}")


@dataclass(frozen=True, slots=True, order=True)
class IPAddress:
    """A single IPv4 or IPv6 address, stored as an integer."""

    version: int
    value: int

    def __post_init__(self) -> None:
        _check_version(self.version)
        if not 0 <= self.value <= _MAX[self.version]:
            raise AddressError(
                f"address value {self.value:#x} out of range for IPv{self.version}"
            )

    @classmethod
    def parse(cls, text: str) -> "IPAddress":
        """Parse dotted-quad IPv4 or colon-hex IPv6 text."""
        try:
            parsed = ipaddress.ip_address(text.strip())
        except ValueError as exc:
            raise AddressError(f"invalid IP address {text!r}: {exc}") from exc
        return cls(parsed.version, int(parsed))

    @property
    def bits(self) -> int:
        """Address width in bits (32 or 128)."""
        return _BITS[self.version]

    def __str__(self) -> str:
        if self.version == 4:
            return str(ipaddress.IPv4Address(self.value))
        return str(ipaddress.IPv6Address(self.value))

    def to_prefix(self, length: int | None = None) -> "Prefix":
        """The prefix of the given length containing this address.

        With no length, returns the host prefix (/32 or /128).
        """
        if length is None:
            length = self.bits
        return Prefix.from_address(self, length)

    def packed(self) -> bytes:
        """Network-byte-order packed representation (4 or 16 bytes)."""
        return self.value.to_bytes(self.bits // 8, "big")

    @classmethod
    def from_packed(cls, data: bytes) -> "IPAddress":
        """Parse a 4-byte IPv4 or 16-byte IPv6 packed address."""
        if len(data) == 4:
            return cls(4, int.from_bytes(data, "big"))
        if len(data) == 16:
            return cls(6, int.from_bytes(data, "big"))
        raise AddressError(f"packed address must be 4 or 16 bytes, got {len(data)}")


@dataclass(frozen=True, slots=True, order=True)
class Prefix:
    """A CIDR prefix: version, network value (host bits zero) and length."""

    version: int
    value: int
    length: int

    def __post_init__(self) -> None:
        _check_version(self.version)
        bits = _BITS[self.version]
        if not 0 <= self.length <= bits:
            raise AddressError(
                f"prefix length {self.length} out of range for IPv{self.version}"
            )
        if not 0 <= self.value <= _MAX[self.version]:
            raise AddressError(f"prefix value {self.value:#x} out of range")
        if self.value & self.host_mask():
            raise AddressError(
                f"prefix {self.value:#x}/{self.length} has non-zero host bits"
            )

    @classmethod
    def parse(cls, text: str) -> "Prefix":
        """Parse CIDR notation such as ``203.0.113.0/24`` or ``2001:db8::/64``."""
        try:
            parsed = ipaddress.ip_network(text.strip(), strict=True)
        except ValueError as exc:
            raise AddressError(f"invalid prefix {text!r}: {exc}") from exc
        return cls(parsed.version, int(parsed.network_address), parsed.prefixlen)

    @classmethod
    def from_address(cls, address: IPAddress, length: int) -> "Prefix":
        """The length-``length`` prefix containing ``address``."""
        bits = address.bits
        if not 0 <= length <= bits:
            raise AddressError(f"prefix length {length} out of range")
        mask = ((1 << length) - 1) << (bits - length)
        return cls(address.version, address.value & mask, length)

    @property
    def bits(self) -> int:
        """Address width in bits (32 or 128)."""
        return _BITS[self.version]

    def host_mask(self) -> int:
        """Integer mask covering the host bits of this prefix."""
        return _HOST_MASKS[self.version][self.length]

    def network_mask(self) -> int:
        """Integer mask covering the network bits of this prefix."""
        return _MAX[self.version] ^ self.host_mask()

    @property
    def network_address(self) -> IPAddress:
        """The first address of the prefix."""
        return IPAddress(self.version, self.value)

    @property
    def broadcast_value(self) -> int:
        """Integer value of the last address in the prefix."""
        return self.value | self.host_mask()

    def num_addresses(self) -> int:
        """Total number of addresses covered by the prefix."""
        return 1 << (self.bits - self.length)

    def __str__(self) -> str:
        return f"{IPAddress(self.version, self.value)}/{self.length}"

    def contains_value(self, value: int) -> bool:
        """Whether the integer address ``value`` falls inside the prefix."""
        return self.value <= value <= self.broadcast_value

    def contains_address(self, address: IPAddress) -> bool:
        """Whether ``address`` falls inside this prefix (version-checked)."""
        return self.version == address.version and self.contains_value(address.value)

    def contains_prefix(self, other: "Prefix") -> bool:
        """Whether ``other`` is equal to or more specific than this prefix."""
        return (
            self.version == other.version
            and other.length >= self.length
            and self.contains_value(other.value)
        )

    def truncate(self, length: int) -> "Prefix":
        """The shorter prefix of the given length containing this one."""
        if length > self.length:
            raise AddressError(
                f"cannot truncate /{self.length} to longer /{length}"
            )
        return Prefix.from_address(self.network_address, length)

    def subnets(self, new_length: int) -> Iterator["Prefix"]:
        """Iterate the subnets of this prefix at ``new_length``.

        The ECS scanner uses this to walk /24 client subnets inside routed
        BGP prefixes.  Iteration is lazy; a /8 split into /24s yields 65536
        prefixes without materialising them.
        """
        if new_length < self.length:
            raise AddressError(
                f"new length /{new_length} shorter than prefix /{self.length}"
            )
        if new_length > self.bits:
            raise AddressError(f"new length /{new_length} exceeds address width")
        step = 1 << (self.bits - new_length)
        for value in range(self.value, self.broadcast_value + 1, step):
            yield Prefix(self.version, value, new_length)

    def count_subnets(self, new_length: int) -> int:
        """Number of subnets of ``new_length`` inside this prefix."""
        if new_length < self.length:
            raise AddressError(
                f"new length /{new_length} shorter than prefix /{self.length}"
            )
        return 1 << (new_length - self.length)

    def address_at(self, offset: int) -> IPAddress:
        """The address at ``offset`` from the network address."""
        if not 0 <= offset < self.num_addresses():
            raise AddressError(
                f"offset {offset} outside prefix {self} ({self.num_addresses()} addrs)"
            )
        return IPAddress(self.version, self.value + offset)

    def overlaps(self, other: "Prefix") -> bool:
        """Whether the two prefixes share any address."""
        if self.version != other.version:
            return False
        return self.contains_prefix(other) or other.contains_prefix(self)


def summarize_covered_slash24s(prefixes: list[Prefix]) -> int:
    """Count distinct /24 blocks covered by a set of IPv4 prefixes.

    Prefixes longer than /24 count as covering their enclosing /24 (the
    paper's ECS scan operates at /24 granularity).  Overlapping prefixes
    are not double counted.
    """
    covered: set[int] = set()
    spans: list[tuple[int, int]] = []
    for prefix in prefixes:
        if prefix.version != 4:
            raise AddressError("slash-24 summarisation is IPv4-only")
        start = prefix.value >> 8
        end = prefix.broadcast_value >> 8
        if end - start < 4096:
            covered.update(range(start, end + 1))
        else:
            spans.append((start, end))
    if not spans:
        return len(covered)
    # Merge large spans and subtract double counting against the small set.
    spans.sort()
    merged: list[tuple[int, int]] = []
    for start, end in spans:
        if merged and start <= merged[-1][1] + 1:
            merged[-1] = (merged[-1][0], max(merged[-1][1], end))
        else:
            merged.append((start, end))
    total = sum(end - start + 1 for start, end in merged)
    for block in covered:
        if any(start <= block <= end for start, end in merged):
            continue
        total += 1
    return total
