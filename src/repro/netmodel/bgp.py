"""BGP announcements, the global routing table, and visibility history.

Three consumers drive this module's shape:

* The ECS scanner prunes address space not seen as routable by the local
  BGP feed (the paper's ethics measure), so it needs an efficient
  "is this /24 covered by any announced prefix" test and iteration over
  routed prefixes.
* Table 1/Table 3 attribute addresses and egress subnets to the BGP
  prefixes covering them, so longest-prefix match by origin AS is needed.
* Section 6 examines the *monthly* BGP visibility of AS36183 from 2016
  through 2022 and finds its first occurrence in June 2021, so a monthly
  snapshot history keyed by calendar month is needed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from repro.errors import RoutingError
from repro.netmodel.addr import IPAddress, Prefix
from repro.netmodel.prefix_trie import DualStackTrie
from repro.perfstats import CacheStats
from repro.simtime import format_month, month_index


@dataclass(frozen=True, slots=True)
class Announcement:
    """A BGP origination: one prefix announced by one origin AS."""

    prefix: Prefix
    origin_asn: int

    def __str__(self) -> str:
        return f"{self.prefix} via AS{self.origin_asn}"


class RoutingTable:
    """A snapshot of the global (DFZ-style) routing table.

    Stores one origin per prefix — MOAS conflicts are rejected, which is
    accurate enough for the single-feed viewpoint the paper's scanner has.
    """

    def __init__(self) -> None:
        self._trie: DualStackTrie[Announcement] = DualStackTrie()
        self._by_origin: dict[int, list[Announcement]] = {}
        # Per-address route memo: the ECS scanner attributes every answer
        # through origin_of(), and answers repeat the same few hundred
        # relay addresses millions of times.  Invalidated wholesale on any
        # announce/withdraw.
        self._route_memo: dict[tuple[int, int], Announcement | None] = {}
        self.origin_stats = CacheStats()
        #: Bumped on every announce/withdraw; consumers (the scanner's
        #: routed-span cache) key derived data on it.
        self.version = 0

    def __len__(self) -> int:
        return len(self._trie)

    def _invalidate_memo(self) -> None:
        if self._route_memo:
            self._route_memo.clear()
            self.origin_stats.invalidations += 1

    def announce(self, prefix: Prefix, origin_asn: int) -> Announcement:
        """Add an origination to the table."""
        existing = self._trie.exact(prefix)
        if existing is not None:
            if existing.origin_asn == origin_asn:
                return existing
            raise RoutingError(
                f"{prefix} already announced by AS{existing.origin_asn}, "
                f"refusing conflicting origin AS{origin_asn}"
            )
        ann = Announcement(prefix, origin_asn)
        self._trie.insert(prefix, ann)
        self._by_origin.setdefault(origin_asn, []).append(ann)
        self._invalidate_memo()
        self.version += 1
        return ann

    def withdraw(self, prefix: Prefix) -> bool:
        """Remove a prefix from the table; returns whether it was present."""
        ann = self._trie.exact(prefix)
        if ann is None:
            return False
        self._trie.remove(prefix)
        self._by_origin[ann.origin_asn].remove(ann)
        self._invalidate_memo()
        self.version += 1
        return True

    def lookup(self, address: IPAddress) -> Announcement | None:
        """Longest-prefix-match route for an address, or None (memoised)."""
        key = (address.version, address.value)
        memo = self._route_memo
        if key in memo:
            self.origin_stats.hits += 1
            return memo[key]
        self.origin_stats.misses += 1
        hit = self._trie.lookup(address)
        ann = hit[1] if hit else None
        memo[key] = ann
        return ann

    def origin_of(self, address: IPAddress) -> int | None:
        """Origin AS number for an address, or None if unrouted."""
        ann = self.lookup(address)
        return ann.origin_asn if ann else None

    def covering_route(self, prefix: Prefix) -> Announcement | None:
        """The announcement covering the entire ``prefix``, or None."""
        hit = self._trie.covering(prefix)
        return hit[1] if hit else None

    def routed_prefix_of(self, address: IPAddress) -> Prefix | None:
        """The announced prefix that routes ``address``, or None."""
        ann = self.lookup(address)
        return ann.prefix if ann else None

    def is_routed(self, address: IPAddress) -> bool:
        """Whether any announced prefix covers the address."""
        return self.lookup(address) is not None

    def announcements(self) -> Iterator[Announcement]:
        """Iterate all announcements (both IP versions)."""
        for _prefix, ann in self._trie.items():
            yield ann

    def prefixes_by_origin(self, origin_asn: int, version: int | None = None) -> list[Prefix]:
        """Prefixes announced by one AS, optionally filtered by version."""
        anns = self._by_origin.get(origin_asn, [])
        return [
            a.prefix for a in anns if version is None or a.prefix.version == version
        ]

    def origins(self) -> set[int]:
        """All origin AS numbers present in the table."""
        return {asn for asn, anns in self._by_origin.items() if anns}

    def routed_v4_prefixes(self) -> list[Prefix]:
        """All announced IPv4 prefixes — the scanner's iteration universe."""
        return [ann.prefix for ann in self.announcements() if ann.prefix.version == 4]


class BgpHistory:
    """Monthly BGP visibility snapshots.

    The paper examined the visibility of AS36183 "monthly from 2016 to
    2022" and found the first occurrence in June 2021.  This class records,
    per calendar month, the set of origin ASes visible (and optionally the
    full table), and answers first-occurrence queries.
    """

    def __init__(self) -> None:
        self._months: dict[int, frozenset[int]] = {}
        self._tables: dict[int, RoutingTable] = {}

    def record(self, year: int, month: int, table: RoutingTable, keep_table: bool = False) -> None:
        """Record the snapshot for a calendar month."""
        idx = month_index(year, month)
        self._months[idx] = frozenset(table.origins())
        if keep_table:
            self._tables[idx] = table

    def record_origins(self, year: int, month: int, origins) -> None:
        """Record only the visible-origin set for a month (compact form).

        Passing the same ``frozenset`` for many months shares storage —
        worldgen records 77 monthly snapshots of ~70 k origins this way.
        """
        self._months[month_index(year, month)] = frozenset(origins)

    def months(self) -> list[tuple[int, int]]:
        """All recorded (year, month) pairs in chronological order."""
        from repro.simtime import EPOCH_MONTH, EPOCH_YEAR

        out = []
        for idx in sorted(self._months):
            year, month0 = divmod(idx + (EPOCH_MONTH - 1), 12)
            out.append((EPOCH_YEAR + year, month0 + 1))
        return out

    def visible_in(self, year: int, month: int) -> set[int]:
        """Origin ASes visible in the given month (empty if unrecorded)."""
        return set(self._months.get(month_index(year, month), set()))

    def first_occurrence(self, asn: int) -> tuple[int, int] | None:
        """First recorded month in which ``asn`` was visible, or None."""
        for year, month in self.months():
            if asn in self._months[month_index(year, month)]:
                return year, month
        return None

    def table_for(self, year: int, month: int) -> RoutingTable | None:
        """The full routing table kept for a month, if recorded with one."""
        return self._tables.get(month_index(year, month))

    def visibility_series(self, asn: int) -> list[tuple[str, bool]]:
        """Per-month visibility of one AS, as (``YYYY-MM``, visible) pairs."""
        return [
            (format_month(year, month), asn in self._months[month_index(year, month)])
            for year, month in self.months()
        ]
