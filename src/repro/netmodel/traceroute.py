"""Traceroute over the simulated topology.

Produces the hop list a TTL-limited probe train would elicit, including
cumulative RTTs, and exposes the *last hop* — the datum the paper uses to
show that AS36183 ingress and egress relays sit behind the same router.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.netmodel.addr import IPAddress
from repro.netmodel.topology import Topology


@dataclass(frozen=True, slots=True)
class TracerouteHop:
    """One hop: TTL index, responding interface, cumulative RTT."""

    ttl: int
    address: IPAddress
    asn: int
    rtt_ms: float


@dataclass(frozen=True, slots=True)
class TracerouteResult:
    """A completed traceroute: hops plus the destination address."""

    destination: IPAddress
    hops: tuple[TracerouteHop, ...]

    @property
    def last_hop(self) -> TracerouteHop:
        """The final router hop before the destination host."""
        if not self.hops:
            raise ValueError("traceroute produced no hops")
        return self.hops[-1]

    @property
    def hop_addresses(self) -> tuple[IPAddress, ...]:
        """The responding interface address at every hop."""
        return tuple(hop.address for hop in self.hops)

    def shares_last_hop_with(self, other: "TracerouteResult") -> bool:
        """Whether two traceroutes end at the same last-hop interface."""
        return self.last_hop.address == other.last_hop.address


def traceroute(
    topology: Topology, vantage_router_id: str, destination: IPAddress
) -> TracerouteResult:
    """Trace the router path from a vantage router to a host address.

    Hops exclude the vantage's own router (as a real traceroute's first
    responding hop is the first *remote* router) and end at the host's
    last-hop router.
    """
    path = topology.path_to_host(vantage_router_id, destination)
    hops = []
    cumulative = 0.0
    for ttl, (prev, router) in enumerate(zip(path, path[1:]), start=1):
        cumulative += topology.path_latency_ms([prev, router])
        hops.append(
            TracerouteHop(
                ttl=ttl,
                address=router.interface,
                asn=router.asn,
                rtt_ms=round(2 * cumulative, 3),
            )
        )
    if len(path) == 1:
        # Destination attached directly behind the vantage router.
        only = path[0]
        hops.append(TracerouteHop(ttl=1, address=only.interface, asn=only.asn, rtt_ms=0.0))
    return TracerouteResult(destination=destination, hops=tuple(hops))
