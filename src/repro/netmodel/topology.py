"""Router-level topology.

Section 6 of the paper validates the ingress/egress co-location finding
with traceroutes: ingress and egress addresses inside AS36183 share the
*same last-hop router*.  To reproduce that as a real path measurement we
model a router graph: routers belong to ASes, links carry latencies, and
host addresses attach to a specific router (their last hop).

Path computation uses :mod:`networkx` shortest paths weighted by link
latency, which stands in for the BGP+IGP path selection a traceroute
would traverse.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import networkx as nx

from repro.errors import TopologyError
from repro.netmodel.addr import IPAddress


@dataclass(frozen=True, slots=True)
class Router:
    """A router: stable id, owning AS, and its interface address."""

    router_id: str
    asn: int
    interface: IPAddress

    def __str__(self) -> str:
        return f"{self.router_id}(AS{self.asn}, {self.interface})"


@dataclass
class Topology:
    """A graph of routers with host attachments.

    Hosts (relay addresses, web servers, vantage points) attach to exactly
    one router; that router is the host's last hop as seen by traceroute.
    """

    _graph: nx.Graph = field(default_factory=nx.Graph)
    _routers: dict[str, Router] = field(default_factory=dict)
    _host_router: dict[IPAddress, Router] = field(default_factory=dict)

    def add_router(self, router: Router) -> Router:
        """Add a router node; duplicate ids are an error."""
        if router.router_id in self._routers:
            raise TopologyError(f"router {router.router_id} already exists")
        self._routers[router.router_id] = router
        self._graph.add_node(router.router_id)
        return router

    def router(self, router_id: str) -> Router:
        """Look up a router by id."""
        try:
            return self._routers[router_id]
        except KeyError:
            raise TopologyError(f"unknown router {router_id!r}") from None

    def routers(self) -> list[Router]:
        """All routers."""
        return list(self._routers.values())

    def add_link(self, a: str, b: str, latency_ms: float = 1.0) -> None:
        """Connect two routers with a link of the given latency."""
        if a not in self._routers or b not in self._routers:
            raise TopologyError(f"link endpoints must exist: {a!r} - {b!r}")
        if a == b:
            raise TopologyError(f"self-link on router {a!r}")
        if latency_ms <= 0:
            raise TopologyError(f"latency must be positive, got {latency_ms}")
        self._graph.add_edge(a, b, latency=latency_ms)

    def attach_host(self, address: IPAddress, router_id: str) -> None:
        """Attach a host address behind a router (its last hop)."""
        self._host_router[address] = self.router(router_id)

    def detach_host(self, address: IPAddress) -> None:
        """Remove a host attachment (e.g. a retired relay address)."""
        self._host_router.pop(address, None)

    def host_router(self, address: IPAddress) -> Router:
        """The last-hop router of a host address."""
        try:
            return self._host_router[address]
        except KeyError:
            raise TopologyError(f"no host attached with address {address}") from None

    def has_host(self, address: IPAddress) -> bool:
        """Whether an address is attached anywhere in the topology."""
        return address in self._host_router

    def hosts(self) -> list[IPAddress]:
        """All attached host addresses."""
        return list(self._host_router)

    def router_path(self, src_router_id: str, dst_router_id: str) -> list[Router]:
        """Latency-shortest router path between two routers (inclusive)."""
        self.router(src_router_id)
        self.router(dst_router_id)
        try:
            node_path = nx.shortest_path(
                self._graph, src_router_id, dst_router_id, weight="latency"
            )
        except nx.NetworkXNoPath:
            raise TopologyError(
                f"no path between {src_router_id!r} and {dst_router_id!r}"
            ) from None
        return [self._routers[node] for node in node_path]

    def path_to_host(self, src_router_id: str, destination: IPAddress) -> list[Router]:
        """Router path from a source router to a host address."""
        last_hop = self.host_router(destination)
        return self.router_path(src_router_id, last_hop.router_id)

    def path_latency_ms(self, routers: list[Router]) -> float:
        """Summed link latency along a router path."""
        total = 0.0
        for a, b in zip(routers, routers[1:]):
            total += self._graph.edges[a.router_id, b.router_id]["latency"]
        return total
