"""Countries, cities, and coordinates.

The egress-list analyses (Table 3/4, Figures 2/4/5) group subnets by
ISO-3166 country code and city name, and the geo scatter figures need
coordinates.  This module provides the small value types plus a seeded
synthetic gazetteer: country codes with a population-like weight and a
set of cities per country with plausible coordinates.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass

from repro.errors import WorldGenError

#: ISO 3166-1 alpha-2 codes used by the synthetic world.  The real egress
#: list covers ~240 CCs; we enumerate a full-sized code universe by
#: combining real high-weight codes with generated two-letter codes.
MAJOR_COUNTRY_CODES: tuple[str, ...] = (
    "US", "DE", "GB", "FR", "CA", "JP", "AU", "NL", "BR", "IN",
    "IT", "ES", "SE", "CH", "PL", "RU", "KR", "MX", "SG", "HK",
    "ZA", "AR", "TR", "ID", "TH", "VN", "PH", "MY", "NO", "DK",
    "FI", "IE", "AT", "BE", "CZ", "PT", "RO", "GR", "HU", "NZ",
    "IL", "AE", "SA", "EG", "NG", "KE", "CL", "CO", "PE", "UA",
)

#: Region tags used for ingress "pod" locality and probe bias.
REGIONS: tuple[str, ...] = ("NA", "EU", "AS", "SA", "AF", "OC")

#: Continental placement of the major codes (approximate, for regions
#: and coordinates); generated codes are spread across all regions.
_MAJOR_REGION: dict[str, str] = {
    "US": "NA", "CA": "NA", "MX": "NA",
    "BR": "SA", "AR": "SA", "CL": "SA", "CO": "SA", "PE": "SA",
    "DE": "EU", "GB": "EU", "FR": "EU", "NL": "EU", "IT": "EU", "ES": "EU",
    "SE": "EU", "CH": "EU", "PL": "EU", "RU": "EU", "NO": "EU", "DK": "EU",
    "FI": "EU", "IE": "EU", "AT": "EU", "BE": "EU", "CZ": "EU", "PT": "EU",
    "RO": "EU", "GR": "EU", "HU": "EU", "UA": "EU", "TR": "EU",
    "JP": "AS", "IN": "AS", "KR": "AS", "SG": "AS", "HK": "AS", "ID": "AS",
    "TH": "AS", "VN": "AS", "PH": "AS", "MY": "AS", "IL": "AS", "AE": "AS",
    "SA": "AS",
    "ZA": "AF", "EG": "AF", "NG": "AF", "KE": "AF",
    "AU": "OC", "NZ": "OC",
}

#: Rough region centroids (lat, lon) for synthetic coordinates.
_REGION_CENTROID: dict[str, tuple[float, float]] = {
    "NA": (42.0, -98.0),
    "EU": (50.0, 12.0),
    "AS": (28.0, 100.0),
    "SA": (-12.0, -58.0),
    "AF": (4.0, 22.0),
    "OC": (-28.0, 140.0),
}


@dataclass(frozen=True, slots=True)
class GeoPoint:
    """A latitude/longitude pair in degrees."""

    lat: float
    lon: float

    def __post_init__(self) -> None:
        if not -90.0 <= self.lat <= 90.0:
            raise WorldGenError(f"latitude {self.lat} out of range")
        if not -180.0 <= self.lon <= 180.0:
            raise WorldGenError(f"longitude {self.lon} out of range")

    def distance_km(self, other: "GeoPoint") -> float:
        """Great-circle distance via the haversine formula."""
        lat1, lon1 = math.radians(self.lat), math.radians(self.lon)
        lat2, lon2 = math.radians(other.lat), math.radians(other.lon)
        dlat, dlon = lat2 - lat1, lon2 - lon1
        a = math.sin(dlat / 2) ** 2 + math.cos(lat1) * math.cos(lat2) * math.sin(dlon / 2) ** 2
        return 6371.0 * 2 * math.asin(math.sqrt(a))


@dataclass(frozen=True, slots=True)
class City:
    """A city: name, country code, region tag, and coordinates."""

    name: str
    country: str
    region: str
    location: GeoPoint


class Gazetteer:
    """A seeded synthetic set of countries and cities.

    ``country_codes`` enumerates all CCs, ``cities_in(cc)`` lists cities
    per country.  Country weights follow the paper's observation that
    deployments concentrate heavily in the US (58 % of subnets) with DE a
    distant second (3.6 %) and a long tail of 123 CCs below 50 subnets.
    """

    def __init__(self, seed: int, num_countries: int = 250, cities_per_country: tuple[int, int] = (2, 9000)) -> None:
        if num_countries < len(MAJOR_COUNTRY_CODES):
            raise WorldGenError(
                f"need at least {len(MAJOR_COUNTRY_CODES)} countries, got {num_countries}"
            )
        rng = random.Random(seed)
        self._countries: list[str] = list(MAJOR_COUNTRY_CODES)
        self._region_of: dict[str, str] = dict(_MAJOR_REGION)
        letters = "ABCDEFGHIJKLMNOPQRSTUVWXYZ"
        seen = set(self._countries)
        while len(self._countries) < num_countries:
            code = rng.choice(letters) + rng.choice(letters)
            if code in seen:
                continue
            seen.add(code)
            self._countries.append(code)
            self._region_of[code] = rng.choice(REGIONS)
        self._cities: dict[str, list[City]] = {}
        lo, hi = cities_per_country
        for rank, code in enumerate(self._countries):
            # Richer countries (lower rank) get more cities; long tail gets
            # few.  The harmonic decay yields ~6x the max as the total —
            # enough distinct cities for the paper's 14 k-city coverage.
            count = max(lo, min(hi, int(hi / (1 + rank))))
            region = self._region_of[code]
            clat, clon = _REGION_CENTROID[region]
            cities = []
            for i in range(count):
                lat = max(-89.0, min(89.0, clat + rng.uniform(-18.0, 18.0)))
                lon = clon + rng.uniform(-28.0, 28.0)
                lon = (lon + 180.0) % 360.0 - 180.0
                cities.append(City(f"{code}-City-{i:03d}", code, region, GeoPoint(lat, lon)))
            self._cities[code] = cities

    @property
    def country_codes(self) -> list[str]:
        """All country codes, most significant first."""
        return list(self._countries)

    def region_of(self, country: str) -> str:
        """Region tag for a country code."""
        try:
            return self._region_of[country]
        except KeyError:
            raise WorldGenError(f"unknown country code {country!r}") from None

    def cities_in(self, country: str) -> list[City]:
        """Cities of one country, stable order."""
        try:
            return list(self._cities[country])
        except KeyError:
            raise WorldGenError(f"unknown country code {country!r}") from None

    def all_cities(self) -> list[City]:
        """Every city across all countries."""
        return [city for cities in self._cities.values() for city in cities]

    def city(self, country: str, name: str) -> City | None:
        """Look up one city by country code and name (None if unknown)."""
        index = getattr(self, "_city_index", None)
        if index is None:
            index = {
                (c.country, c.name): c
                for cities in self._cities.values()
                for c in cities
            }
            self._city_index = index
        return index.get((country, name))
