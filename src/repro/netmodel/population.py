"""APNIC-style AS population dataset.

Table 2 of the paper attributes users to ingress operators using the
APNIC "Visible ASNs: Customer Populations" dataset, which estimates the
number of Internet users per origin AS.  The dataset has AS granularity
only — exactly the property that forces the paper's "Both" row, because
ASes whose subnets are split between Apple and Akamai cannot have their
users attributed to either operator.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import MeasurementError


@dataclass
class ASPopulationDataset:
    """Estimated user population per AS number."""

    _pop: dict[int, int] = field(default_factory=dict)

    def set_population(self, asn: int, users: int) -> None:
        """Record the user estimate for an AS."""
        if users < 0:
            raise MeasurementError(f"negative population {users} for AS{asn}")
        self._pop[asn] = users

    def population(self, asn: int) -> int:
        """User estimate for an AS (0 if the AS is not in the dataset)."""
        return self._pop.get(asn, 0)

    def total_population(self, asns) -> int:
        """Summed user estimate over a collection of AS numbers."""
        return sum(self._pop.get(asn, 0) for asn in sorted(set(asns)))

    def __len__(self) -> int:
        return len(self._pop)

    def __contains__(self, asn: int) -> bool:
        return asn in self._pop

    def items(self) -> list[tuple[int, int]]:
        """All (asn, users) pairs, sorted by AS number."""
        return sorted(self._pop.items())

    @staticmethod
    def format_users(users: int) -> str:
        """Human-readable user count in the paper's style (e.g. ``994M``)."""
        if users >= 10**9:
            return f"{users / 10**9:.1f}B"
        if users >= 10**6:
            return f"{users // 10**6}M"
        if users >= 10**3:
            return f"{users / 10**3:.1f}k"
        return str(users)
