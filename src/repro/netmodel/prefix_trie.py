"""Longest-prefix-match radix trie over IP prefixes.

Used for BGP routing-table lookups, geolocation-database lookups, and
egress-list membership tests.  One trie instance handles a single IP
version; :class:`DualStackTrie` bundles one of each.

The implementation is a binary path trie: each level consumes one bit of
the key.  Nodes live in an array-backed pool (parallel lists of child
indices and values) instead of one heap object per node — worldgen
inserts hundreds of thousands of prefixes, and the pool keeps inserts
allocation-free and walks cache-friendly, while the ECS scan's per-query
lookups stay pure list indexing.  Inserts are O(prefix length); lookups
walk at most 32/128 levels and remember the last level carrying a value.
"""

from __future__ import annotations

from typing import Generic, Iterator, TypeVar

from repro.errors import AddressError
from repro.netmodel.addr import IPAddress, Prefix

V = TypeVar("V")

#: Child-pointer sentinel for "no node".
_NIL = -1


class PrefixTrie(Generic[V]):
    """Maps prefixes of a single IP version to values, with LPM lookup."""

    def __init__(self, version: int) -> None:
        if version not in (4, 6):
            raise AddressError(f"IP version must be 4 or 6, got {version}")
        self.version = version
        self._bits = 32 if version == 4 else 128
        # Node pool: node i's children are _zero[i]/_one[i] (_NIL = absent),
        # its payload _value[i] (meaningful only when _has[i]).  Node 0 is
        # the root.  Nodes are never freed; remove() only clears _has.
        self._zero: list[int] = [_NIL]
        self._one: list[int] = [_NIL]
        self._value: list[V | None] = [None]
        self._has: list[bool] = [False]
        self._size = 0

    def __len__(self) -> int:
        return self._size

    def _check(self, prefix: Prefix) -> None:
        if prefix.version != self.version:
            raise AddressError(
                f"IPv{prefix.version} prefix in IPv{self.version} trie"
            )

    def _new_node(self) -> int:
        self._zero.append(_NIL)
        self._one.append(_NIL)
        self._value.append(None)
        self._has.append(False)
        return len(self._has) - 1

    def insert(self, prefix: Prefix, value: V) -> None:
        """Insert or replace the value stored at ``prefix``."""
        self._check(prefix)
        zero, one = self._zero, self._one
        node = 0
        top = self._bits - 1
        for i in range(prefix.length):
            if (prefix.value >> (top - i)) & 1:
                child = one[node]
                if child == _NIL:
                    child = self._new_node()
                    one[node] = child
            else:
                child = zero[node]
                if child == _NIL:
                    child = self._new_node()
                    zero[node] = child
            node = child
        if not self._has[node]:
            self._size += 1
        self._value[node] = value
        self._has[node] = True

    def _find(self, prefix: Prefix) -> int:
        """Index of the node at ``prefix``, or _NIL."""
        zero, one = self._zero, self._one
        node = 0
        top = self._bits - 1
        for i in range(prefix.length):
            node = (one if (prefix.value >> (top - i)) & 1 else zero)[node]
            if node == _NIL:
                return _NIL
        return node

    def remove(self, prefix: Prefix) -> bool:
        """Remove the exact prefix; returns whether it was present."""
        self._check(prefix)
        node = self._find(prefix)
        if node != _NIL and self._has[node]:
            self._has[node] = False
            self._value[node] = None
            self._size -= 1
            return True
        return False

    def exact(self, prefix: Prefix) -> V | None:
        """The value stored exactly at ``prefix``, or None."""
        self._check(prefix)
        node = self._find(prefix)
        if node != _NIL and self._has[node]:
            return self._value[node]
        return None

    def _best_match(self, key: int, max_length: int) -> tuple[int, V] | None:
        """Longest stored (length, value) along ``key``'s first ``max_length`` bits."""
        zero, one, has, value = self._zero, self._one, self._has, self._value
        best: tuple[int, V] | None = None
        if has[0]:
            best = (0, value[0])  # type: ignore[assignment]
        node = 0
        top = self._bits - 1
        for i in range(max_length):
            node = (one if (key >> (top - i)) & 1 else zero)[node]
            if node == _NIL:
                break
            if has[node]:
                best = (i + 1, value[node])  # type: ignore[assignment]
        return best

    def lookup_value(self, address_value: int) -> tuple[Prefix, V] | None:
        """Longest-prefix match for an integer address value."""
        best = self._best_match(address_value, self._bits)
        if best is None:
            return None
        length, value = best
        prefix = Prefix.from_address(IPAddress(self.version, address_value), length)
        return prefix, value

    def lookup(self, address: IPAddress) -> tuple[Prefix, V] | None:
        """Longest-prefix match for an :class:`IPAddress`."""
        if address.version != self.version:
            raise AddressError(
                f"IPv{address.version} address in IPv{self.version} trie"
            )
        return self.lookup_value(address.value)

    def covering(self, prefix: Prefix) -> tuple[Prefix, V] | None:
        """The longest stored prefix that covers all of ``prefix``.

        Matches only entries whose length is <= ``prefix.length`` — i.e. the
        route that would carry traffic for the whole block.
        """
        self._check(prefix)
        best = self._best_match(prefix.value, prefix.length)
        if best is None:
            return None
        length, value = best
        return prefix.truncate(length), value

    def items(self) -> Iterator[tuple[Prefix, V]]:
        """Iterate all (prefix, value) pairs in preorder."""
        stack: list[tuple[int, int, int]] = [(0, 0, 0)]
        top = self._bits
        zero, one, has = self._zero, self._one, self._has
        while stack:
            node, value, length = stack.pop()
            if has[node]:
                yield (
                    Prefix(self.version, value << (top - length), length),
                    self._value[node],  # type: ignore[misc]
                )
            if one[node] != _NIL:
                stack.append((one[node], (value << 1) | 1, length + 1))
            if zero[node] != _NIL:
                stack.append((zero[node], value << 1, length + 1))


class DualStackTrie(Generic[V]):
    """A pair of tries, one per IP version, with a unified interface."""

    def __init__(self) -> None:
        self._tries = {4: PrefixTrie[V](4), 6: PrefixTrie[V](6)}

    def __len__(self) -> int:
        return len(self._tries[4]) + len(self._tries[6])

    def insert(self, prefix: Prefix, value: V) -> None:
        self._tries[prefix.version].insert(prefix, value)

    def remove(self, prefix: Prefix) -> bool:
        return self._tries[prefix.version].remove(prefix)

    def exact(self, prefix: Prefix) -> V | None:
        return self._tries[prefix.version].exact(prefix)

    def lookup(self, address: IPAddress) -> tuple[Prefix, V] | None:
        return self._tries[address.version].lookup(address)

    def covering(self, prefix: Prefix) -> tuple[Prefix, V] | None:
        return self._tries[prefix.version].covering(prefix)

    def items(self) -> Iterator[tuple[Prefix, V]]:
        yield from self._tries[4].items()
        yield from self._tries[6].items()
