"""Research-data archive bundles.

The paper publishes its data "as a research data archive" (the TUM
library record) plus rolling results on relay-networks.github.io.
:func:`write_archive` produces the same kind of bundle from a measured
campaign — everything a downstream analyst needs, in plain files:

    <dir>/
      MANIFEST.json            what's inside, seed/scale, scan calendar
      ingress-default.csv      longitudinal QUIC-relay dataset
      ingress-fallback.csv     longitudinal fallback-relay dataset
      egress-ip-ranges.csv     the May egress snapshot
      egress-ip-ranges-jan.csv the January egress snapshot
      bgp-origins.csv          per-month visibility of the relay AS

:func:`read_archive` loads a bundle back for offline analysis.
"""

from __future__ import annotations

import json
import pathlib
from dataclasses import dataclass

from repro.errors import MeasurementError
from repro.netmodel.bgp import BgpHistory
from repro.relay.egress_list import EgressList
from repro.relay.service import RELAY_DOMAIN_FALLBACK, RELAY_DOMAIN_QUIC
from repro.scan.campaign import ScanCampaign
from repro.scan.longitudinal import IngressArchive

_MANIFEST = "MANIFEST.json"
_INGRESS_DEFAULT = "ingress-default.csv"
_INGRESS_FALLBACK = "ingress-fallback.csv"
_EGRESS_MAY = "egress-ip-ranges.csv"
_EGRESS_JAN = "egress-ip-ranges-jan.csv"
_BGP = "bgp-origins.csv"

#: The AS whose visibility history the archive records.
RELAY_ASN = 36183


@dataclass
class ArchiveBundle:
    """A loaded research-data archive."""

    manifest: dict
    ingress_default: IngressArchive
    ingress_fallback: IngressArchive
    egress_may: EgressList
    egress_jan: EgressList
    relay_visibility: list[tuple[str, bool]]

    def first_relay_visibility(self) -> str | None:
        """First month the relay AS was visible, as ``YYYY-MM``."""
        for month, visible in self.relay_visibility:
            if visible:
                return month
        return None


def write_archive(
    directory: str | pathlib.Path,
    campaign: ScanCampaign,
    egress_may: EgressList,
    egress_jan: EgressList,
    history: BgpHistory,
    metadata: dict | None = None,
) -> pathlib.Path:
    """Write a campaign's public artefacts as an archive directory."""
    path = pathlib.Path(directory)
    path.mkdir(parents=True, exist_ok=True)
    (path / _INGRESS_DEFAULT).write_text(campaign.default_archive.to_csv())
    (path / _INGRESS_FALLBACK).write_text(campaign.fallback_archive.to_csv())
    (path / _EGRESS_MAY).write_text(egress_may.to_csv())
    (path / _EGRESS_JAN).write_text(egress_jan.to_csv())
    lines = ["month,relay_as_visible"]
    for month, visible in history.visibility_series(RELAY_ASN):
        lines.append(f"{month},{int(visible)}")
    (path / _BGP).write_text("\n".join(lines) + "\n")
    manifest = {
        "format": "relay-networks-archive/1",
        "domains": {
            "default": RELAY_DOMAIN_QUIC,
            "fallback": RELAY_DOMAIN_FALLBACK,
        },
        "scans": [
            {"year": m.year, "month": m.month,
             "default_addresses": len(m.default.addresses()),
             "fallback_addresses": (
                 len(m.fallback.addresses()) if m.fallback else None
             )}
            for m in campaign.months
        ],
        "egress_subnets": {"may": len(egress_may), "january": len(egress_jan)},
        "metadata": metadata or {},
    }
    (path / _MANIFEST).write_text(json.dumps(manifest, indent=2) + "\n")
    return path


def read_archive(directory: str | pathlib.Path) -> ArchiveBundle:
    """Load an archive directory back into analysable objects."""
    path = pathlib.Path(directory)
    manifest_path = path / _MANIFEST
    if not manifest_path.exists():
        raise MeasurementError(f"no archive manifest in {path}")
    manifest = json.loads(manifest_path.read_text())
    if manifest.get("format") != "relay-networks-archive/1":
        raise MeasurementError(
            f"unsupported archive format {manifest.get('format')!r}"
        )
    visibility: list[tuple[str, bool]] = []
    for line in (path / _BGP).read_text().splitlines()[1:]:
        if not line.strip():
            continue
        month, _, flag = line.partition(",")
        visibility.append((month, flag.strip() == "1"))
    return ArchiveBundle(
        manifest=manifest,
        ingress_default=IngressArchive.from_csv(
            manifest["domains"]["default"], (path / _INGRESS_DEFAULT).read_text()
        ),
        ingress_fallback=IngressArchive.from_csv(
            manifest["domains"]["fallback"], (path / _INGRESS_FALLBACK).read_text()
        ),
        egress_may=EgressList.from_csv((path / _EGRESS_MAY).read_text()),
        egress_jan=EgressList.from_csv((path / _EGRESS_JAN).read_text()),
        relay_visibility=visibility,
    )
