"""QUIC long-header packet codec (Initial + Version Negotiation).

Follows RFC 8999 (version-independent invariants) and RFC 9000 for the
Initial packet header layout.  Payload protection is not implemented —
the relay endpoint never accepts a foreign handshake anyway, which is
the observed behaviour this layer exists to reproduce — but header
parsing is strict so malformed probes fail loudly.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field

from repro.errors import QuicError

LONG_HEADER_BIT = 0x80
FIXED_BIT = 0x40
MAX_CID_LENGTH = 20

_TYPE_INITIAL = 0x00


def _encode_varint(value: int) -> bytes:
    """RFC 9000 variable-length integer encoding."""
    if value < 0:
        raise QuicError(f"varint cannot encode negative {value}")
    if value < 1 << 6:
        return bytes([value])
    if value < 1 << 14:
        return struct.pack("!H", value | 0x4000)
    if value < 1 << 30:
        return struct.pack("!I", value | 0x80000000)
    if value < 1 << 62:
        return struct.pack("!Q", value | 0xC000000000000000)
    raise QuicError(f"varint cannot encode {value}")


def _decode_varint(data: bytes, offset: int) -> tuple[int, int]:
    """Decode a varint at ``offset``; returns (value, new_offset)."""
    if offset >= len(data):
        raise QuicError("truncated varint")
    first = data[offset]
    length = 1 << (first >> 6)
    if offset + length > len(data):
        raise QuicError("truncated varint body")
    value = first & 0x3F
    for i in range(1, length):
        value = (value << 8) | data[offset + i]
    return value, offset + length


def _check_cid(cid: bytes, what: str) -> None:
    if len(cid) > MAX_CID_LENGTH:
        raise QuicError(f"{what} connection id exceeds {MAX_CID_LENGTH} bytes")


@dataclass(frozen=True, slots=True)
class InitialPacket:
    """A QUIC Initial packet (header fields + opaque payload)."""

    version: int
    destination_cid: bytes
    source_cid: bytes
    token: bytes = b""
    payload: bytes = b""

    def __post_init__(self) -> None:
        _check_cid(self.destination_cid, "destination")
        _check_cid(self.source_cid, "source")

    def to_wire(self) -> bytes:
        """Serialise with a 1-byte packet number (probe-sized)."""
        first = LONG_HEADER_BIT | FIXED_BIT | (_TYPE_INITIAL << 4)  # pnlen bits 0
        body = struct.pack("!I", self.version)
        body += bytes([len(self.destination_cid)]) + self.destination_cid
        body += bytes([len(self.source_cid)]) + self.source_cid
        body += _encode_varint(len(self.token)) + self.token
        # Length field covers packet number (1 byte) + payload.
        body += _encode_varint(1 + len(self.payload))
        body += b"\x00" + self.payload
        return bytes([first]) + body


@dataclass(frozen=True, slots=True)
class VersionNegotiationPacket:
    """A Version Negotiation packet: version field 0, list of versions."""

    destination_cid: bytes
    source_cid: bytes
    supported_versions: tuple[int, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        _check_cid(self.destination_cid, "destination")
        _check_cid(self.source_cid, "source")
        if not self.supported_versions:
            raise QuicError("version negotiation must list at least one version")

    def to_wire(self) -> bytes:
        """Serialise per RFC 8999 §6."""
        first = LONG_HEADER_BIT | 0x40  # high bits set; rest unused in VN
        body = struct.pack("!I", 0)
        body += bytes([len(self.destination_cid)]) + self.destination_cid
        body += bytes([len(self.source_cid)]) + self.source_cid
        for version in self.supported_versions:
            body += struct.pack("!I", version)
        return bytes([first]) + body


def decode_packet(wire: bytes) -> InitialPacket | VersionNegotiationPacket:
    """Parse a long-header packet (Initial or Version Negotiation)."""
    if not wire:
        raise QuicError("empty datagram")
    first = wire[0]
    if not first & LONG_HEADER_BIT:
        raise QuicError("short-header packets unsupported")
    if len(wire) < 7:
        raise QuicError("long header truncated")
    version = struct.unpack("!I", wire[1:5])[0]
    offset = 5
    dcid_len = wire[offset]
    offset += 1
    if dcid_len > MAX_CID_LENGTH or offset + dcid_len > len(wire):
        raise QuicError("bad destination cid length")
    dcid = wire[offset : offset + dcid_len]
    offset += dcid_len
    if offset >= len(wire):
        raise QuicError("truncated before source cid")
    scid_len = wire[offset]
    offset += 1
    if scid_len > MAX_CID_LENGTH or offset + scid_len > len(wire):
        raise QuicError("bad source cid length")
    scid = wire[offset : offset + scid_len]
    offset += scid_len
    if version == 0:
        versions = []
        while offset + 4 <= len(wire):
            versions.append(struct.unpack("!I", wire[offset : offset + 4])[0])
            offset += 4
        if offset != len(wire):
            raise QuicError("version negotiation has trailing bytes")
        return VersionNegotiationPacket(dcid, scid, tuple(versions))
    if not first & FIXED_BIT:
        raise QuicError("fixed bit not set on versioned packet")
    packet_type = (first >> 4) & 0x3
    if packet_type != _TYPE_INITIAL:
        raise QuicError(f"unsupported long packet type {packet_type}")
    token_len, offset = _decode_varint(wire, offset)
    if offset + token_len > len(wire):
        raise QuicError("truncated token")
    token = wire[offset : offset + token_len]
    offset += token_len
    length, offset = _decode_varint(wire, offset)
    if offset + length > len(wire):
        raise QuicError("truncated packet body")
    pn_len = (first & 0x03) + 1
    payload = wire[offset + pn_len : offset + length]
    return InitialPacket(version, dcid, scid, token, payload)
