"""The QUIC-facing behaviour of an ingress relay node.

From the paper's Section 3:

    "testing standard QUIC handshakes using the QScanner [...] or a
    current curl version does not even trigger a response by ingress
    nodes, neither a QUIC initial nor an error.  The connection attempt
    times out.  Interestingly, a version negotiation from ingress nodes
    can be triggered using the latest ZMap module [...]  The response
    indicates support for QUICv1 alongside drafts 29 to 27."

So the endpoint answers **only** version negotiation, and only for
client versions it does not support.  Everything else — including
well-formed Initials of supported versions that lack the relay's
(private, token-based) authentication — is silently dropped.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import QuicError
from repro.quic.packet import (
    InitialPacket,
    VersionNegotiationPacket,
    decode_packet,
)
from repro.quic.versions import RELAY_SUPPORTED_VERSIONS

#: Marker token that only genuine relay clients possess.  Stands in for
#: Apple's private access-token scheme (rate-limited tokens per account
#: and day); its exact bytes are irrelevant to the measurements.
RELAY_ACCESS_TOKEN = b"apple-private-relay-access-token"


@dataclass
class EndpointStats:
    """Counters for the probe analyses."""

    datagrams: int = 0
    dropped: int = 0
    version_negotiations: int = 0
    accepted: int = 0
    malformed: int = 0


@dataclass
class RelayQuicEndpoint:
    """One ingress relay's QUIC listener."""

    supported_versions: tuple[int, ...] = RELAY_SUPPORTED_VERSIONS
    stats: EndpointStats = field(default_factory=EndpointStats)

    def handle_datagram(self, wire: bytes) -> bytes | None:
        """Process one datagram; returns response bytes or None (drop)."""
        self.stats.datagrams += 1
        try:
            packet = decode_packet(wire)
        except QuicError:
            self.stats.malformed += 1
            return None
        if isinstance(packet, VersionNegotiationPacket):
            # Clients never send VN; drop.
            self.stats.dropped += 1
            return None
        return self._handle_initial(packet)

    def _handle_initial(self, packet: InitialPacket) -> bytes | None:
        if packet.version not in self.supported_versions:
            # Unknown version: respond with version negotiation, echoing
            # the client's connection ids swapped per RFC 8999.
            self.stats.version_negotiations += 1
            return VersionNegotiationPacket(
                destination_cid=packet.source_cid,
                source_cid=packet.destination_cid,
                supported_versions=self.supported_versions,
            ).to_wire()
        if packet.token != RELAY_ACCESS_TOKEN:
            # Standard handshakes without relay credentials: silence.
            self.stats.dropped += 1
            return None
        self.stats.accepted += 1
        # A real endpoint would continue the handshake; for the
        # measurement surface it is enough to signal acceptance.
        return b"\x40accepted"

    def accepts(self, packet: InitialPacket) -> bool:
        """Whether an Initial would be accepted (has the relay token)."""
        return (
            packet.version in self.supported_versions
            and packet.token == RELAY_ACCESS_TOKEN
        )
