"""QUIC version numbers.

The paper's ZMap probe elicited a version negotiation from ingress nodes
"indicating support for QUICv1 alongside drafts 29 to 27".
"""

from __future__ import annotations

QUIC_V1 = 0x00000001
DRAFT_29 = 0xFF00001D
DRAFT_28 = 0xFF00001C
DRAFT_27 = 0xFF00001B

#: The versions ingress relays advertise in version negotiation, in the
#: order the paper reports them.
RELAY_SUPPORTED_VERSIONS: tuple[int, ...] = (QUIC_V1, DRAFT_29, DRAFT_28, DRAFT_27)

_NAMES = {
    QUIC_V1: "QUICv1",
    DRAFT_29: "draft-29",
    DRAFT_28: "draft-28",
    DRAFT_27: "draft-27",
}


def version_name(version: int) -> str:
    """Human-readable name for a version number."""
    return _NAMES.get(version, f"0x{version:08x}")


def is_forcing_version_negotiation(version: int) -> bool:
    """Whether a client version is of the 0x?a?a?a?a greasing pattern.

    ZMap-style probes use a reserved version to force negotiation; any
    version the endpoint does not support has the same effect.
    """
    return (version & 0x0F0F0F0F) == 0x0A0A0A0A
