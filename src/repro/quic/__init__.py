"""Minimal QUIC layer.

Implements exactly the externally observable QUIC behaviour of iCloud
Private Relay ingress nodes that the paper measured:

* Standard QUIC Initials without relay credentials get **no reply at
  all** — QScanner and curl handshakes time out.
* A long-header packet with an unknown version triggers a **version
  negotiation** response listing QUICv1 and drafts 29, 28, 27 — the
  ZMap-module observation that verified standardised QUIC support.

The packet codec covers long-header parsing/serialisation for Initial
and Version Negotiation packets, which is all the probing needs.
"""

from repro.quic.endpoint import RelayQuicEndpoint
from repro.quic.packet import (
    InitialPacket,
    VersionNegotiationPacket,
    decode_packet,
)
from repro.quic.versions import (
    DRAFT_27,
    DRAFT_28,
    DRAFT_29,
    QUIC_V1,
    RELAY_SUPPORTED_VERSIONS,
    version_name,
)

__all__ = [
    "RelayQuicEndpoint",
    "InitialPacket",
    "VersionNegotiationPacket",
    "decode_packet",
    "QUIC_V1",
    "DRAFT_27",
    "DRAFT_28",
    "DRAFT_29",
    "RELAY_SUPPORTED_VERSIONS",
    "version_name",
]
