"""Live monitoring plane: status board, event log, HTTP endpoint.

Long-running workloads (the monthly campaign, the continuous delta
loop, bench runs) were previously blind until they finished: the only
observability was a telemetry snapshot written at exit.  This package
adds the *live* half — zero new dependencies, and deliberately split
into three pieces any workload can attach independently:

* :class:`~repro.monitor.status.StatusBoard` — a thread-safe bulletin
  board the pipeline updates via cheap publish calls (current phase,
  month, round, query counters, shard liveness, checkpoint age).
  Writers are the campaign / scanners / sharded executor on their own
  thread; the HTTP server reads consistent copies from its thread.
* :class:`~repro.monitor.events.EventLog` — an append-only JSONL
  stream of schema-versioned workload events (campaign/month/round
  milestones, detected churn, shard crashes, checkpoints, budget
  deferrals).  Event content is deterministic across worker counts:
  records are sim-time stamped, and the wall clock appears only in the
  explicitly non-deterministic ``wall`` field (see
  :func:`~repro.monitor.events.canonical_lines`).
* :class:`~repro.monitor.http.MonitorServer` — an asyncio HTTP
  endpoint (stdlib only) serving ``/metrics`` (Prometheus text of the
  live telemetry registry), ``/health``, and ``/status`` (the board as
  JSON).

``repro-relay monitor`` (:mod:`repro.monitor.cli`) tails an event log
or polls ``/status`` and renders a live terminal dashboard, or a
``--once`` detection-latency report against the full-rescan baseline.
DESIGN.md §11 documents ownership, the event schema, and the endpoint
contract.
"""

from __future__ import annotations

from repro.monitor.events import (
    EVENT_SCHEMA_VERSION,
    WALL_FIELD,
    EventLog,
    canonical_lines,
    read_events,
)
from repro.monitor.http import MonitorServer
from repro.monitor.status import StatusBoard

__all__ = [
    "EVENT_SCHEMA_VERSION",
    "EventLog",
    "MonitorServer",
    "StatusBoard",
    "WALL_FIELD",
    "canonical_lines",
    "read_events",
]
