"""Thread-safe status board: the live half of ``/status``.

One board exists per workload run, created by the CLI (or a test) and
handed to the campaign, which fans it out to the scanner, the sharded
executor, and the delta engine.  Those writers call the publish
methods from the workload thread; the :class:`~repro.monitor.http
.MonitorServer` reads consistent copies from its own thread via
:meth:`StatusBoard.snapshot`.

Publish calls are deliberately coarse — once per scan, per round, per
month, per shard incident, never per query — so the board costs
nothing measurable on the hot path (the bench monitoring leg gates
this at ≤2 % campaign CPU).  All methods are safe to call from any
thread and from forked shard workers; a worker's updates land on its
private post-fork copy and are simply invisible to the parent, which
is fine: the parent-side executor publishes the merged view.
"""

from __future__ import annotations

import threading
import time


class StatusBoard:
    """A lock-guarded bulletin board of the workload's current state."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._fields: dict = {}
        self._counters: dict[str, float] = {}
        self._shards: dict[int, str] = {}

    # -- writers (workload thread) --------------------------------------

    def publish(self, **fields) -> None:
        """Set one or more free-form status fields (phase, month, round…)."""
        with self._lock:
            self._fields.update(fields)

    def add(self, name: str, amount: float = 1) -> None:
        """Increment a monotonic counter (queries sent, rounds done…)."""
        with self._lock:
            self._counters[name] = self._counters.get(name, 0) + amount

    def shard_state(self, index: int, state: str) -> None:
        """Record a shard's liveness: ``running`` / ``done`` / ``crashed``."""
        with self._lock:
            self._shards[index] = state

    def clear_shards(self) -> None:
        """Drop the per-shard map (a new scan is about to plan shards)."""
        with self._lock:
            self._shards.clear()

    def record_checkpoint(self, sim_time: float, kind: str = "checkpoint") -> None:
        """Note that durable state was just written.

        The board is the one place wall time is read for checkpoint-age
        display; it never feeds simulation results.
        """
        with self._lock:
            self._fields["checkpoint_kind"] = kind
            self._fields["checkpoint_sim"] = sim_time
            # repro: allow[DET001] display-only checkpoint age for /status
            self._fields["checkpoint_wall"] = time.time()

    # -- reader (HTTP thread) -------------------------------------------

    def snapshot(self) -> dict:
        """A consistent, caller-owned copy of the whole board."""
        with self._lock:
            out = dict(self._fields)
            out["counters"] = dict(self._counters)
            out["shards"] = {str(k): v for k, v in sorted(self._shards.items())}
        return out
