"""``repro-relay monitor``: dashboards and reports over the live plane.

Two sources, two modes:

* ``--event-log PATH`` tails the JSONL :class:`~repro.monitor.events
  .EventLog` a campaign writes.  With ``--once`` it prints a plain-text
  report — detection latency per churn kind versus the full-rescan
  baseline (which sees every change within one round, at 100 % of a
  full scan's queries per round) plus round-cost and robustness
  accounting.  Without ``--once`` it renders a live single-screen
  dashboard, redrawn as new events append, until the campaign finishes.
* ``--status HOST:PORT`` polls a running campaign's ``/status``
  endpoint instead; ``--once`` prints a single snapshot.

The follow loop sleeps on wall time between polls — that is interface
pacing, not simulation state, and ``time.sleep`` is deliberately
outside the lint ban list.
"""

from __future__ import annotations

import json
import sys
import time
import urllib.error
import urllib.request
from dataclasses import dataclass, field
from pathlib import Path

from repro.monitor.events import EVENT_SCHEMA_VERSION, read_events

CLEAR_SCREEN = "\x1b[2J\x1b[H"

#: The comparison point for the --once report: a full monthly rescan
#: observes any change in the next scan (latency 1 round) but pays the
#: whole query bill every round.
FULL_RESCAN_BASELINE = {"latency_rounds": 1, "cost_frac": 1.0}


@dataclass
class MonitorState:
    """Everything the renderers need, folded from an event stream."""

    schema: int = EVENT_SCHEMA_VERSION
    total_events: int = 0
    campaign: dict = field(default_factory=dict)
    months: list = field(default_factory=list)
    months_restored: int = 0
    #: the month_started record without a matching completion/restore
    #: yet — the month a crash would lose.
    month_in_progress: dict | None = None
    rounds: list = field(default_factory=list)
    churn: list = field(default_factory=list)
    deferrals: list = field(default_factory=list)
    checkpoints: int = 0
    crashes: int = 0
    respawns: int = 0
    hung: int = 0
    degraded: list = field(default_factory=list)
    rounds_skipped: int = 0
    interrupted: dict | None = None
    seeded: list = field(default_factory=list)
    finished: bool = False
    last_event: dict = field(default_factory=dict)


def fold_events(records: list[dict]) -> MonitorState:
    """Fold raw event records into a :class:`MonitorState`.

    Unknown event kinds and unknown fields are ignored, per the schema
    contract (DESIGN.md §11).
    """
    state = MonitorState()
    for record in records:
        kind = record.get("event")
        state.total_events += 1
        state.last_event = record
        if kind == "log_opened":
            state.schema = record.get("schema", EVENT_SCHEMA_VERSION)
        elif kind == "campaign_started":
            state.campaign = record
        elif kind == "month_started":
            state.month_in_progress = record
        elif kind == "month_completed":
            state.months.append(record)
            state.month_in_progress = None
        elif kind == "month_restored":
            state.months_restored += 1
            state.month_in_progress = None
        elif kind == "delta_seeded":
            state.seeded.append(record)
        elif kind == "round_summary":
            state.rounds.append(record)
        elif kind == "churn_detected":
            state.churn.append(record)
        elif kind == "budget_deferral":
            state.deferrals.append(record)
        elif kind == "checkpoint_written":
            state.checkpoints += 1
        elif kind == "shard_crash":
            state.crashes += 1
        elif kind == "shard_respawn":
            state.respawns += 1
        elif kind == "shard_hung":
            state.hung += 1
        elif kind == "persistence_degraded":
            state.degraded.append(record)
        elif kind == "round_skipped":
            state.rounds_skipped += 1
        elif kind == "campaign_interrupted":
            state.interrupted = record
        elif kind == "campaign_finished":
            state.finished = True
    return state


def _latency_by_kind(state: MonitorState) -> dict[str, list[int]]:
    out: dict[str, list[int]] = {}
    for record in state.churn:
        out.setdefault(record.get("change", "?"), []).append(
            int(record.get("latency", 0))
        )
    return out


def render_report(state: MonitorState, source: str) -> str:
    """The ``--once`` plain-text report for an event log."""
    lines = [
        f"monitoring report — {source} "
        f"(schema v{state.schema}, {state.total_events} events)"
    ]
    camp = state.campaign
    if camp:
        bits = [f"mode={camp.get('mode', '?')}"]
        for key in ("year", "month", "months", "rounds", "domains"):
            if key in camp:
                bits.append(f"{key}={camp[key]}")
        bits.append(f"finished={'yes' if state.finished else 'no'}")
        lines.append("campaign: " + " ".join(bits))
    if state.months:
        queries = sum(m.get("queries", 0) for m in state.months)
        lines.append(
            f"months completed: {len(state.months)} "
            f"(+{state.months_restored} restored from checkpoint), "
            f"{queries} queries"
        )
    if state.month_in_progress is not None and not state.finished:
        started = state.month_in_progress
        lines.append(
            f"month in progress: {started.get('year', '?')}-"
            f"{started.get('month', '?'):>02}"
        )
    if state.rounds:
        fracs = [r.get("frac", 0.0) for r in state.rounds]
        mean = sum(fracs) / len(fracs)
        lines.append(
            f"delta rounds completed: {len(state.rounds)}; "
            f"mean round cost {mean:.1%} of a full rescan "
            f"(max {max(fracs):.1%}) — baseline pays "
            f"{FULL_RESCAN_BASELINE['cost_frac']:.0%} every round"
        )
    if state.deferrals:
        rows = sum(d.get("deferred", 0) for d in state.deferrals)
        lines.append(
            f"budget deferrals: {len(state.deferrals)} rounds, {rows} rows total"
        )
    latencies = _latency_by_kind(state)
    if latencies:
        lines.append(
            "detection latency by churn kind (rounds), vs full-rescan "
            f"baseline ({FULL_RESCAN_BASELINE['latency_rounds']} round "
            f"@ {FULL_RESCAN_BASELINE['cost_frac']:.0%} cost/round):"
        )
        lines.append(f"  {'kind':<14}{'events':>7}{'mean':>7}{'max':>6}")
        for kind in sorted(latencies):
            values = latencies[kind]
            lines.append(
                f"  {kind:<14}{len(values):>7}"
                f"{sum(values) / len(values):>7.1f}{max(values):>6}"
            )
    elif state.rounds:
        lines.append("detection latency: no churn events observed")
    lines.append(
        f"shards: {state.crashes} crashes, {state.hung} hangs, "
        f"{state.respawns} pool respawns"
    )
    if state.checkpoints:
        lines.append(f"checkpoints written: {state.checkpoints}")
    if state.degraded or state.rounds_skipped:
        lines.append(
            f"degraded: {len(state.degraded)} persistence failures, "
            f"{state.rounds_skipped} rounds skipped"
        )
    if state.interrupted is not None:
        lines.append("campaign interrupted: drained and exited cleanly")
    return "\n".join(lines) + "\n"


def render_dashboard(state: MonitorState, source: str, tail: int = 5) -> str:
    """One screenful of live campaign state, for the follow mode."""
    width = 62
    rule = "─" * width
    lines = [
        f"repro-relay monitor — {source}",
        rule,
    ]
    camp = state.campaign
    mode = camp.get("mode", "?") if camp else "?"
    phase = "finished" if state.finished else state.last_event.get("event", "idle")
    lines.append(f" campaign  mode={mode}  phase={phase}")
    if "sim" in state.last_event:
        lines.append(f" sim time  {state.last_event['sim']:.0f}s")
    if state.months or state.months_restored:
        lines.append(
            f" months    {len(state.months)} scanned, "
            f"{state.months_restored} restored, "
            f"{state.checkpoints} checkpoints"
        )
    if state.month_in_progress is not None and not state.finished:
        started = state.month_in_progress
        lines.append(
            f" scanning  {started.get('year', '?')}-"
            f"{started.get('month', '?'):>02}"
        )
    if state.rounds:
        last = state.rounds[-1]
        lines.append(
            f" rounds    {len(state.rounds)} done — last: "
            f"round={last.get('round')} queries={last.get('queries')} "
            f"cost={last.get('frac', 0.0):.1%}"
        )
    lines.append(
        f" churn     {len(state.churn)} detected, "
        f"{sum(d.get('deferred', 0) for d in state.deferrals)} rows deferred"
    )
    lines.append(
        f" shards    {state.crashes} crashes, {state.hung} hangs, "
        f"{state.respawns} respawns"
    )
    if state.degraded or state.rounds_skipped or state.interrupted:
        drained = ", drained" if state.interrupted is not None else ""
        lines.append(
            f" degraded  {len(state.degraded)} persistence failures, "
            f"{state.rounds_skipped} rounds skipped{drained}"
        )
    lines.append(rule)
    lines.append(f" last {tail} events:")
    lines.extend(_recent_event_lines(state, tail))
    lines.append(rule)
    return "\n".join(lines) + "\n"


def _recent_event_lines(state: MonitorState, tail: int) -> list[str]:
    shown: list[str] = []
    pool = (
        state.rounds[-tail:]
        + state.churn[-tail:]
        + state.months[-tail:]
        + ([state.last_event] if state.last_event else [])
    )
    seen = set()
    ordered = sorted(pool, key=lambda r: r.get("sim", 0.0))[-tail:]
    for record in ordered:
        key = json.dumps(record, sort_keys=True)
        if key in seen:
            continue
        seen.add(key)
        kind = record.get("event", "?")
        detail = " ".join(
            f"{k}={record[k]}"
            for k in sorted(record)
            if k not in ("event", "v", "sim", "wall")
        )
        sim = record.get("sim")
        stamp = f"{sim:>10.0f}s" if isinstance(sim, (int, float)) else " " * 11
        shown.append(f" {stamp}  {kind}  {detail}"[:78])
    return shown if shown else ["  (none)"]


def render_status(payload: dict, source: str) -> str:
    """Plain-text rendering of one ``/status`` snapshot."""
    lines = [f"status — {source}"]
    counters = payload.get("counters", {})
    shards = payload.get("shards", {})
    for key in sorted(payload):
        if key in ("counters", "shards"):
            continue
        lines.append(f"  {key}: {payload[key]}")
    for name in sorted(counters):
        lines.append(f"  counter {name}: {counters[name]}")
    if shards:
        states = ",".join(f"{k}:{v}" for k, v in sorted(shards.items()))
        lines.append(f"  shards: {states}")
    return "\n".join(lines) + "\n"


def fetch_status(base_url: str, path: str = "/status", timeout: float = 5.0) -> dict:
    """GET one JSON endpoint from a running monitor server."""
    with urllib.request.urlopen(base_url + path, timeout=timeout) as response:
        return json.loads(response.read().decode())


def _follow_event_log(path: Path, refresh: float, iterations, out) -> int:
    state = MonitorState()
    records: list[dict] = []
    done = 0
    buffer = ""
    with path.open(encoding="utf-8") as handle:
        while True:
            # Only lines the writer finished (newline-terminated) are
            # parsed; a torn tail — a crash mid-append, or simply an
            # append in flight — stays buffered for the next poll.
            buffer += handle.read()
            lines = buffer.split("\n")
            buffer = lines.pop()
            for line in lines:
                line = line.strip()
                if not line:
                    continue
                try:
                    records.append(json.loads(line))
                except json.JSONDecodeError:
                    continue  # garbage line a crashed writer left behind
            state = fold_events(records)
            out.write(CLEAR_SCREEN + render_dashboard(state, str(path)))
            out.flush()
            done += 1
            if state.finished or (iterations is not None and done >= iterations):
                return 0
            time.sleep(refresh)


def _follow_status(base_url: str, refresh: float, iterations, out) -> int:
    done = 0
    while True:
        try:
            payload = fetch_status(base_url)
        except (urllib.error.URLError, OSError):
            out.write(f"monitor: {base_url} unreachable — campaign finished?\n")
            return 0
        out.write(CLEAR_SCREEN + render_status(payload, base_url))
        out.flush()
        done += 1
        if iterations is not None and done >= iterations:
            return 0
        time.sleep(refresh)


def run_monitor(args, out=None) -> int:
    """Entry point behind the ``monitor`` subcommand.  Returns exit code."""
    out = out if out is not None else sys.stdout
    if bool(args.event_log) == bool(args.status):
        print(
            "error: monitor needs exactly one of --event-log or --status",
            file=sys.stderr,
        )
        return 2
    if args.event_log:
        path = Path(args.event_log)
        if not path.is_file():
            print(f"error: event log {path} does not exist", file=sys.stderr)
            return 2
        if args.once:
            out.write(render_report(fold_events(read_events(path)), str(path)))
            return 0
        return _follow_event_log(path, args.refresh, args.iterations, out)
    host, port = args.status
    base_url = f"http://{host}:{port}"
    if args.once:
        try:
            payload = fetch_status(base_url)
        except (urllib.error.URLError, OSError) as exc:
            print(f"error: cannot reach {base_url}/status: {exc}", file=sys.stderr)
            return 2
        out.write(render_status(payload, base_url))
        return 0
    return _follow_status(base_url, args.refresh, args.iterations, out)
