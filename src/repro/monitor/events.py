"""Append-only structured event log with a versioned JSONL schema.

Every record is one JSON object per line with sorted keys:

* ``v`` — schema version (:data:`EVENT_SCHEMA_VERSION`).
* ``event`` — the event kind (one of :data:`EVENT_KINDS`).
* ``sim`` — the sim-clock timestamp, when a clock is attached.
* ``wall`` — the wall-clock timestamp.  This is the *only*
  non-deterministic field; everything else is a pure function of
  (seed, scale, settings), independent of worker count, so two runs'
  logs are byte-identical once ``wall`` is stripped
  (:func:`canonical_lines` produces exactly that byte stream).

Schema versioning rules (DESIGN.md §11): adding a new event kind or a
new optional field is backwards compatible and does *not* bump the
version; renaming or removing a field, changing a field's meaning or
units, or changing the canonicalisation (key order, separators) bumps
:data:`EVENT_SCHEMA_VERSION`.  Readers must ignore kinds and fields
they do not know.

Kinds whose *occurrence* depends on injected faults (``shard_crash``,
``shard_respawn``) only ever fire under a fault plan that crashes
workers; clean runs never emit them, which is what keeps clean logs
identical across worker counts.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

from repro.faults.storage import count_handled, count_injected

EVENT_SCHEMA_VERSION = 1

#: The one non-deterministic field, stripped by :func:`canonical_lines`.
WALL_FIELD = "wall"

#: Known event kinds at schema v1.  Readers must tolerate unknown kinds.
EVENT_KINDS = frozenset(
    {
        "log_opened",
        "campaign_started",
        "month_started",
        "month_completed",
        "month_restored",
        "delta_seeded",
        "round_summary",
        "churn_detected",
        "budget_deferral",
        "checkpoint_written",
        "shard_crash",
        "shard_respawn",
        "shard_hung",
        "campaign_interrupted",
        "persistence_degraded",
        "round_skipped",
        "campaign_finished",
    }
)


def _truncate_torn_tail(path: Path) -> None:
    """Drop a torn final line (no trailing newline) before appending.

    A crash mid-append leaves a partial record with no terminator; left
    in place, the next append would concatenate onto it and corrupt a
    *complete* record too.  Scanning backwards for the last newline and
    truncating there keeps every intact line and costs one tail read.
    """
    try:
        size = path.stat().st_size
    except OSError:
        return
    if size == 0:
        return
    with path.open("r+b") as handle:
        end = size
        keep = 0
        while end > 0:
            start = max(0, end - 65536)
            handle.seek(start)
            chunk = handle.read(end - start)
            cut = chunk.rfind(b"\n")
            if end == size and cut == len(chunk) - 1:
                return  # file already ends on a record boundary
            if cut >= 0:
                keep = start + cut + 1
                break
            end = start
        handle.truncate(keep)


class EventLog:
    """Append-only JSONL event stream, flushed per record for tailing.

    ``gate``/``registry``/``status`` attach the host-failure plane: an
    active storage gate drops records deterministically (keyed by the
    canonical record content, so the same records drop at any worker
    count), and any write failure — injected or real — flips the log
    into *degraded* mode instead of aborting the campaign: the
    ``events.dropped`` counter and the status board's
    ``event_log_degraded`` flag record that the stream is incomplete
    while scanning continues.
    """

    def __init__(
        self,
        path: str | Path,
        clock=None,
        *,
        gate=None,
        registry=None,
        status=None,
    ) -> None:
        self.path = Path(path)
        self.clock = clock
        self.gate = gate
        self.registry = registry
        self.status = status
        self.degraded = False
        self.dropped = 0
        self.path.parent.mkdir(parents=True, exist_ok=True)
        _truncate_torn_tail(self.path)
        self._handle = self.path.open("a", encoding="utf-8")
        self.emitted = 0
        self.emit("log_opened", schema=EVENT_SCHEMA_VERSION)

    def emit(self, event: str, **fields) -> dict:
        """Append one event record and flush it.

        ``fields`` must be JSON-serialisable and deterministic; the
        record's ``sim``/``wall`` stamps are added here.  Returns the
        record as written (useful in tests) — even when the write was
        dropped in degraded mode.
        """
        record = {"v": EVENT_SCHEMA_VERSION, "event": event}
        if self.clock is not None:
            record["sim"] = self.clock.now
        record.update(fields)
        canonical = json.dumps(record, sort_keys=True, separators=(",", ":"))
        if self.gate is not None and self.gate.active:
            kind = self.gate.outcome("eventlog", canonical, 0)
            if kind:
                # No retry for an append stream — the record is gone;
                # one injected raise-equivalent, surfaced immediately.
                count_injected(self.registry, "eventlog", kind)
                count_handled(self.registry, "eventlog", 0, 1)
                self._degrade()
                record[WALL_FIELD] = 0.0
                return record
        # repro: allow[DET001,DET101] the wall stamp is the schema's one non-deterministic field, stripped by canonical_lines
        record[WALL_FIELD] = time.time()
        line = json.dumps(record, sort_keys=True, separators=(",", ":"))
        try:
            self._handle.write(line + "\n")
            self._handle.flush()
        except OSError:
            self._degrade()
            return record
        self.emitted += 1
        return record

    def _degrade(self) -> None:
        """Record one dropped write; the campaign keeps running."""
        self.dropped += 1
        self.degraded = True
        if self.registry is not None and self.registry.enabled:
            self.registry.counter("events.dropped").inc()
        if self.status is not None:
            self.status.publish(event_log_degraded=True)

    def close(self) -> None:
        if not self._handle.closed:
            self._handle.close()

    def __enter__(self) -> "EventLog":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def read_events(path: str | Path) -> list[dict]:
    """Parse every record in an event log, in order.

    A torn *final* line — the footprint of a crash mid-append — is
    skipped: readers must be able to replay the log a dead campaign
    left behind.  Garbage anywhere else still raises; a mid-file parse
    failure means real corruption, not a torn tail.
    """
    out: list[dict] = []
    with Path(path).open(encoding="utf-8") as handle:
        lines = [line.strip() for line in handle]
    while lines and not lines[-1]:
        lines.pop()
    for position, line in enumerate(lines):
        if not line:
            continue
        try:
            out.append(json.loads(line))
        except json.JSONDecodeError:
            if position == len(lines) - 1:
                break  # torn tail from a crash mid-append
            raise
    return out


def canonical_lines(path: str | Path) -> list[str]:
    """The deterministic byte stream of a log: records minus ``wall``.

    Re-serialised with the same canonical settings the writer uses, so
    two logs from the same (seed, settings) — at any worker count —
    compare equal line for line.
    """
    out: list[str] = []
    for record in read_events(path):
        record.pop(WALL_FIELD, None)
        out.append(json.dumps(record, sort_keys=True, separators=(",", ":")))
    return out
