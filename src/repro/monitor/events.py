"""Append-only structured event log with a versioned JSONL schema.

Every record is one JSON object per line with sorted keys:

* ``v`` — schema version (:data:`EVENT_SCHEMA_VERSION`).
* ``event`` — the event kind (one of :data:`EVENT_KINDS`).
* ``sim`` — the sim-clock timestamp, when a clock is attached.
* ``wall`` — the wall-clock timestamp.  This is the *only*
  non-deterministic field; everything else is a pure function of
  (seed, scale, settings), independent of worker count, so two runs'
  logs are byte-identical once ``wall`` is stripped
  (:func:`canonical_lines` produces exactly that byte stream).

Schema versioning rules (DESIGN.md §11): adding a new event kind or a
new optional field is backwards compatible and does *not* bump the
version; renaming or removing a field, changing a field's meaning or
units, or changing the canonicalisation (key order, separators) bumps
:data:`EVENT_SCHEMA_VERSION`.  Readers must ignore kinds and fields
they do not know.

Kinds whose *occurrence* depends on injected faults (``shard_crash``,
``shard_respawn``) only ever fire under a fault plan that crashes
workers; clean runs never emit them, which is what keeps clean logs
identical across worker counts.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

EVENT_SCHEMA_VERSION = 1

#: The one non-deterministic field, stripped by :func:`canonical_lines`.
WALL_FIELD = "wall"

#: Known event kinds at schema v1.  Readers must tolerate unknown kinds.
EVENT_KINDS = frozenset(
    {
        "log_opened",
        "campaign_started",
        "month_started",
        "month_completed",
        "month_restored",
        "delta_seeded",
        "round_summary",
        "churn_detected",
        "budget_deferral",
        "checkpoint_written",
        "shard_crash",
        "shard_respawn",
        "campaign_finished",
    }
)


class EventLog:
    """Append-only JSONL event stream, flushed per record for tailing."""

    def __init__(self, path: str | Path, clock=None) -> None:
        self.path = Path(path)
        self.clock = clock
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._handle = self.path.open("a", encoding="utf-8")
        self.emitted = 0
        self.emit("log_opened", schema=EVENT_SCHEMA_VERSION)

    def emit(self, event: str, **fields) -> dict:
        """Append one event record and flush it.

        ``fields`` must be JSON-serialisable and deterministic; the
        record's ``sim``/``wall`` stamps are added here.  Returns the
        record as written (useful in tests).
        """
        record = {"v": EVENT_SCHEMA_VERSION, "event": event}
        if self.clock is not None:
            record["sim"] = self.clock.now
        record.update(fields)
        # repro: allow[DET001] the wall stamp is the schema's one non-deterministic field, stripped by canonical_lines
        record[WALL_FIELD] = time.time()
        self._handle.write(
            json.dumps(record, sort_keys=True, separators=(",", ":")) + "\n"
        )
        self._handle.flush()
        self.emitted += 1
        return record

    def close(self) -> None:
        if not self._handle.closed:
            self._handle.close()

    def __enter__(self) -> "EventLog":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def read_events(path: str | Path) -> list[dict]:
    """Parse every record in an event log, in order."""
    out: list[dict] = []
    with Path(path).open(encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if line:
                out.append(json.loads(line))
    return out


def canonical_lines(path: str | Path) -> list[str]:
    """The deterministic byte stream of a log: records minus ``wall``.

    Re-serialised with the same canonical settings the writer uses, so
    two logs from the same (seed, settings) — at any worker count —
    compare equal line for line.
    """
    out: list[str] = []
    for record in read_events(path):
        record.pop(WALL_FIELD, None)
        out.append(json.dumps(record, sort_keys=True, separators=(",", ":")))
    return out
