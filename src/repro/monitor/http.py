"""Stdlib-only HTTP monitoring endpoint: ``/metrics``, ``/health``, ``/status``.

The server runs an asyncio event loop on a daemon thread so attaching
it to a synchronous workload costs one thread and zero changes to the
workload's control flow.  The endpoint contract (DESIGN.md §11):

* ``GET /health`` → 200, ``application/json``: ``{"status": "ok", ...}``
  as soon as the server is accepting connections.
* ``GET /metrics`` → 200, ``text/plain; version=0.0.4``: the live
  telemetry registry rendered by
  :func:`repro.telemetry.export.prometheus_text`.
* ``GET /status`` → 200, ``application/json``: the
  :class:`~repro.monitor.status.StatusBoard` snapshot, plus a derived
  ``checkpoint_age_s`` when a checkpoint has been recorded.
* anything else → 404; non-GET → 405.  Connections are one-shot
  (``Connection: close``).

The server only ever *reads* workload state; it must never block the
workload.  Snapshotting the live registry races benignly with the
workload thread registering new instruments — that surfaces as a
``RuntimeError`` from dict iteration, which we simply retry.
"""

from __future__ import annotations

import asyncio
import json
import threading
import time

from repro.telemetry import NULL_TELEMETRY
from repro.telemetry.export import prometheus_text


class MonitorServer:
    """Serve live workload status over HTTP from a background thread."""

    def __init__(
        self,
        status,
        telemetry=NULL_TELEMETRY,
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        self.status = status
        self.telemetry = telemetry
        self.host = host
        self.port = port  # 0 → ephemeral; updated to the bound port by start()
        # Created here, on the workload thread: registering from the
        # handler would race the registry-dict iteration /metrics
        # retries around.  Incrementing from the server thread is fine
        # (plain int add on an existing Counter).
        self._dropped_requests = (
            telemetry.registry.counter("monitor.dropped_requests")
            if telemetry.registry.enabled
            else None
        )
        self._thread: threading.Thread | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._ready = threading.Event()
        self._startup_error: BaseException | None = None

    # -- lifecycle ------------------------------------------------------

    def start(self) -> "MonitorServer":
        """Bind and serve; returns once the socket is accepting."""
        if self._thread is not None:
            raise RuntimeError("monitor server already started")
        self._thread = threading.Thread(
            target=self._run, name="repro-monitor", daemon=True
        )
        self._thread.start()
        self._ready.wait()
        if self._startup_error is not None:
            self._thread.join()
            raise self._startup_error
        return self

    def stop(self) -> None:
        """Shut the server down and join its thread."""
        if self._thread is None:
            return
        if self._loop is not None:
            try:
                self._loop.call_soon_threadsafe(self._shutdown.set)
            except RuntimeError:
                pass  # loop already closed (startup failed)
        self._thread.join()
        self._thread = None
        self._loop = None
        self._ready = threading.Event()

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def _run(self) -> None:
        try:
            asyncio.run(self._serve())
        except OSError as exc:  # bind failure: surfaced to start()'s caller
            self._startup_error = exc
            self._ready.set()

    async def _serve(self) -> None:
        self._shutdown = asyncio.Event()
        self._loop = asyncio.get_running_loop()
        server = await asyncio.start_server(self._handle, self.host, self.port)
        self.port = server.sockets[0].getsockname()[1]
        self._ready.set()
        async with server:
            await self._shutdown.wait()

    # -- request handling -----------------------------------------------

    async def _handle(self, reader, writer) -> None:
        try:
            request_line = await asyncio.wait_for(reader.readline(), timeout=5.0)
            while True:  # drain headers; the routes take no request body
                line = await asyncio.wait_for(reader.readline(), timeout=5.0)
                if line in (b"\r\n", b"\n", b""):
                    break
            parts = request_line.decode("latin-1").split()
            method = parts[0] if parts else ""
            target = parts[1] if len(parts) > 1 else "/"
            code, reason, ctype, body = self._route(method, target)
            head = (
                f"HTTP/1.1 {code} {reason}\r\n"
                f"Content-Type: {ctype}\r\n"
                f"Content-Length: {len(body)}\r\n"
                "Connection: close\r\n\r\n"
            )
            writer.write(head.encode("latin-1") + body)
            await writer.drain()
        except (OSError, asyncio.TimeoutError, UnicodeDecodeError):
            # Torn connection or garbage request: drop it, but leave a
            # telemetry trace — a monitoring plane that silently sheds
            # requests looks healthy while being blind.
            if self._dropped_requests is not None:
                self._dropped_requests.inc()
        finally:
            writer.close()

    def _route(self, method: str, target: str) -> tuple[int, str, str, bytes]:
        target = target.split("?", 1)[0]
        if method != "GET":
            return 405, "Method Not Allowed", "text/plain", b"GET only\n"
        if target == "/health":
            body = json.dumps(
                {"status": "ok", "endpoints": ["/health", "/metrics", "/status"]}
            )
            return 200, "OK", "application/json", body.encode()
        if target == "/metrics":
            text = prometheus_text(self._metrics_snapshot())
            return 200, "OK", "text/plain; version=0.0.4", text.encode()
        if target == "/status":
            body = json.dumps(self._status_payload(), sort_keys=True)
            return 200, "OK", "application/json", body.encode()
        return 404, "Not Found", "text/plain", b"unknown path\n"

    def _metrics_snapshot(self) -> dict:
        for _ in range(5):
            try:
                return self.telemetry.registry.snapshot()
            except RuntimeError:
                # The workload thread registered an instrument while we
                # iterated the registry dict; the next pass sees a
                # consistent map.
                continue
        return {"counters": [], "gauges": [], "histograms": []}

    def _status_payload(self) -> dict:
        payload = self.status.snapshot() if self.status is not None else {}
        wall = payload.get("checkpoint_wall")
        if wall is not None:
            # repro: allow[DET001] display-only checkpoint age; never feeds simulation state
            payload["checkpoint_age_s"] = round(max(0.0, time.time() - wall), 3)
        return payload
