"""Exception hierarchy for the repro package.

Every error raised by this library derives from :class:`ReproError` so
applications can catch library failures with a single except clause while
still being able to discriminate by subsystem.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class AddressError(ReproError, ValueError):
    """An IP address or prefix is malformed or out of range."""


class DnsError(ReproError):
    """Base class for DNS subsystem errors."""


class DnsWireError(DnsError):
    """A DNS message could not be encoded to or decoded from wire format."""


class DnsNameError(DnsError, ValueError):
    """A domain name is malformed (empty label, too long, bad characters)."""


class ZoneError(DnsError):
    """A zone definition is inconsistent (duplicate SOA, bad owner names)."""


class ResolutionTimeout(DnsError):
    """A simulated DNS resolution timed out (no response at all)."""


class RateLimitExceeded(ReproError):
    """A scanner exceeded its configured query budget or rate limit."""


class TopologyError(ReproError):
    """The router-level topology is inconsistent or a path does not exist."""


class RoutingError(ReproError):
    """A BGP routing operation failed (no route, invalid announcement)."""


class RelayError(ReproError):
    """Base class for relay-network errors."""


class RelayUnavailable(RelayError):
    """The relay service cannot serve a client (blocked, no ingress, ...)."""


class ConnectionFailed(RelayError):
    """A simulated transport connection could not be established."""


class QuicError(ReproError):
    """A QUIC packet is malformed or the endpoint rejected it."""


class MasqueError(ReproError):
    """A MASQUE proxy request was rejected or malformed."""


class MeasurementError(ReproError):
    """A measurement platform operation failed (unknown probe, bad spec)."""


class FaultConfigError(ReproError, ValueError):
    """A fault profile is malformed (bad probability, unknown name)."""


class CheckpointError(ReproError):
    """A campaign checkpoint cannot be used (settings fingerprint mismatch)."""


class WorkerCrashed(ReproError):
    """Shard worker processes kept dying beyond the recovery budget."""


class LintError(ReproError):
    """A lint run cannot proceed (unparseable file, malformed baseline)."""


class WorldGenError(ReproError):
    """World generation parameters are inconsistent or infeasible."""


class EgressListError(ReproError, ValueError):
    """The egress IP range CSV is malformed."""
