"""Command-line interface.

``repro-relay`` exposes the measurement pipeline without writing code:

* ``world-info`` — summarise a generated world;
* ``ecs-scan`` — run one ECS ingress scan, optionally exporting the
  longitudinal dataset CSV;
* ``egress-report`` — Tables 3/4 plus the Section 4.2 facts;
* ``relay-scan`` — a scan day through the relay with rotation stats;
* ``blocking`` — the Atlas blocking study;
* ``campaign`` — the scan campaign: the paper's monthly full-rescan
  calendar (``--mode full``) or continuous delta monitoring under a
  query budget (``--mode delta``);
* ``reproduce`` — the full paper-vs-measured report (see
  ``examples/reproduce_paper.py`` for the stand-alone version);
* ``telemetry`` — render a saved telemetry snapshot as a table.

All world-building subcommands take ``--scale``, ``--seed`` and
``--telemetry-out PATH`` (save a metrics + span snapshot; ``.prom``
suffix selects Prometheus text format instead of JSON).
"""

from __future__ import annotations

import argparse
import sys

import math

from repro import WorldConfig, build_world
from repro.analysis import (
    build_egress_facts,
    build_rotation_report,
    build_table3,
    build_table4,
)
from repro.errors import ReproError
from repro.faults import PROFILES, FaultPlan
from repro.relay.service import RELAY_DOMAIN_FALLBACK, RELAY_DOMAIN_QUIC
from repro.scan import (
    EcsScanner,
    IngressArchive,
    RelayScanConfig,
    RelayScanner,
    classify_blocking,
)
from repro.worldgen.world import CONTROL_DOMAIN

INGRESS_ASNS = {714, 36183}


def _positive_float(text: str) -> float:
    """argparse type: a finite float > 0 (``--scale``)."""
    try:
        value = float(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"{text!r} is not a number") from None
    if not math.isfinite(value) or value <= 0:
        raise argparse.ArgumentTypeError(f"must be a positive number, got {text}")
    return value


def _positive_int(text: str) -> int:
    """argparse type: an integer >= 1 (``--workers``)."""
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"{text!r} is not an integer") from None
    if value < 1:
        raise argparse.ArgumentTypeError(f"must be >= 1, got {text}")
    return value


def _host_port(text: str) -> tuple[str, int]:
    """argparse type: ``HOST:PORT`` (``--serve-status``, ``--status``)."""
    host, sep, port_text = text.rpartition(":")
    if not sep or not host:
        raise argparse.ArgumentTypeError(
            f"{text!r} is not HOST:PORT (e.g. 127.0.0.1:9100)"
        )
    try:
        port = int(port_text)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"port {port_text!r} is not an integer"
        ) from None
    if not 0 <= port <= 65535:
        raise argparse.ArgumentTypeError(f"port {port} out of range 0-65535")
    return host, port


def _add_world_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--scale", type=_positive_float, default=0.02,
                        help="world scale (1.0 = paper scale)")
    parser.add_argument("--seed", type=int, default=2022)
    parser.add_argument("--telemetry-out", type=str, default=None, metavar="PATH",
                        help="write a telemetry snapshot (metrics + spans) here; "
                             "a .prom suffix selects Prometheus text format")


def _add_fault_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--fault-profile", choices=sorted(PROFILES),
                        default="none",
                        help="inject deterministic faults (seeded from --seed; "
                             "results are reproducible per profile)")


def _fault_plan(args) -> FaultPlan | None:
    """The seeded plan for ``--fault-profile``, or None for 'none'."""
    name = getattr(args, "fault_profile", "none")
    if name == "none":
        return None
    return FaultPlan(PROFILES[name], seed=args.seed)


def _make_telemetry(args):
    """A live Telemetry when ``--telemetry-out`` was given, else the null one."""
    from repro.telemetry import NULL_TELEMETRY, Telemetry

    if getattr(args, "telemetry_out", None):
        return Telemetry()
    return NULL_TELEMETRY


def _write_telemetry(args, telemetry) -> None:
    if getattr(args, "telemetry_out", None) and telemetry.enabled:
        telemetry.write(args.telemetry_out)
        print(f"wrote telemetry to {args.telemetry_out}")


def _world(args, telemetry=None):
    return build_world(
        WorldConfig(seed=args.seed, scale=args.scale), telemetry=telemetry
    )


def cmd_world_info(args) -> int:
    telemetry = _make_telemetry(args)
    world = _world(args, telemetry)
    config = world.config
    print(f"seed={config.seed} scale={config.scale}")
    print(f"client ASes:        {len(world.ground.client_ases)}")
    print(f"client /24 subnets: {world.ground.client_slash24_total()}")
    print(f"assignment units:   {len(world.assignment)}")
    print(f"ingress relays v4:  {len(world.ingress_v4.relays)}")
    print(f"ingress relays v6:  {len(world.ingress_v6.relays)}")
    print(f"egress subnets:     {len(world.egress_list_may)}")
    print(f"atlas probes:       {len(world.atlas)} in "
          f"{len(world.atlas.distinct_asns())} ASes, "
          f"{len(world.atlas.distinct_countries())} countries")
    _write_telemetry(args, telemetry)
    return 0


def cmd_ecs_scan(args) -> int:
    from repro.scan import EcsScanSettings, ShardedCampaignExecutor

    telemetry = _make_telemetry(args)
    world = _world(args, telemetry)
    world.clock.advance_to(world.scan_start(args.year, args.month))
    domain = RELAY_DOMAIN_FALLBACK if args.fallback else RELAY_DOMAIN_QUIC
    settings = EcsScanSettings(
        workers=args.workers,
        campaign_seed=args.seed,
        fault_plan=_fault_plan(args),
    )
    scanner = EcsScanner(
        world.route53, world.routing, world.clock, settings, telemetry=telemetry
    )
    if args.workers > 1 and ShardedCampaignExecutor.supported():
        with ShardedCampaignExecutor(scanner, args.workers) as executor:
            result = executor.scan(domain)
    else:
        result = scanner.scan(domain)
    print(f"domain:    {domain}")
    print(f"queries:   {result.queries_sent} "
          f"({result.sparse_queries} sparse, "
          f"{result.duration_hours():.1f} simulated hours)")
    if result.retries or result.gave_up:
        print(f"faults:    {result.retries} retries, "
              f"{len(result.gave_up)} abandoned blocks")
    print(f"addresses: {len(result.addresses())}")
    for asn, addresses in sorted(result.addresses_by_asn().items()):
        print(f"  AS{asn}: {len(addresses)}")
    if args.archive:
        archive = IngressArchive(domain)
        archive.record(result)
        with open(args.archive, "w") as handle:
            handle.write(archive.to_csv())
        print(f"wrote {args.archive}")
    _write_telemetry(args, telemetry)
    return 0


def cmd_egress_report(args) -> int:
    telemetry = _make_telemetry(args)
    world = _world(args, telemetry)
    print(build_table3(world.egress_list_may, world.routing).render())
    print()
    print(build_table4(world.egress_list_may, world.routing).render())
    print()
    facts = build_egress_facts(
        world.egress_list_may, world.routing, world.egress_list_jan, world.geodb
    )
    print(facts.render())
    _write_telemetry(args, telemetry)
    return 0


def cmd_relay_scan(args) -> int:
    telemetry = _make_telemetry(args)
    world = _world(args, telemetry)
    world.clock.advance_to(world.scan_start(2022, 4))
    plan = _fault_plan(args)
    if plan is not None:
        world.service.fault_plan = plan
    client = world.make_vantage_client()
    scanner = RelayScanner(client, world.web_server, world.echo_server, world.clock)
    series = scanner.run(
        RelayScanConfig(args.interval, args.duration), "cli-scan"
    )
    report = build_rotation_report(series, egress_list=world.egress_list_may)
    print(f"rounds: {len(series)} (failures: {series.failures})")
    print(report.render())
    _write_telemetry(args, telemetry)
    return 0


def cmd_blocking(args) -> int:
    telemetry = _make_telemetry(args)
    world = _world(args, telemetry)
    world.clock.advance_to(world.scan_start(2022, 4))
    report = classify_blocking(
        world.atlas, world.routing, RELAY_DOMAIN_QUIC, CONTROL_DOMAIN, INGRESS_ASNS
    )
    print(f"probes:   {report.total_probes}")
    print(f"timeouts: {report.timeouts} ({report.timeout_share:.1%})")
    print(f"failures: {report.failures_with_response} ({report.failure_share:.1%})")
    for rcode, count in sorted(report.rcode_counts.items(), key=lambda kv: -kv[1]):
        print(f"  {rcode}: {count}")
    print(f"hijacks:  {report.hijacked_probes}")
    print(f"blocked:  {report.blocked_probes} ({report.blocked_share:.1%})")
    _write_telemetry(args, telemetry)
    return 0


def cmd_archive(args) -> int:
    """Run the full campaign and write the research-data archive."""
    from repro.archive import write_archive
    from repro.scan import ScanCampaign

    from repro.scan import EcsScanSettings

    if args.resume and not args.checkpoint_dir:
        print("error: --resume requires --checkpoint-dir", file=sys.stderr)
        return 2
    telemetry = _make_telemetry(args)
    world = _world(args, telemetry)
    settings = EcsScanSettings(
        workers=args.workers,
        campaign_seed=args.seed,
        fault_plan=_fault_plan(args),
    )
    with ScanCampaign(
        world.route53, world.routing, world.clock, settings, telemetry,
        checkpoint_dir=args.checkpoint_dir,
        resume=args.resume,
        # The campaign never sees the world parameters; fold them into
        # the fingerprint so checkpoints refuse to splice across worlds.
        checkpoint_meta={"world_seed": args.seed, "world_scale": args.scale},
    ) as campaign:
        campaign.run(world.scan_months())
    path = write_archive(
        args.directory,
        campaign,
        world.egress_list_may,
        world.egress_list_jan,
        world.history,
        metadata={"seed": args.seed, "scale": args.scale},
    )
    print(f"wrote archive to {path}")
    print(f"  ingress (default):  {len(campaign.default_archive)} addresses")
    print(f"  ingress (fallback): {len(campaign.fallback_archive)} addresses")
    print(f"  egress subnets:     {len(world.egress_list_may)}")
    _write_telemetry(args, telemetry)
    return 0


def cmd_campaign(args) -> int:
    """Run the scan campaign: monthly full rescans, or continuous delta."""
    from repro.scan import EcsScanSettings, ScanCampaign

    if args.resume and not args.checkpoint_dir:
        print("error: --resume requires --checkpoint-dir", file=sys.stderr)
        return 2
    if args.mode == "full":
        for value, name in (
            (args.snapshot_dir, "--snapshot-dir"),
            (args.budget, "--budget"),
            (args.refresh_rounds, "--refresh-rounds"),
            (args.rounds, "--rounds"),
        ):
            if value is not None:
                print(f"error: {name} requires --mode delta", file=sys.stderr)
                return 2
    else:
        if args.snapshot_dir is None:
            print("error: --mode delta requires --snapshot-dir",
                  file=sys.stderr)
            return 2
        if args.checkpoint_dir or args.resume:
            print("error: --checkpoint-dir/--resume apply to --mode full; "
                  "delta state persists in --snapshot-dir", file=sys.stderr)
            return 2
    telemetry = _make_telemetry(args)
    if args.serve_status is not None and not telemetry.enabled:
        # /metrics serves the live registry; a null one would be empty.
        from repro.telemetry import Telemetry

        telemetry = Telemetry()
    world = _world(args, telemetry)
    settings = EcsScanSettings(
        workers=args.workers,
        campaign_seed=args.seed,
        fault_plan=_fault_plan(args),
    )
    meta = {"world_seed": args.seed, "world_scale": args.scale}
    status = events = server = None
    plan = settings.fault_plan
    if args.serve_status is not None or args.event_log:
        from repro.monitor import EventLog, MonitorServer, StatusBoard

        status = StatusBoard()
        if args.event_log:
            events = EventLog(
                args.event_log,
                clock=world.clock,
                gate=plan.storage if plan is not None else None,
                registry=telemetry.registry,
                status=status,
            )
        if args.serve_status is not None:
            host, port = args.serve_status
            server = MonitorServer(status, telemetry, host=host, port=port)
            server.start()
            print(f"serving status on http://{server.host}:{server.port} "
                  f"(/health /metrics /status)", flush=True)
    from repro.scan.drain import DrainController

    try:
        drain = DrainController().install()
    except ValueError:  # not the main thread: run without graceful drain
        drain = None
    try:
        if args.mode == "full":
            with ScanCampaign(
                world.route53, world.routing, world.clock, settings, telemetry,
                checkpoint_dir=args.checkpoint_dir,
                resume=args.resume,
                checkpoint_meta=meta,
                status=status,
                events=events,
                drain=drain,
                shard_deadline=args.shard_deadline,
            ) as campaign:
                for month in campaign.run(world.scan_months()):
                    fallback = ("no fallback scan" if month.fallback is None else
                                f"fallback {month.fallback.queries_sent} queries")
                    print(f"{month.year}-{month.month:02d}: "
                          f"default {month.default.queries_sent} queries, "
                          f"{fallback}")
                archives = (campaign.default_archive, campaign.fallback_archive)
        else:
            with ScanCampaign(
                world.route53, world.routing, world.clock, settings, telemetry,
                checkpoint_meta=meta,
                mode="delta",
                snapshot_dir=args.snapshot_dir,
                budget=args.budget,
                refresh_rounds=args.refresh_rounds or 3,
                status=status,
                events=events,
                drain=drain,
                shard_deadline=args.shard_deadline,
            ) as campaign:
                deltas = campaign.run_continuous(
                    args.year, args.month, args.rounds or 3
                )
                for delta in deltas:
                    print(f"round {delta.index}: {delta.queries_sent} queries "
                          f"({delta.queries_frac:.1%} of a full rescan), "
                          f"{len(delta.events)} change events, "
                          f"{delta.budget_deferred} budget-deferred")
                archives = (campaign.default_archive, campaign.fallback_archive)
    finally:
        if drain is not None:
            drain.uninstall()
        if server is not None:
            server.stop()
        if events is not None:
            events.close()
    if drain is not None and drain.requested:
        print("interrupted: drained in-flight work, state persisted; "
              "resume with the same arguments to continue", flush=True)
    print(f"ingress (default):  {len(archives[0])} addresses")
    print(f"ingress (fallback): {len(archives[1])} addresses")
    _write_telemetry(args, telemetry)
    return 0


def cmd_monitor(args) -> int:
    """Dashboard/report over an event log or a live /status endpoint."""
    from repro.monitor.cli import run_monitor

    return run_monitor(args)


def cmd_reproduce(args) -> int:
    # Delegate to the example script's logic for the full report.
    import runpy
    import pathlib

    if getattr(args, "telemetry_out", None):
        print("note: --telemetry-out is not supported by the reproduce "
              "subcommand (it delegates to examples/reproduce_paper.py)",
              file=sys.stderr)
    script = (
        pathlib.Path(__file__).resolve().parents[2] / "examples" / "reproduce_paper.py"
    )
    argv = ["reproduce_paper.py", "--scale", str(args.scale), "--seed", str(args.seed)]
    if args.output:
        argv += ["--output", args.output]
    old_argv = sys.argv
    sys.argv = argv
    try:
        runpy.run_path(str(script), run_name="__main__")
    finally:
        sys.argv = old_argv
    return 0


def cmd_lint(args) -> int:
    """Static determinism & concurrency analysis (see DESIGN.md §9)."""
    from repro.lint.cli import run_lint

    return run_lint(args)


def cmd_telemetry(args) -> int:
    """Render a saved telemetry JSON snapshot as a human-readable table."""
    import json

    from repro.telemetry import render_snapshot

    with open(args.snapshot) as handle:
        snapshot = json.load(handle)
    print(render_snapshot(snapshot, top=args.top))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-relay",
        description="Reproduction toolkit for the IMC'22 iCloud Private Relay study",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("world-info", help="summarise a generated world")
    _add_world_args(p)
    p.set_defaults(func=cmd_world_info)

    p = sub.add_parser("ecs-scan", help="run one ECS ingress scan")
    _add_world_args(p)
    p.add_argument("--year", type=int, default=2022)
    p.add_argument("--month", type=int, default=4)
    p.add_argument("--fallback", action="store_true",
                   help="scan mask-h2.icloud.com instead")
    p.add_argument("--archive", type=str, default=None,
                   help="write the longitudinal dataset CSV here")
    p.add_argument("--workers", type=_positive_int, default=1,
                   help="shard the scan across N worker processes "
                        "(results are identical at any worker count)")
    _add_fault_args(p)
    p.set_defaults(func=cmd_ecs_scan)

    p = sub.add_parser("egress-report", help="Tables 3/4 and egress facts")
    _add_world_args(p)
    p.set_defaults(func=cmd_egress_report)

    p = sub.add_parser("relay-scan", help="scan through the relay")
    _add_world_args(p)
    p.add_argument("--interval", type=float, default=300.0)
    p.add_argument("--duration", type=float, default=86400.0)
    _add_fault_args(p)
    p.set_defaults(func=cmd_relay_scan)

    p = sub.add_parser("blocking", help="the Atlas blocking study")
    _add_world_args(p)
    p.set_defaults(func=cmd_blocking)

    p = sub.add_parser("archive", help="write the research-data archive")
    _add_world_args(p)
    p.add_argument("directory", help="output directory for the bundle")
    p.add_argument("--workers", type=_positive_int, default=1,
                   help="shard campaign scans across N worker processes")
    p.add_argument("--checkpoint-dir", type=str, default=None, metavar="DIR",
                   help="write an atomic checkpoint after each campaign month")
    p.add_argument("--resume", action="store_true",
                   help="restore already-checkpointed months instead of "
                        "re-scanning them (requires --checkpoint-dir)")
    _add_fault_args(p)
    p.set_defaults(func=cmd_archive)

    p = sub.add_parser(
        "campaign",
        help="run the scan campaign (monthly full rescans or continuous delta)",
    )
    _add_world_args(p)
    p.add_argument("--mode", choices=("full", "delta"), default="full",
                   help="'full': the paper's monthly rescan calendar; "
                        "'delta': continuous monitoring rounds seeded from "
                        "a persisted snapshot")
    p.add_argument("--workers", type=_positive_int, default=1,
                   help="shard campaign scans across N worker processes")
    p.add_argument("--year", type=int, default=2022,
                   help="delta mode: seed-scan year (default 2022)")
    p.add_argument("--month", type=int, default=1,
                   help="delta mode: seed-scan month (default 1)")
    p.add_argument("--rounds", type=_positive_int, default=None,
                   metavar="N", help="delta mode: monitoring rounds to run "
                                     "(default 3)")
    p.add_argument("--budget", type=_positive_int, default=None, metavar="N",
                   help="delta mode: per-round query budget "
                        "(default unbounded)")
    p.add_argument("--refresh-rounds", type=_positive_int, default=None,
                   metavar="K", help="delta mode: full re-coverage horizon "
                                     "of the refresh wheel (default 3)")
    p.add_argument("--snapshot-dir", type=str, default=None, metavar="DIR",
                   help="delta mode: where snapshots persist between runs "
                        "(required)")
    p.add_argument("--checkpoint-dir", type=str, default=None, metavar="DIR",
                   help="full mode: write an atomic checkpoint after each "
                        "campaign month")
    p.add_argument("--resume", action="store_true",
                   help="full mode: restore already-checkpointed months "
                        "(requires --checkpoint-dir)")
    p.add_argument("--serve-status", type=_host_port, default=None,
                   metavar="HOST:PORT",
                   help="serve /health, /metrics and /status over HTTP "
                        "while the campaign runs (port 0 = ephemeral)")
    p.add_argument("--event-log", type=str, default=None, metavar="PATH",
                   help="append the structured JSONL event stream here "
                        "(tail it with 'repro-relay monitor')")
    p.add_argument("--shard-deadline", type=_positive_float, default=None,
                   metavar="SECONDS",
                   help="hung-shard watchdog: terminate and re-run a shard "
                        "whose worker makes no progress for this many wall "
                        "seconds (default: off)")
    _add_fault_args(p)
    p.set_defaults(func=cmd_campaign)

    p = sub.add_parser(
        "monitor",
        help="live dashboard / report over a campaign's monitoring plane",
    )
    p.add_argument("--event-log", type=str, default=None, metavar="PATH",
                   help="tail this JSONL event log")
    p.add_argument("--status", type=_host_port, default=None,
                   metavar="HOST:PORT",
                   help="poll a running campaign's /status endpoint instead")
    p.add_argument("--once", action="store_true",
                   help="print one report/snapshot and exit")
    p.add_argument("--refresh", type=_positive_float, default=1.0,
                   metavar="SECONDS", help="dashboard redraw interval")
    p.add_argument("--iterations", type=_positive_int, default=None,
                   metavar="N",
                   help="stop after N redraws (default: until the campaign "
                        "finishes)")
    p.set_defaults(func=cmd_monitor)

    p = sub.add_parser("reproduce", help="full paper-vs-measured report")
    _add_world_args(p)
    p.add_argument("--output", type=str, default=None)
    p.set_defaults(func=cmd_reproduce)

    p = sub.add_parser(
        "lint",
        help="static determinism & concurrency analysis over the source tree",
    )
    p.add_argument("paths", nargs="*",
                   help="files/directories to lint (default: the installed "
                        "repro package source)")
    p.add_argument("--baseline", type=str, default=None, metavar="PATH",
                   help="committed baseline of grandfathered findings; only "
                        "non-baselined findings fail the run")
    p.add_argument("--update-baseline", action="store_true",
                   help="rewrite --baseline from the current findings "
                        "(dropping stale entries) instead of gating")
    p.add_argument("--root", type=str, default=None, metavar="DIR",
                   help="directory finding paths are reported relative to "
                        "(default: the current directory)")
    p.add_argument("--rules", type=lambda t: t.split(","), default=None,
                   metavar="ID[,ID...]", help="run only these rule ids")
    p.add_argument("--format", choices=("text", "json"), default="text",
                   help="stdout format (default text)")
    p.add_argument("--json", dest="json_out", type=str, default=None,
                   metavar="PATH", help="additionally write the JSON report "
                                        "to this file")
    p.add_argument("--list-rules", action="store_true",
                   help="print the rule catalogue and exit")
    p.add_argument("--telemetry-out", type=str, default=None, metavar="PATH",
                   help="write lint.findings{rule=...} counters here")
    p.add_argument("--changed-since", type=str, default=None, metavar="REF",
                   help="incremental mode: re-analyze only files changed "
                        "since this git ref plus their reverse-dependency "
                        "cone (stale-baseline reporting is suppressed)")
    p.add_argument("--graph-out", type=str, default=None, metavar="PATH",
                   help="write the whole-program graph (modules, import/"
                        "call edges, unresolved calls, layers) as JSON")
    p.add_argument("--cache", type=str, default=None, metavar="PATH",
                   help="summary-cache file (default: <root>/"
                        ".lint_cache.json)")
    p.add_argument("--no-cache", action="store_true",
                   help="disable the content-hash summary cache")
    p.set_defaults(func=cmd_lint)

    p = sub.add_parser("telemetry",
                       help="render a saved telemetry snapshot")
    p.add_argument("snapshot", help="path to a --telemetry-out JSON file")
    p.add_argument("--top", type=int, default=20,
                   help="show the N largest counters (default 20)")
    p.set_defaults(func=cmd_telemetry)
    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point.

    Argument errors (argparse) and library failures (:class:`ReproError`,
    file-system problems) exit with code 2 and a one-line message — no
    traceback reaches the user for anticipated failure modes.
    """
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except (ReproError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    raise SystemExit(main())
