"""Exporters and snapshot analysis helpers.

Three consumers of a telemetry snapshot live here:

* :func:`prometheus_text` — the Prometheus text exposition format, for
  scraping a saved snapshot into real monitoring.
* :func:`render_snapshot` — the human-readable table behind the
  ``telemetry`` CLI subcommand (top counters, gauges, histograms, and
  the span tree with sim-time vs wall-time durations side by side).
* :func:`deterministic_totals` — the subset of metrics that must be
  bit-identical across worker counts; shared by the sharded-telemetry
  tests, the bench harness's in-run gate, and the CI cross-leg
  comparison so all three enforce exactly the same invariant.
"""

from __future__ import annotations


def _prom_name(name: str) -> str:
    """A metric name in Prometheus charset (dots/dashes to underscores)."""
    return name.replace(".", "_").replace("-", "_")


def _prom_labels(labels: dict, extra: dict | None = None) -> str:
    merged = dict(labels)
    if extra:
        merged.update(extra)
    if not merged:
        return ""
    body = ",".join(f'{_prom_name(k)}="{v}"' for k, v in sorted(merged.items()))
    return "{" + body + "}"


def prometheus_text(snapshot: dict) -> str:
    """Render a metrics snapshot in Prometheus text exposition format."""
    metrics = snapshot.get("metrics", snapshot)
    lines: list[str] = []
    typed: set[str] = set()

    def type_line(name: str, kind: str) -> None:
        if name not in typed:
            typed.add(name)
            lines.append(f"# TYPE {name} {kind}")

    for entry in metrics.get("counters", ()):
        name = _prom_name(entry["name"]) + "_total"
        type_line(name, "counter")
        lines.append(f"{name}{_prom_labels(entry['labels'])} {entry['value']}")
    for entry in metrics.get("gauges", ()):
        name = _prom_name(entry["name"])
        type_line(name, "gauge")
        lines.append(f"{name}{_prom_labels(entry['labels'])} {entry['value']}")
    for entry in metrics.get("histograms", ()):
        name = _prom_name(entry["name"])
        type_line(name, "histogram")
        cumulative = 0
        for bound, count in zip(entry["bounds"], entry["counts"]):
            cumulative += count
            labels = _prom_labels(entry["labels"], {"le": repr(float(bound))})
            lines.append(f"{name}_bucket{labels} {cumulative}")
        labels = _prom_labels(entry["labels"], {"le": "+Inf"})
        lines.append(f"{name}_bucket{labels} {entry['count']}")
        lines.append(f"{name}_sum{_prom_labels(entry['labels'])} {entry['total']}")
        lines.append(f"{name}_count{_prom_labels(entry['labels'])} {entry['count']}")
    return "\n".join(lines) + "\n"


def _label_text(labels: dict) -> str:
    if not labels:
        return ""
    return "{" + ",".join(f"{k}={v}" for k, v in sorted(labels.items())) + "}"


def _span_lines(span: dict, depth: int, lines: list[str]) -> None:
    attrs = _label_text(span.get("attrs", {}))
    lines.append(
        f"  {'  ' * depth}{span['name']}{attrs}  "
        f"wall={span['wall_seconds']:.4f}s  sim={span['sim_seconds']:.1f}s"
    )
    for child in span.get("children", ()):
        _span_lines(child, depth + 1, lines)


def render_snapshot(snapshot: dict, top: int = 20) -> str:
    """A human-readable summary of a telemetry snapshot.

    Shows the ``top`` largest counters, all gauges, histogram summaries
    (count / mean), and the span tree with wall-clock and sim-clock
    durations side by side.
    """
    metrics = snapshot.get("metrics", snapshot)
    lines: list[str] = []

    counters = sorted(
        metrics.get("counters", ()), key=lambda e: e["value"], reverse=True
    )
    if counters:
        lines.append(f"top counters (of {len(counters)}):")
        for entry in counters[:top]:
            label = entry["name"] + _label_text(entry["labels"])
            lines.append(f"  {label:<56} {entry['value']:>14,}")

    gauges = metrics.get("gauges", ())
    if gauges:
        lines.append("gauges:")
        for entry in gauges:
            label = entry["name"] + _label_text(entry["labels"])
            value = entry["value"]
            rendered = f"{value:,}" if isinstance(value, int) else f"{value:,.3f}"
            lines.append(f"  {label:<56} {rendered:>14}")

    histograms = metrics.get("histograms", ())
    if histograms:
        lines.append("histograms:")
        for entry in histograms:
            label = entry["name"] + _label_text(entry["labels"])
            count = entry["count"]
            mean = entry["total"] / count if count else 0.0
            lines.append(
                f"  {label:<56} count={count:<10,} mean={mean:.4f}"
            )

    spans = snapshot.get("spans", ())
    if spans:
        lines.append("spans (wall vs sim):")
        for root in spans:
            _span_lines(root, 0, lines)

    if not lines:
        return "empty telemetry snapshot\n"
    return "\n".join(lines) + "\n"


def deterministic_totals(snapshot: dict) -> dict[str, int]:
    """The counters that must match exactly across worker counts.

    Sharded scans reproduce the sequential scan's externally visible
    results (DESIGN.md §5), so the scan-accounting counters must merge
    to identical totals for any worker count:

    * every ``ecs.*`` counter except ``ecs.shards`` (the shard count is
      the execution plan, not a scan result);
    * every ``dns.server.*`` counter (merged via ``ServerStats.merge``);
    * answer-plan cache **lookups** (= hits + misses: per query exactly
      one lookup happens, while the hit/miss split depends on each
      worker's cold cache — documented in DESIGN.md §5);
    * the ``ecs.scope`` histogram's per-bucket counts (one observation
      per answered probe).

    Deliberately excluded: cache hit/miss splits and invalidations,
    name-intern / zone-routing / origin-memo stats (process-local),
    ``ratelimit.waited_seconds`` (each shard's bucket starts with a full
    burst), ``shards.rerun`` (crash-recovery re-runs depend on the
    worker count), and all wall-time histograms.  ``scan.*`` and
    ``faults.*`` (retries, give-ups, injected-fault counts) ARE included
    — the fault plane's decisions are content-keyed, so they must match
    across worker counts and resumes.
    """
    metrics = snapshot.get("metrics", snapshot)
    totals: dict[str, int] = {}
    cache_lookups: dict[str, int] = {}
    for entry in metrics.get("counters", ()):
        name = entry["name"]
        labels = entry["labels"]
        if (
            name.startswith(("ecs.", "scan.", "faults."))
            and name != "ecs.shards"
        ):
            totals[name + _label_text(labels)] = entry["value"]
        elif name.startswith("dns.server."):
            totals[name + _label_text(labels)] = entry["value"]
        elif labels.get("cache") == "answer_plan" and name in (
            "cache.hits",
            "cache.misses",
        ):
            key = "cache.lookups" + _label_text(labels)
            cache_lookups[key] = cache_lookups.get(key, 0) + entry["value"]
    totals.update(cache_lookups)
    for entry in metrics.get("histograms", ()):
        if entry["name"] == "ecs.scope":
            key = entry["name"] + _label_text(entry["labels"])
            for bound, count in zip(entry["bounds"], entry["counts"]):
                totals[f"{key}[le={bound}]"] = count
            totals[f"{key}[le=+Inf]"] = entry["counts"][-1]
            totals[f"{key}[count]"] = entry["count"]
    return totals
