"""Zero-dependency observability: metrics, sim-time spans, exporters.

The telemetry layer has three parts, all importable from this package:

* :mod:`repro.telemetry.registry` — named counters / gauges /
  fixed-bucket histograms with frozen-tuple labels, O(1) hot-path
  increments, deterministic shard merging, and a no-op null registry;
* :mod:`repro.telemetry.spans` — span tracing that records both
  :class:`~repro.simtime.SimClock` virtual time and wall time, nests,
  and exports a Chrome-trace-compatible timeline;
* :mod:`repro.telemetry.export` — JSON / Prometheus-text / table
  renderers plus the cross-worker determinism invariant.

:class:`Telemetry` bundles one registry with one tracer and is the
object threaded through the pipeline (``build_world(...,
telemetry=...)``, ``EcsScanner(..., telemetry=...)``).  The module-level
:data:`NULL_TELEMETRY` is the default everywhere: instrumented code
holds real (but inert) instruments, so telemetry-off costs nothing and
no call site needs an ``if telemetry:`` guard.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.telemetry.export import (
    deterministic_totals,
    prometheus_text,
    render_snapshot,
)
from repro.telemetry.registry import (
    DURATION_BUCKETS,
    SCOPE_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullRegistry,
)
from repro.telemetry.spans import NullTracer, Span, Tracer

__all__ = [
    "Counter",
    "DURATION_BUCKETS",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_TELEMETRY",
    "NullRegistry",
    "NullTracer",
    "SCOPE_BUCKETS",
    "Span",
    "Telemetry",
    "Tracer",
    "deterministic_totals",
    "prometheus_text",
    "render_snapshot",
]


class Telemetry:
    """One registry + one tracer: the handle the pipeline threads around."""

    __slots__ = ("registry", "tracer")

    def __init__(
        self,
        registry: MetricsRegistry | None = None,
        tracer: Tracer | None = None,
    ) -> None:
        self.registry = registry if registry is not None else MetricsRegistry()
        self.tracer = tracer if tracer is not None else Tracer()

    @property
    def enabled(self) -> bool:
        """Whether this telemetry actually records anything."""
        return self.registry.enabled

    def snapshot(self) -> dict:
        """Metrics + span tree + Chrome trace, as one JSON-friendly dict."""
        return {
            "metrics": self.registry.snapshot(),
            "spans": self.tracer.tree(),
            "trace": self.tracer.chrome_trace(),
        }

    def write(self, path: str | Path) -> dict:
        """Write the snapshot to ``path`` and return it.

        A ``.prom`` suffix selects the Prometheus text exposition format
        (metrics only); anything else gets the full JSON snapshot.
        """
        path = Path(path)
        snapshot = self.snapshot()
        if path.suffix == ".prom":
            path.write_text(prometheus_text(snapshot["metrics"]))
        else:
            path.write_text(json.dumps(snapshot, indent=2) + "\n")
        return snapshot


#: The default telemetry: records nothing, costs nothing.  Shared — all
#: instruments it hands out are inert singletons.
NULL_TELEMETRY = Telemetry(NullRegistry(), NullTracer())
