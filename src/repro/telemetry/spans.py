"""Sim-time-aware span tracing.

A span brackets a unit of work (a worldgen phase, a monthly scan) and
records *two* clocks: wall time (``time.perf_counter``) and the
simulation's :class:`~repro.simtime.SimClock` virtual time.  The pair is
what makes the timeline useful here — a scan that takes 40 simulated
hours under rate limiting completes in wall milliseconds, and the
interesting regressions show up in whichever clock the other tools
don't watch.

Spans nest: entering a span inside another parents it, so
``campaign.month`` contains ``ecs.scan`` contains nothing hot (the
per-query loop is never span-wrapped; spans cost two clock reads plus
an object, fine at phase granularity, wrong at query granularity).

:meth:`Tracer.chrome_trace` emits the Chrome trace-event format
(``chrome://tracing`` / Perfetto): complete events (``"ph": "X"``) with
microsecond wall timestamps, sim-clock times in ``args``.
"""

from __future__ import annotations

import time

from repro.simtime import SimClock


class Span:
    """One traced interval: name, attributes, wall and sim clocks."""

    __slots__ = (
        "name",
        "attrs",
        "wall_start",
        "wall_end",
        "sim_start",
        "sim_end",
        "children",
    )

    def __init__(self, name: str, attrs: dict, sim_now: float) -> None:
        self.name = name
        self.attrs = attrs
        self.wall_start = time.perf_counter()
        self.wall_end: float | None = None
        self.sim_start = sim_now
        self.sim_end: float | None = None
        self.children: list[Span] = []

    @property
    def wall_seconds(self) -> float:
        """Wall-clock duration (0.0 while the span is still open)."""
        if self.wall_end is None:
            return 0.0
        return self.wall_end - self.wall_start

    @property
    def sim_seconds(self) -> float:
        """Simulated-clock duration (0.0 while the span is still open)."""
        if self.sim_end is None:
            return 0.0
        return self.sim_end - self.sim_start

    def to_dict(self) -> dict:
        """A JSON-friendly view of this span and its children."""
        return {
            "name": self.name,
            "attrs": self.attrs,
            "wall_seconds": self.wall_seconds,
            "sim_seconds": self.sim_seconds,
            "children": [child.to_dict() for child in self.children],
        }

    def __repr__(self) -> str:
        return (
            f"Span({self.name!r}, wall={self.wall_seconds:.4f}s, "
            f"sim={self.sim_seconds:.1f}s, children={len(self.children)})"
        )


class Tracer:
    """Builds the span tree; context-manager entry points.

    The tracer may be created before the world (and its clock) exists;
    :meth:`bind_clock` attaches the :class:`SimClock` as soon as worldgen
    creates it.  Unbound, sim times record as 0.
    """

    def __init__(self, clock: SimClock | None = None) -> None:
        self._clock = clock
        self._stack: list[Span] = []
        self.roots: list[Span] = []

    def bind_clock(self, clock: SimClock) -> None:
        """Attach the simulation clock whose time spans should record."""
        self._clock = clock

    def _now(self) -> float:
        return self._clock.now if self._clock is not None else 0.0

    def span(self, name: str, **attrs) -> "_SpanContext":
        """Open a span as a context manager; nests under any open span."""
        return _SpanContext(self, name, attrs)

    def _enter(self, name: str, attrs: dict) -> Span:
        span = Span(name, attrs, self._now())
        if self._stack:
            self._stack[-1].children.append(span)
        else:
            self.roots.append(span)
        self._stack.append(span)
        return span

    def _exit(self, span: Span) -> None:
        span.wall_end = time.perf_counter()
        span.sim_end = self._now()
        # Tolerate exception-driven unwinding that skips inner exits.
        while self._stack and self._stack.pop() is not span:
            pass

    def tree(self) -> list[dict]:
        """The recorded span forest as JSON-friendly dicts."""
        return [root.to_dict() for root in self.roots]

    def chrome_trace(self) -> dict:
        """The span forest as a Chrome trace-event (Perfetto) document.

        Wall timestamps are microseconds relative to the earliest
        recorded span so the timeline starts at 0; sim-clock start/end
        land in each event's ``args``.
        """
        events: list[dict] = []
        closed = [span for span in self.roots if span.wall_end is not None]
        if not closed:
            return {"traceEvents": []}
        origin = min(span.wall_start for span in closed)

        def emit(span: Span) -> None:
            if span.wall_end is None:
                return
            args = dict(span.attrs)
            args["sim_start_s"] = span.sim_start
            args["sim_end_s"] = span.sim_end
            events.append(
                {
                    "name": span.name,
                    "ph": "X",
                    "pid": 1,
                    "tid": 1,
                    "ts": (span.wall_start - origin) * 1e6,
                    "dur": (span.wall_end - span.wall_start) * 1e6,
                    "args": args,
                }
            )
            for child in span.children:
                emit(child)

        for root in self.roots:
            emit(root)
        return {"traceEvents": events}


class _SpanContext:
    """Context manager yielded by :meth:`Tracer.span`."""

    __slots__ = ("_tracer", "_name", "_attrs", "_span")

    def __init__(self, tracer: Tracer, name: str, attrs: dict) -> None:
        self._tracer = tracer
        self._name = name
        self._attrs = attrs
        self._span: Span | None = None

    def __enter__(self) -> Span:
        self._span = self._tracer._enter(self._name, self._attrs)
        return self._span

    def __exit__(self, exc_type, exc, tb) -> None:
        self._tracer._exit(self._span)


class _NullSpan:
    """The shared inert span handed out by :class:`NullTracer`."""

    __slots__ = ()
    name = ""
    attrs: dict = {}
    wall_seconds = 0.0
    sim_seconds = 0.0
    children: list = []

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        return None


_NULL_SPAN = _NullSpan()


class NullTracer(Tracer):
    """A tracer that records nothing (telemetry off)."""

    def __init__(self) -> None:
        super().__init__()

    def bind_clock(self, clock: SimClock) -> None:
        """Ignore the clock."""

    def span(self, name: str, **attrs) -> "_NullSpan":
        """The shared no-op span context."""
        return _NULL_SPAN
