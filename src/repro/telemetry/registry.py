"""The metrics registry: named counters, gauges, and histograms.

Design constraints, in order:

* **Hot-path increments are O(1) and allocation-free.**  Instruments are
  plain objects with one mutable slot; instrumented code fetches the
  instrument once (a dict probe) and bumps ``.value`` / calls ``inc``
  in its loop.  Nothing is computed until :meth:`MetricsRegistry.snapshot`.
* **Telemetry off costs nothing.**  :class:`NullRegistry` hands out
  shared no-op instruments and ignores collectors, so code instrumented
  against the null registry performs no accounting at all.  Hot loops
  additionally gate their (already cheap) recording on
  ``registry.enabled``.
* **Labels are frozen tuples.**  An instrument is keyed by
  ``(name, (("k", "v"), ...))`` with label pairs sorted by key, so the
  same kwargs in any order reach the same instrument and keys are
  hashable and picklable.
* **Merging is deterministic.**  :meth:`MetricsRegistry.absorb` folds a
  snapshot into the registry by pure sums (counters, histogram buckets)
  and max (gauges) — commutative and associative, so shard outcomes
  merge to the same totals regardless of worker count or completion
  order.

Two instrument populations live in a registry:

* **owned** instruments, created by :meth:`counter` / :meth:`gauge` /
  :meth:`histogram`.  These are the registry's own state; shard workers
  ship exactly these (``owned_snapshot``) and the parent sums them in.
* **adopted** instruments, registered by :meth:`adopt`.  These belong to
  some other structure — e.g. the :class:`~repro.perfstats.CacheStats`
  counters backing the answer cache — that already has its own
  shard-merge path.  They appear in full snapshots but never in
  ``owned_snapshot``, which is what prevents double counting when both
  the structure and the registry cross the worker boundary.
"""

from __future__ import annotations

from bisect import bisect_left

#: Duration histogram bounds (seconds) shared by the scan / shard /
#: worldgen wall-time histograms.  The open overflow bucket catches
#: anything slower than a minute.
DURATION_BUCKETS = (0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 10.0, 30.0, 60.0)

#: ECS scope histogram bounds: the prefix lengths the relay zone
#: declares (assignment scopes cluster at /16–/24; /32 is the overflow
#: guard for pathological zones).
SCOPE_BUCKETS = (0, 8, 12, 16, 20, 24, 32)


class Counter:
    """A monotonically growing count (int or float).

    The mutable slot is public on purpose: hot loops may do
    ``counter.value += 1`` directly, which costs exactly one attribute
    store — the same as the pre-telemetry ad-hoc counters.
    """

    __slots__ = ("value",)
    kind = "counter"

    def __init__(self, value: int | float = 0) -> None:
        self.value = value

    def inc(self, amount: int | float = 1) -> None:
        """Add ``amount`` (default 1) to the counter."""
        self.value += amount

    def __repr__(self) -> str:
        return f"Counter({self.value!r})"


class Gauge:
    """A point-in-time value (set, not accumulated)."""

    __slots__ = ("value",)
    kind = "gauge"

    def __init__(self, value: int | float = 0) -> None:
        self.value = value

    def set(self, value: int | float) -> None:
        """Replace the gauge's value."""
        self.value = value

    def __repr__(self) -> str:
        return f"Gauge({self.value!r})"


class Histogram:
    """A fixed-bucket histogram (cumulative-``le`` semantics).

    ``bounds`` are the inclusive upper bounds of the finite buckets in
    increasing order; one implicit overflow bucket catches everything
    beyond the last bound.  Observation is one bisect plus two adds.
    """

    __slots__ = ("bounds", "counts", "total", "count")
    kind = "histogram"

    def __init__(self, bounds: tuple[float, ...]) -> None:
        if list(bounds) != sorted(bounds) or len(set(bounds)) != len(bounds):
            raise ValueError(f"histogram bounds must strictly increase: {bounds}")
        self.bounds = tuple(bounds)
        self.counts = [0] * (len(self.bounds) + 1)
        self.total = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        """Record one observation."""
        self.counts[bisect_left(self.bounds, value)] += 1
        self.total += value
        self.count += 1

    def observe_many(self, value: float, n: int) -> None:
        """Record ``n`` observations of the same ``value`` in one call.

        Pre-tallied recording for end-of-scan batches: hundreds of
        thousands of responses collapse to a few dozen distinct values,
        so one bisect per distinct value replaces one per response.
        """
        self.counts[bisect_left(self.bounds, value)] += n
        self.total += value * n
        self.count += n

    def __repr__(self) -> str:
        return f"Histogram(count={self.count}, total={self.total!r})"


def _label_key(labels: dict) -> tuple[tuple[str, str], ...]:
    """Normalise label kwargs to the frozen, sorted tuple keying metrics."""
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


class MetricsRegistry:
    """Named, labelled instruments plus snapshot-time collectors."""

    #: Instrumented code gates optional per-item work (e.g. building a
    #: scope distribution) on this; the null registry sets it False.
    enabled = True

    def __init__(self) -> None:
        self._owned: dict[tuple, Counter | Gauge | Histogram] = {}
        self._adopted: dict[tuple, Counter | Gauge | Histogram] = {}
        self._collectors: list = []

    # -- instrument access ---------------------------------------------

    def counter(self, name: str, **labels) -> Counter:
        """The counter registered under ``name`` + labels (created once)."""
        key = (name, _label_key(labels))
        instrument = self._owned.get(key)
        if instrument is None:
            instrument = self._owned[key] = Counter()
        return instrument

    def gauge(self, name: str, **labels) -> Gauge:
        """The gauge registered under ``name`` + labels (created once)."""
        key = (name, _label_key(labels))
        instrument = self._owned.get(key)
        if instrument is None:
            instrument = self._owned[key] = Gauge()
        return instrument

    def histogram(self, name: str, bounds: tuple[float, ...], **labels) -> Histogram:
        """The histogram under ``name`` + labels (created once).

        ``bounds`` only matters at creation; later calls must agree (a
        mismatch raises, catching accidental bucket drift between call
        sites).
        """
        key = (name, _label_key(labels))
        instrument = self._owned.get(key)
        if instrument is None:
            instrument = self._owned[key] = Histogram(bounds)
        elif instrument.bounds != tuple(bounds):
            raise ValueError(
                f"histogram {name!r} already registered with bounds "
                f"{instrument.bounds}, got {tuple(bounds)}"
            )
        return instrument

    def adopt(self, name: str, instrument, **labels) -> None:
        """Expose an externally owned instrument in snapshots.

        Adopted instruments (e.g. the counters inside a
        :class:`~repro.perfstats.CacheStats`) appear in :meth:`snapshot`
        but never in :meth:`owned_snapshot` — their owners carry their
        own cross-process merge paths, and shipping them twice would
        double count.
        """
        self._adopted[(name, _label_key(labels))] = instrument

    def add_collector(self, collector) -> None:
        """Register ``collector(registry)`` to run before every snapshot.

        Collectors derive gauges from live structures (rotation counter
        sums, world sizes).  They must be idempotent: use ``set``-style
        instruments, never increments.
        """
        self._collectors.append(collector)

    # -- snapshots ------------------------------------------------------

    def reset_owned(self) -> None:
        """Zero every owned instrument in place (shard task deltas).

        Shard workers call this before a task so that the following
        ``owned_snapshot`` holds exactly the task's contribution even
        when the pool reuses the process across tasks.
        """
        for instrument in self._owned.values():
            if isinstance(instrument, Histogram):
                instrument.counts = [0] * len(instrument.counts)
                instrument.total = 0.0
                instrument.count = 0
            else:
                instrument.value = 0

    def collect(self) -> None:
        """Run the registered collectors."""
        for collector in self._collectors:
            collector(self)

    def owned_snapshot(self) -> dict:
        """A JSON-friendly snapshot of owned instruments only."""
        return self._snapshot(self._owned.items())

    def snapshot(self) -> dict:
        """A JSON-friendly snapshot of everything (collectors run first)."""
        self.collect()
        merged = dict(self._owned)
        merged.update(self._adopted)
        return self._snapshot(merged.items())

    @staticmethod
    def _snapshot(items) -> dict:
        counters, gauges, histograms = [], [], []
        for (name, labels), instrument in sorted(items, key=lambda kv: kv[0]):
            label_dict = dict(labels)
            if instrument.kind == "counter":
                counters.append(
                    {"name": name, "labels": label_dict, "value": instrument.value}
                )
            elif instrument.kind == "gauge":
                gauges.append(
                    {"name": name, "labels": label_dict, "value": instrument.value}
                )
            else:
                histograms.append(
                    {
                        "name": name,
                        "labels": label_dict,
                        "bounds": list(instrument.bounds),
                        "counts": list(instrument.counts),
                        "total": instrument.total,
                        "count": instrument.count,
                    }
                )
        return {"counters": counters, "gauges": gauges, "histograms": histograms}

    # -- merging --------------------------------------------------------

    def absorb(self, snapshot: dict | None) -> None:
        """Fold a snapshot (shard worker contribution) into this registry.

        Counters and histogram buckets add; gauges keep the maximum.
        All three rules are commutative and associative, so the merged
        totals depend only on the multiset of absorbed snapshots — never
        on worker count or arrival order.
        """
        if not snapshot:
            return
        for entry in snapshot.get("counters", ()):
            self.counter(entry["name"], **entry["labels"]).inc(entry["value"])
        for entry in snapshot.get("gauges", ()):
            gauge = self.gauge(entry["name"], **entry["labels"])
            if entry["value"] > gauge.value:
                gauge.value = entry["value"]
        for entry in snapshot.get("histograms", ()):
            histogram = self.histogram(
                entry["name"], tuple(entry["bounds"]), **entry["labels"]
            )
            for position, count in enumerate(entry["counts"]):
                histogram.counts[position] += count
            histogram.total += entry["total"]
            histogram.count += entry["count"]


class _NullCounter(Counter):
    """A counter that ignores increments (telemetry off)."""

    __slots__ = ()

    def inc(self, amount: int | float = 1) -> None:
        """Discard the increment."""


class _NullGauge(Gauge):
    """A gauge that ignores sets (telemetry off)."""

    __slots__ = ()

    def set(self, value: int | float) -> None:
        """Discard the value."""


class _NullHistogram(Histogram):
    """A histogram that ignores observations (telemetry off)."""

    __slots__ = ()

    def observe(self, value: float) -> None:
        """Discard the observation."""

    def observe_many(self, value: float, n: int) -> None:
        """Discard the observations."""


_NULL_COUNTER = _NullCounter()
_NULL_GAUGE = _NullGauge()
_NULL_HISTOGRAM = _NullHistogram((1.0,))


class NullRegistry(MetricsRegistry):
    """The no-op registry: shared inert instruments, empty snapshots.

    Instrumented code does not need to special-case telemetry-off — it
    receives an instrument whose mutators do nothing.  (Hot loops that
    would do per-item work to *compute* an observation should still gate
    on :attr:`enabled`.)
    """

    enabled = False

    def counter(self, name: str, **labels) -> Counter:
        """The shared no-op counter."""
        return _NULL_COUNTER

    def gauge(self, name: str, **labels) -> Gauge:
        """The shared no-op gauge."""
        return _NULL_GAUGE

    def histogram(self, name: str, bounds: tuple[float, ...], **labels) -> Histogram:
        """The shared no-op histogram."""
        return _NULL_HISTOGRAM

    def adopt(self, name: str, instrument, **labels) -> None:
        """Ignore the adoption."""

    def add_collector(self, collector) -> None:
        """Ignore the collector."""

    def absorb(self, snapshot: dict | None) -> None:
        """Ignore the snapshot."""
