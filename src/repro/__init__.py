"""repro — a reproduction of "Towards a Tectonic Traffic Shift?
Investigating Apple's New Relay Network" (IMC 2022).

The package has three layers:

* **substrates** (:mod:`repro.netmodel`, :mod:`repro.dns`,
  :mod:`repro.quic`, :mod:`repro.masque`, :mod:`repro.relay`,
  :mod:`repro.atlas`) — the Internet, DNS, QUIC/MASQUE, the relay
  network itself, and a distributed measurement platform;
* **worldgen** (:mod:`repro.worldgen`) — seeded synthetic worlds
  calibrated to the paper's ground truth;
* **measurement** (:mod:`repro.scan`, :mod:`repro.analysis`) — the
  paper's scanning pipeline and the analyses producing every table and
  figure.

Quickstart::

    from repro import build_world, WorldConfig
    from repro.scan import EcsScanner
    from repro.relay.service import RELAY_DOMAIN_QUIC

    world = build_world(WorldConfig.small())
    world.clock.advance_to(world.scan_start(2022, 4))
    scanner = EcsScanner(world.route53, world.routing, world.clock)
    result = scanner.scan(RELAY_DOMAIN_QUIC)
    print(len(result.addresses()), "ingress relay addresses uncovered")
"""

from repro.archive import ArchiveBundle, read_archive, write_archive
from repro.errors import ReproError
from repro.worldgen import World, WorldConfig, build_world

__version__ = "1.0.0"

__all__ = [
    "ArchiveBundle",
    "read_archive",
    "write_archive",
    "ReproError",
    "World",
    "WorldConfig",
    "build_world",
    "__version__",
]
