"""A measurement probe."""

from __future__ import annotations

from dataclasses import dataclass

from repro.dns.resolver import Resolver
from repro.netmodel.addr import IPAddress


@dataclass
class Probe:
    """One probe: where it sits and how it resolves names.

    ``resolver`` models the probe's configured DNS path end to end —
    including any middlebox interference — so a probe behind a blocking
    or hijacking resolver carries that resolver object directly.
    """

    probe_id: int
    asn: int
    country: str
    region: str
    address: IPAddress
    resolver: Resolver
    address_v6: IPAddress | None = None
    #: Label of the public resolver service used, if any (for the
    #: whoami-style resolver-population analysis).
    resolver_provider: str | None = None

    def __post_init__(self) -> None:
        if self.address.version != 4:
            raise ValueError("probe primary address must be IPv4")
        if self.address_v6 is not None and self.address_v6.version != 6:
            raise ValueError("probe v6 address must be IPv6")

    @property
    def has_ipv6(self) -> bool:
        """Whether the probe can run AAAA measurements natively."""
        return self.address_v6 is not None
