"""Measurement specifications and results."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.dns.message import Rcode
from repro.dns.rr import RRType
from repro.netmodel.addr import IPAddress


class MeasurementTarget(enum.Enum):
    """Where a probe sends its DNS query."""

    #: The probe's locally configured recursive resolver (the default,
    #: and what exposes resolver-level blocking).
    LOCAL_RESOLVER = "local"
    #: Straight at the authoritative name server, bypassing resolvers.
    AUTHORITATIVE = "authoritative"


@dataclass(frozen=True, slots=True)
class DnsMeasurementSpec:
    """One one-off DNS measurement across many probes."""

    domain: str
    rtype: RRType
    target: MeasurementTarget = MeasurementTarget.LOCAL_RESOLVER
    #: None = all connected probes; otherwise an explicit probe set.
    probe_ids: tuple[int, ...] | None = None
    description: str = ""


@dataclass(frozen=True, slots=True)
class ProbeDnsResult:
    """One probe's outcome for a DNS measurement."""

    probe_id: int
    asn: int
    country: str
    #: None when the query timed out (no DNS response at all).
    rcode: Rcode | None
    addresses: tuple[IPAddress, ...] = ()
    timed_out: bool = False

    @property
    def succeeded(self) -> bool:
        """NOERROR with at least one answer address."""
        return self.rcode == Rcode.NOERROR and bool(self.addresses)

    @property
    def failed_with_response(self) -> bool:
        """The resolver answered, but resolution did not produce data."""
        return not self.timed_out and not self.succeeded


@dataclass
class DnsMeasurementResult:
    """All probe results of one measurement."""

    spec: DnsMeasurementSpec
    started_at: float
    results: list[ProbeDnsResult] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.results)

    def distinct_addresses(self) -> set[IPAddress]:
        """All distinct answer addresses across probes."""
        return {addr for r in self.results for addr in r.addresses}

    def timeouts(self) -> list[ProbeDnsResult]:
        """Probes whose query received no response."""
        return [r for r in self.results if r.timed_out]

    def failures_with_response(self) -> list[ProbeDnsResult]:
        """Probes that got a response but no usable resolution."""
        return [r for r in self.results if r.failed_with_response]

    def successes(self) -> list[ProbeDnsResult]:
        """Probes that resolved the domain."""
        return [r for r in self.results if r.succeeded]

    def rcode_breakdown(self) -> dict[str, int]:
        """Counts per response code among failures-with-response."""
        counts: dict[str, int] = {}
        for result in self.failures_with_response():
            assert result.rcode is not None
            # NOERROR failures are NOERROR-with-no-data responses.
            counts[result.rcode.name] = counts.get(result.rcode.name, 0) + 1
        return counts
