"""The measurement platform: probe inventory + measurement execution."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import MeasurementError, ResolutionTimeout
from repro.atlas.measurement import (
    DnsMeasurementResult,
    DnsMeasurementSpec,
    MeasurementTarget,
    ProbeDnsResult,
)
from repro.atlas.probe import Probe
from repro.dns.message import DnsMessage
from repro.dns.name import DnsName
from repro.dns.rr import RRType
from repro.dns.server import NameServerRegistry
from repro.dns.whoami import WhoamiServer
from repro.simtime import SimClock


@dataclass
class AtlasPlatform:
    """Probe inventory plus one-off DNS measurement execution."""

    registry: NameServerRegistry
    clock: SimClock
    probes: dict[int, Probe] = field(default_factory=dict)
    #: Simulated seconds per full measurement ("the RIPE Atlas scan only
    #: takes minutes" — vs 40 hours for the ECS scan).
    measurement_duration: float = 300.0

    def add_probe(self, probe: Probe) -> Probe:
        """Register a probe; duplicate ids are an error."""
        if probe.probe_id in self.probes:
            raise MeasurementError(f"probe {probe.probe_id} already registered")
        self.probes[probe.probe_id] = probe
        return probe

    def __len__(self) -> int:
        return len(self.probes)

    def probe(self, probe_id: int) -> Probe:
        """Look up a probe by id."""
        try:
            return self.probes[probe_id]
        except KeyError:
            raise MeasurementError(f"unknown probe {probe_id}") from None

    # ------------------------------------------------------------------
    # Inventory properties (the distribution/bias facts the paper cites)
    # ------------------------------------------------------------------

    def distinct_asns(self) -> set[int]:
        """ASes hosting at least one probe."""
        return {p.asn for p in self.probes.values()}

    def distinct_countries(self) -> set[str]:
        """Countries hosting at least one probe."""
        return {p.country for p in self.probes.values()}

    def probes_by_region(self) -> dict[str, int]:
        """Probe counts per region (shows the NA/EU bias)."""
        counts: dict[str, int] = {}
        for probe in self.probes.values():
            counts[probe.region] = counts.get(probe.region, 0) + 1
        return counts

    def resolver_provider_shares(self) -> dict[str, float]:
        """Share of probes per public-resolver provider ("local" = none)."""
        if not self.probes:
            return {}
        counts: dict[str, int] = {}
        for probe in self.probes.values():
            provider = probe.resolver_provider or "local"
            counts[provider] = counts.get(provider, 0) + 1
        total = len(self.probes)
        return {provider: count / total for provider, count in counts.items()}

    # ------------------------------------------------------------------
    # Measurement execution
    # ------------------------------------------------------------------

    def _selected(self, spec: DnsMeasurementSpec) -> list[Probe]:
        if spec.probe_ids is None:
            return list(self.probes.values())
        return [self.probe(pid) for pid in spec.probe_ids]

    def run_dns(self, spec: DnsMeasurementSpec) -> DnsMeasurementResult:
        """Run a one-off DNS measurement on the selected probes."""
        started = self.clock.now
        result = DnsMeasurementResult(spec=spec, started_at=started)
        for probe in self._selected(spec):
            result.results.append(self._run_on_probe(probe, spec))
        self.clock.advance(self.measurement_duration)
        return result

    def _run_on_probe(self, probe: Probe, spec: DnsMeasurementSpec) -> ProbeDnsResult:
        if spec.rtype == RRType.AAAA and spec.target is MeasurementTarget.AUTHORITATIVE and not probe.has_ipv6:
            # Probes without v6 connectivity cannot reach v6-only paths;
            # they still query their resolver fine, so only the direct
            # authoritative case degrades.  Modelled as a timeout.
            return ProbeDnsResult(
                probe.probe_id, probe.asn, probe.country, rcode=None, timed_out=True
            )
        if spec.target is MeasurementTarget.LOCAL_RESOLVER:
            try:
                response = probe.resolver.resolve(
                    spec.domain, spec.rtype, client_address=probe.address
                )
            except ResolutionTimeout:
                return ProbeDnsResult(
                    probe.probe_id, probe.asn, probe.country, rcode=None, timed_out=True
                )
        else:
            name = DnsName.parse(spec.domain)
            server = self.registry.authoritative_for(name)
            if server is None:
                return ProbeDnsResult(
                    probe.probe_id, probe.asn, probe.country, rcode=None, timed_out=True
                )
            query = DnsMessage.query(name, spec.rtype)
            if isinstance(server, WhoamiServer):
                response = server.handle_from(query, probe.address)
            else:
                response = server.handle(query, source_address=probe.address)
        return ProbeDnsResult(
            probe_id=probe.probe_id,
            asn=probe.asn,
            country=probe.country,
            rcode=response.rcode,
            addresses=tuple(response.answer_addresses()),
        )
