"""A RIPE-Atlas-style distributed measurement platform.

Models the properties of RIPE Atlas the paper leans on: ~10k probes
spread over thousands of ASes and ~168 countries with a documented bias
towards North America and Europe; per-probe resolver configurations
(over half of probes sit behind Google/Cloudflare/Quad9/OpenDNS); and a
DNS measurement API that can target either the probe's local resolver
or an authoritative server directly.
"""

from repro.atlas.measurement import (
    DnsMeasurementResult,
    DnsMeasurementSpec,
    MeasurementTarget,
    ProbeDnsResult,
)
from repro.atlas.platform import AtlasPlatform
from repro.atlas.probe import Probe

__all__ = [
    "AtlasPlatform",
    "Probe",
    "DnsMeasurementSpec",
    "DnsMeasurementResult",
    "ProbeDnsResult",
    "MeasurementTarget",
]
