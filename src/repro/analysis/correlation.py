"""The Section 6 traffic-correlation adversary.

Apple's stated goal: "No one entity can see both who a user is (IP
address) and what they are accessing (origin server)".  The paper shows
the premise fails at the network level when one AS — Akamai's AS36183 —
hosts both ingress and egress relays: an entity observing both legs can
join them on timing, exactly like the classic Tor correlation attacks
the paper cites.

This module implements that adversary over simulated flow observations:

* every relayed connection produces an *ingress-leg observation*
  (client address, timestamp, padded size) and an *egress-leg
  observation* (destination, timestamp + forwarding delay, padded
  size) — contents are never available, matching MASQUE;
* an AS collects the observations of the legs it can see;
* :func:`correlate_flows` greedily joins ingress and egress
  observations within a timing window, scoring by arrival-time
  proximity.

The emergent result mirrors the paper: the dual-role AS de-anonymises
(client, destination) pairs with high precision, while any single-role
AS can recover nothing.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.masque.proxy import MasqueTunnel
from repro.netmodel.addr import IPAddress


@dataclass(frozen=True, slots=True)
class LegObservation:
    """One flow as a passive observer of a single leg sees it."""

    timestamp: float
    source: IPAddress
    destination: IPAddress
    bytes_seen: int
    #: Which side of the relay the observation belongs to.
    side: str  # "ingress" | "egress"


@dataclass(frozen=True, slots=True)
class CorrelatedPair:
    """A (client, destination) join the adversary claims."""

    client: IPAddress
    destination_authority: str
    score: float
    correct: bool


@dataclass
class CorrelationResult:
    """Outcome of a correlation attempt by one observer AS."""

    observer_asn: int
    pairs: list[CorrelatedPair] = field(default_factory=list)
    observable_flows: int = 0

    @property
    def precision(self) -> float:
        """Fraction of claimed pairs that are correct."""
        if not self.pairs:
            return 0.0
        return sum(1 for p in self.pairs if p.correct) / len(self.pairs)

    @property
    def recall(self) -> float:
        """Fraction of observable flows the adversary joined correctly."""
        if not self.observable_flows:
            return 0.0
        correct = sum(1 for p in self.pairs if p.correct)
        return correct / self.observable_flows


@dataclass(frozen=True, slots=True)
class FlowRecord:
    """Ground-truth record of one relayed connection (for scoring)."""

    tunnel: MasqueTunnel
    #: Simulated one-way forwarding delay between the two legs.
    forwarding_delay: float = 0.012


def observations_for_asn(
    flows: list[FlowRecord], observer_asn: int
) -> tuple[list[LegObservation], list[LegObservation]]:
    """The ingress- and egress-leg observations one AS can collect.

    An AS sees the ingress leg when it is the client's or the ingress
    relay's AS; it sees the egress side when it operates the egress
    relay (it originates the egress connection to the target).
    """
    ingress_obs: list[LegObservation] = []
    egress_obs: list[LegObservation] = []
    for flow in flows:
        tunnel = flow.tunnel
        if observer_asn in tunnel.asns_seeing_client():
            ingress_obs.append(
                LegObservation(
                    timestamp=tunnel.established_at,
                    source=tunnel.ingress_leg.source,
                    destination=tunnel.ingress_leg.destination,
                    bytes_seen=tunnel.ingress_leg.bytes_carried,
                    side="ingress",
                )
            )
        if observer_asn in tunnel.asns_seeing_destination():
            egress_obs.append(
                LegObservation(
                    timestamp=tunnel.established_at + flow.forwarding_delay,
                    source=tunnel.egress_address,
                    destination=tunnel.egress_leg.destination,
                    bytes_seen=tunnel.egress_leg.bytes_carried,
                    side="egress",
                )
            )
    return ingress_obs, egress_obs


def correlate_flows(
    flows: list[FlowRecord],
    observer_asn: int,
    window_seconds: float = 0.2,
) -> CorrelationResult:
    """Run the timing-correlation attack for one observer AS.

    Greedy nearest-in-time matching between the ingress and egress
    observations the AS holds; each claimed pair is scored against the
    ground-truth tunnels (the simulator knows the truth, the adversary
    does not).
    """
    ingress_obs, egress_obs = observations_for_asn(flows, observer_asn)
    result = CorrelationResult(observer_asn=observer_asn)
    result.observable_flows = sum(
        1
        for flow in flows
        if observer_asn in flow.tunnel.asns_seeing_client()
        and observer_asn in flow.tunnel.asns_seeing_destination()
    )
    if not ingress_obs or not egress_obs:
        return result
    truth = {
        (f.tunnel.client_address, f.tunnel.established_at): f.tunnel
        for f in flows
    }
    remaining = sorted(egress_obs, key=lambda o: o.timestamp)
    for ingress in sorted(ingress_obs, key=lambda o: o.timestamp):
        best = None
        best_delta = window_seconds
        for candidate in remaining:
            delta = candidate.timestamp - ingress.timestamp
            if delta < 0:
                continue
            if delta > window_seconds:
                break
            if delta <= best_delta:
                best = candidate
                best_delta = delta
        if best is None:
            continue
        remaining.remove(best)
        tunnel = truth.get((ingress.source, ingress.timestamp))
        claimed_destination = _destination_of(flows, best)
        correct = (
            tunnel is not None
            and claimed_destination == tunnel.destination_authority
        )
        result.pairs.append(
            CorrelatedPair(
                client=ingress.source,
                destination_authority=claimed_destination,
                score=1.0 - best_delta / window_seconds,
                correct=correct,
            )
        )
    return result


def _destination_of(flows: list[FlowRecord], observation: LegObservation) -> str:
    """Ground-truth destination behind an egress observation."""
    for flow in flows:
        tunnel = flow.tunnel
        if (
            tunnel.egress_address == observation.source
            and abs(
                tunnel.established_at + flow.forwarding_delay
                - observation.timestamp
            )
            < 1e-9
        ):
            return tunnel.destination_authority
    return ""
