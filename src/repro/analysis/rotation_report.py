"""Figure 3 and the Section 4.3 rotation findings."""

from __future__ import annotations

from dataclasses import dataclass

from repro.netmodel.asn import operator_name
from repro.relay.egress_list import EgressList
from repro.scan.relay_scanner import RelayScanSeries


@dataclass
class RotationReport:
    """Derived statistics of one or two relay scan series."""

    open_scan: RelayScanSeries
    fixed_scan: RelayScanSeries | None = None
    egress_list: EgressList | None = None

    # -- Figure 3 --------------------------------------------------------

    def figure3_series(self) -> dict[str, list[tuple[float, int]]]:
        """Per scan variant: the (relative time, operator ASN) step series."""
        out = {self.open_scan.label: self.open_scan.operator_series()}
        if self.fixed_scan is not None:
            out[self.fixed_scan.label] = self.fixed_scan.operator_series()
        return out

    def operator_change_counts(self) -> dict[str, int]:
        """Operator flips per scan variant (a handful per day)."""
        out = {self.open_scan.label: len(self.open_scan.operator_changes())}
        if self.fixed_scan is not None:
            out[self.fixed_scan.label] = len(self.fixed_scan.operator_changes())
        return out

    def operators_seen(self) -> set[str]:
        """Names of the egress operators observed at the vantage."""
        asns = set(self.open_scan.operators_seen())
        if self.fixed_scan is not None:
            asns |= self.fixed_scan.operators_seen()
        return {operator_name(asn) for asn in asns}

    # -- rotation statistics ----------------------------------------------

    def address_change_rate(self) -> float:
        """Back-to-back egress address change rate (>66 % in the paper)."""
        return self.open_scan.address_change_rate()

    def distinct_address_count(self) -> int:
        """Distinct egress addresses over the window (6 in the paper)."""
        return len(self.open_scan.distinct_addresses())

    def distinct_subnet_count(self) -> int:
        """Distinct published subnets those addresses map to (4)."""
        if self.egress_list is None:
            return 0
        return self.open_scan.distinct_subnets(self.egress_list)

    def parallel_divergence_rate(self) -> float:
        """How often the simultaneous Safari/curl pair diverged."""
        return self.open_scan.parallel_divergence_rate()

    def forced_ingress_changes_behaviour(self) -> bool:
        """Whether forcing the ingress changed egress behaviour.

        The paper observed no differences; True would contradict it.
        """
        if self.fixed_scan is None or not self.fixed_scan.rounds:
            return False
        open_rate = self.open_scan.address_change_rate()
        fixed_rate = self.fixed_scan.address_change_rate()
        if open_rate == 0.0 and fixed_rate == 0.0:
            return False
        return abs(open_rate - fixed_rate) > 0.25

    def render(self) -> str:
        """The rotation findings as prose lines."""
        lines = [
            f"operators seen: {', '.join(sorted(self.operators_seen()))}",
            f"operator changes: {self.operator_change_counts()}",
            f"address change rate: {self.address_change_rate():.1%}",
            f"distinct egress addresses: {self.distinct_address_count()}",
        ]
        if self.egress_list is not None:
            lines.append(f"distinct egress subnets: {self.distinct_subnet_count()}")
        lines.append(
            f"parallel divergence rate: {self.parallel_divergence_rate():.1%}"
        )
        if self.fixed_scan is not None:
            lines.append(
                "forced ingress changed egress behaviour: "
                f"{self.forced_ingress_changes_behaviour()}"
            )
        return "\n".join(lines)


def build_rotation_report(
    open_scan: RelayScanSeries,
    fixed_scan: RelayScanSeries | None = None,
    egress_list: EgressList | None = None,
) -> RotationReport:
    """Bundle scan series into a rotation report."""
    return RotationReport(open_scan, fixed_scan, egress_list)
