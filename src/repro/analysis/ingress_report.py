"""Tables 1 and 2: ingress relay evolution and client attribution."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.tables import TextTable, pct
from repro.netmodel.addr import IPAddress
from repro.netmodel.asn import WellKnownAS, operator_name
from repro.netmodel.bgp import RoutingTable
from repro.netmodel.population import ASPopulationDataset
from repro.scan.ecs_scanner import EcsScanResult
from repro.simtime import format_month

APPLE = int(WellKnownAS.APPLE)
AKAMAI_PR = int(WellKnownAS.AKAMAI_PR)


# ----------------------------------------------------------------------
# Table 1
# ----------------------------------------------------------------------


@dataclass(frozen=True, slots=True)
class Table1Row:
    """One month of Table 1."""

    month: str
    default_apple: int
    default_akamai: int
    fallback_apple: int | None
    fallback_akamai: int | None

    @property
    def default_total(self) -> int:
        return self.default_apple + self.default_akamai

    @property
    def fallback_total(self) -> int | None:
        if self.fallback_apple is None:
            return None
        return self.fallback_apple + (self.fallback_akamai or 0)


@dataclass
class Table1Report:
    """Ingress relay address counts per AS and month."""

    rows: list[Table1Row] = field(default_factory=list)

    def quic_growth(self) -> float:
        """Relative growth of QUIC relays first→last month (+34 %)."""
        if len(self.rows) < 2 or not self.rows[0].default_total:
            return 0.0
        return self.rows[-1].default_total / self.rows[0].default_total - 1.0

    def fallback_growth(self) -> float:
        """Relative growth of fallback relays (+293 % Feb→Apr)."""
        with_fallback = [r for r in self.rows if r.fallback_total]
        if len(with_fallback) < 2:
            return 0.0
        return with_fallback[-1].fallback_total / with_fallback[0].fallback_total - 1.0

    def final_total(self) -> int:
        """QUIC ingress addresses in the final month (the 1586)."""
        return self.rows[-1].default_total if self.rows else 0

    def render(self) -> str:
        """The table in the paper's layout."""
        table = TextTable(
            ["Month", "Apple", "%", "Akamai", "%", "FB Apple", "%", "FB Akamai", "%"],
            title="Table 1: ingress relay ASes per month (default | fallback)",
        )
        for row in self.rows:
            total = row.default_total or 1
            cells = [
                row.month,
                row.default_apple,
                pct(row.default_apple / total),
                row.default_akamai,
                pct(row.default_akamai / total),
            ]
            if row.fallback_apple is None:
                cells += ["-", "-", "-", "-"]
            else:
                fb_total = row.fallback_total or 1
                cells += [
                    row.fallback_apple,
                    pct(row.fallback_apple / fb_total),
                    row.fallback_akamai or 0,
                    pct((row.fallback_akamai or 0) / fb_total),
                ]
            table.add_row(*cells)
        return table.render()


def build_table1(
    monthly: list[tuple[int, int, EcsScanResult, EcsScanResult | None]]
) -> Table1Report:
    """Build Table 1 from (year, month, default scan, fallback scan|None)."""
    report = Table1Report()
    for year, month, default, fallback in monthly:
        d_by_asn = {k: len(v) for k, v in default.addresses_by_asn().items()}
        row = Table1Row(
            month=format_month(year, month),
            default_apple=d_by_asn.get(APPLE, 0),
            default_akamai=d_by_asn.get(AKAMAI_PR, 0),
            fallback_apple=None,
            fallback_akamai=None,
        )
        if fallback is not None:
            f_by_asn = {k: len(v) for k, v in fallback.addresses_by_asn().items()}
            row = Table1Row(
                month=row.month,
                default_apple=row.default_apple,
                default_akamai=row.default_akamai,
                fallback_apple=f_by_asn.get(APPLE, 0),
                fallback_akamai=f_by_asn.get(AKAMAI_PR, 0),
            )
        report.rows.append(row)
    return report


# ----------------------------------------------------------------------
# Table 2
# ----------------------------------------------------------------------


@dataclass
class Table2Report:
    """Client ASes/subnets/users served per ingress operator."""

    akamai_only_ases: int = 0
    apple_only_ases: int = 0
    both_ases: int = 0
    akamai_only_slash24s: int = 0
    apple_only_slash24s: int = 0
    both_slash24s: int = 0
    both_apple_slash24s: int = 0
    akamai_only_population: int = 0
    apple_only_population: int = 0
    both_population: int = 0

    @property
    def apple_share_of_both(self) -> float:
        """Apple's subnet share within ASes served by both (76 %)."""
        if not self.both_slash24s:
            return 0.0
        return self.both_apple_slash24s / self.both_slash24s

    @property
    def apple_share_of_all_subnets(self) -> float:
        """Apple's share of all served /24 subnets (69 %)."""
        total = (
            self.akamai_only_slash24s + self.apple_only_slash24s + self.both_slash24s
        )
        if not total:
            return 0.0
        return (self.apple_only_slash24s + self.both_apple_slash24s) / total

    def render(self) -> str:
        """The table in the paper's layout."""
        fmt = ASPopulationDataset.format_users
        table = TextTable(
            ["AS", "ASPop", "ASes", "/24 Subnets"],
            title="Table 2: client ASes served by each ingress relay AS",
        )
        table.add_row(
            operator_name(AKAMAI_PR),
            fmt(self.akamai_only_population),
            self.akamai_only_ases,
            self.akamai_only_slash24s,
        )
        table.add_row(
            operator_name(APPLE),
            fmt(self.apple_only_population),
            self.apple_only_ases,
            self.apple_only_slash24s,
        )
        table.add_row(
            f"Both (Apple share {pct(self.apple_share_of_both)})",
            fmt(self.both_population),
            self.both_ases,
            self.both_slash24s,
        )
        return table.render()


def build_table2(
    scan: EcsScanResult,
    routing: RoutingTable,
    population: ASPopulationDataset,
) -> Table2Report:
    """Attribute the April scan's client subnets to operators.

    Per response: the *queried* subnet is attributed to its origin AS
    (the client network) and the *answer* AS names the serving operator;
    the covered-/24 count comes from the ECS scope.  ASes appearing with
    both operators form the "Both" row, whose users cannot be split
    because the population dataset has AS granularity only.
    """
    per_as: dict[int, dict[int, int]] = {}
    for response in scan.responses:
        if response.answer_asn not in (APPLE, AKAMAI_PR):
            continue
        client_asn = routing.origin_of(IPAddress(4, response.subnet.value))
        if client_asn is None or client_asn not in population:
            # Infrastructure and operator space has no user-population
            # estimate; like the paper's APNIC-based attribution, only
            # eyeball ASes covered by the dataset are attributed.
            continue
        ops = per_as.setdefault(client_asn, {})
        ops[response.answer_asn] = (
            ops.get(response.answer_asn, 0) + response.covered_slash24s()
        )
    report = Table2Report()
    for client_asn, ops in per_as.items():
        users = population.population(client_asn)
        apple = ops.get(APPLE, 0)
        akamai = ops.get(AKAMAI_PR, 0)
        if apple and akamai:
            report.both_ases += 1
            report.both_slash24s += apple + akamai
            report.both_apple_slash24s += apple
            report.both_population += users
        elif apple:
            report.apple_only_ases += 1
            report.apple_only_slash24s += apple
            report.apple_only_population += users
        else:
            report.akamai_only_ases += 1
            report.akamai_only_slash24s += akamai
            report.akamai_only_population += users
    return report
