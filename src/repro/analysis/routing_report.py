"""AS-level routing analysis of relay traffic (future work item i).

Answers the paper's open question about where relay traffic is routed
and whether the system has bottlenecks: computes valley-free AS paths
from a client-AS sample towards the ingress operators (and from the
egress operators towards an example destination), aggregates transit
load shares, and names the heaviest-loaded transit AS.

Also reports the relay AS's connectivity profile — in the generated
worlds, as in the paper, AS36183's only peering link is to AS20940.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.netmodel.asn import WellKnownAS, operator_name
from repro.netmodel.aspath import ASGraph, AsPath, PathLoad

APPLE = int(WellKnownAS.APPLE)
AKAMAI_PR = int(WellKnownAS.AKAMAI_PR)


@dataclass
class RoutingReport:
    """Path-load findings for traffic towards the ingress layer."""

    per_operator: dict[int, PathLoad] = field(default_factory=dict)
    unreachable_clients: int = 0
    relay_peers: set[int] = field(default_factory=set)

    def bottlenecks(self) -> dict[int, tuple[int, float] | None]:
        """Per ingress operator: the heaviest transit AS and its share."""
        return {
            asn: load.bottleneck() for asn, load in self.per_operator.items()
        }

    def average_hops(self) -> dict[int, float]:
        """Per ingress operator: mean AS-hop count from clients."""
        return {
            asn: load.average_hops() for asn, load in self.per_operator.items()
        }

    def single_peer_relay_as(self) -> bool:
        """Whether the relay AS has exactly one peering link (AS20940)."""
        return self.relay_peers == {int(WellKnownAS.AKAMAI_EG)}

    def render(self) -> str:
        """The path-load findings as prose lines."""
        lines = []
        for asn, load in sorted(self.per_operator.items()):
            bottleneck = load.bottleneck()
            lines.append(
                f"towards {operator_name(asn)}: {len(load.paths)} paths, "
                f"avg {load.average_hops():.1f} AS hops, bottleneck "
                + (
                    f"AS{bottleneck[0]} carrying {bottleneck[1]:.0%}"
                    if bottleneck
                    else "none"
                )
            )
        lines.append(
            "relay AS peering links: "
            + (", ".join(f"AS{p}" for p in sorted(self.relay_peers)) or "none")
        )
        if self.unreachable_clients:
            lines.append(f"unreachable client ASes: {self.unreachable_clients}")
        return "\n".join(lines)


def build_routing_report(
    graph: ASGraph,
    client_asns: list[int],
    ingress_operators: tuple[int, ...] = (APPLE, AKAMAI_PR),
) -> RoutingReport:
    """Compute client→ingress path loads over a client-AS sample."""
    report = RoutingReport(relay_peers=graph.peers_of(AKAMAI_PR))
    for operator in ingress_operators:
        report.per_operator[operator] = PathLoad()
    for client_asn in client_asns:
        for operator in ingress_operators:
            path = graph.best_path(client_asn, operator)
            if path is None:
                report.unreachable_clients += 1
                continue
            report.per_operator[operator].add(path)
    return report


def egress_paths_to_destination(
    graph: ASGraph, egress_operators: list[int], destination_asn: int
) -> dict[int, AsPath | None]:
    """Paths from each egress operator to a destination AS."""
    return {
        asn: graph.best_path(asn, destination_asn) for asn in egress_operators
    }
