"""Section 6: the correlation-surface analysis.

Three findings are computed here from measured (not ground-truth) data:

* **operator overlap** — the same AS (Akamai's AS36183) hosts both
  ingress and egress relays;
* **shared last hop** — traceroutes from the vantage towards an AS36183
  ingress address and an AS36183 egress address end at the same router;
* **prefix usage** — of the prefixes AS36183 announces, how many carry
  ingress relays, how many carry egress subnets, whether any carries
  both, and the used fraction (92.2 % in the paper); plus the monthly
  BGP history showing the AS first appeared with the service launch.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.netmodel.addr import IPAddress, Prefix
from repro.netmodel.asn import WellKnownAS
from repro.netmodel.bgp import BgpHistory, RoutingTable
from repro.netmodel.prefix_trie import DualStackTrie
from repro.netmodel.topology import Topology
from repro.netmodel.traceroute import TracerouteResult, traceroute
from repro.relay.egress_list import EgressList

AKAMAI_PR = int(WellKnownAS.AKAMAI_PR)


@dataclass
class OverlapReport:
    """The Section 6 findings."""

    overlap_asns: set[int]
    announced_v4: int
    announced_v6: int
    ingress_prefixes: int
    egress_prefixes: int
    shared_prefixes: int
    first_seen: tuple[int, int] | None
    months_examined: int
    shared_last_hop: bool
    ingress_trace: TracerouteResult | None = None
    egress_trace: TracerouteResult | None = None
    correlating_tunnel_asns: set[int] = field(default_factory=set)

    @property
    def announced_total(self) -> int:
        """All announced AS36183 prefixes, both versions."""
        return self.announced_v4 + self.announced_v6

    @property
    def used_prefixes(self) -> int:
        """Prefixes carrying at least one relay function."""
        return self.ingress_prefixes + self.egress_prefixes - self.shared_prefixes

    @property
    def used_fraction(self) -> float:
        """Share of announced prefixes used by the relay service."""
        if not self.announced_total:
            return 0.0
        return self.used_prefixes / self.announced_total

    def render(self) -> str:
        """The Section 6 findings as prose lines."""
        lines = [
            f"ASes hosting ingress AND egress: {sorted(self.overlap_asns)}",
            f"AS{AKAMAI_PR} announces {self.announced_v4} IPv4 + "
            f"{self.announced_v6} IPv6 prefixes",
            f"ingress in {self.ingress_prefixes}, egress in "
            f"{self.egress_prefixes}, shared {self.shared_prefixes}",
            f"used fraction: {self.used_fraction:.1%}",
            f"first BGP occurrence: {self.first_seen} "
            f"({self.months_examined} months examined)",
            f"ingress/egress share a last hop: {self.shared_last_hop}",
        ]
        if self.correlating_tunnel_asns:
            lines.append(
                "ASes able to correlate a tunnel end-to-end: "
                f"{sorted(self.correlating_tunnel_asns)}"
            )
        return "\n".join(lines)


def build_overlap_report(
    routing: RoutingTable,
    history: BgpHistory,
    ingress_addresses_v4: set[IPAddress],
    ingress_addresses_v6: set[IPAddress],
    egress_list: EgressList,
    topology: Topology | None = None,
    vantage_router_id: str | None = None,
    probe_ingress: IPAddress | None = None,
    probe_egress: IPAddress | None = None,
) -> OverlapReport:
    """Compute the overlap report from measured inputs.

    ``ingress_addresses_*`` come from the ECS/Atlas scans; the egress
    side comes from the published list.  ``probe_ingress``/``probe_egress``
    select the pair of addresses to traceroute (both should be AS36183
    addresses observed during relay scans).
    """
    # --- operator overlap ------------------------------------------------
    ingress_asns = {
        asn
        for address in (ingress_addresses_v4 | ingress_addresses_v6)
        if (asn := routing.origin_of(address)) is not None
    }
    egress_asns = {
        asn
        for entry in egress_list
        if (asn := routing.origin_of(entry.prefix.network_address)) is not None
    }
    overlap = ingress_asns & egress_asns

    # --- prefix usage ----------------------------------------------------
    announced_v4 = routing.prefixes_by_origin(AKAMAI_PR, version=4)
    announced_v6 = routing.prefixes_by_origin(AKAMAI_PR, version=6)
    trie: DualStackTrie[str] = DualStackTrie()
    for prefix in announced_v4 + announced_v6:
        trie.insert(prefix, "announced")
    ingress_hit: set[Prefix] = set()
    for address in ingress_addresses_v4 | ingress_addresses_v6:
        hit = trie.lookup(address)
        if hit is not None:
            ingress_hit.add(hit[0])
    egress_hit: set[Prefix] = set()
    for entry in egress_list:
        hit = trie.covering(entry.prefix)
        if hit is not None:
            egress_hit.add(hit[0])
    shared = ingress_hit & egress_hit

    # --- BGP history -------------------------------------------------------
    first_seen = history.first_occurrence(AKAMAI_PR)
    months = len(history.months())

    # --- traceroute validation ---------------------------------------------
    shared_last_hop = False
    ingress_trace = egress_trace = None
    if (
        topology is not None
        and vantage_router_id is not None
        and probe_ingress is not None
        and probe_egress is not None
    ):
        ingress_trace = traceroute(topology, vantage_router_id, probe_ingress)
        egress_trace = traceroute(topology, vantage_router_id, probe_egress)
        shared_last_hop = ingress_trace.shares_last_hop_with(egress_trace)

    return OverlapReport(
        overlap_asns=overlap,
        announced_v4=len(announced_v4),
        announced_v6=len(announced_v6),
        ingress_prefixes=len(ingress_hit),
        egress_prefixes=len(egress_hit),
        shared_prefixes=len(shared),
        first_seen=first_seen,
        months_examined=months,
        shared_last_hop=shared_last_hop,
        ingress_trace=ingress_trace,
        egress_trace=egress_trace,
    )
