"""Analyses that turn scan results into the paper's tables and figures.

Each module mirrors a paper artefact:

* :mod:`repro.analysis.ingress_report` — Tables 1 and 2;
* :mod:`repro.analysis.egress_report` — Tables 3 and 4, Figures 2/4/5;
* :mod:`repro.analysis.rotation_report` — Figure 3 and the Section 4.3
  rotation statistics;
* :mod:`repro.analysis.overlap` — the Section 6 correlation analysis
  (shared last hops, AS36183 prefix usage, BGP first occurrence).
"""

from repro.analysis.correlation import (
    CorrelationResult,
    FlowRecord,
    correlate_flows,
)
from repro.analysis.egress_report import (
    EgressFacts,
    LocationCdf,
    Table3Report,
    Table4Report,
    build_egress_facts,
    build_geo_scatter,
    build_location_cdfs,
    build_table3,
    build_table4,
)
from repro.analysis.ingress_report import (
    Table1Report,
    Table2Report,
    build_table1,
    build_table2,
)
from repro.analysis.overlap import OverlapReport, build_overlap_report
from repro.analysis.passive import (
    IspMonitor,
    IspReport,
    PassiveFlow,
    ServerSideIds,
)
from repro.analysis.qoe import PathComparison, compare_paths
from repro.analysis.routing_report import (
    RoutingReport,
    build_routing_report,
    egress_paths_to_destination,
)
from repro.analysis.rotation_report import RotationReport, build_rotation_report
from repro.analysis.tables import TextTable

__all__ = [
    "CorrelationResult",
    "FlowRecord",
    "correlate_flows",
    "EgressFacts",
    "LocationCdf",
    "Table3Report",
    "Table4Report",
    "build_egress_facts",
    "build_geo_scatter",
    "build_location_cdfs",
    "build_table3",
    "build_table4",
    "Table1Report",
    "Table2Report",
    "build_table1",
    "build_table2",
    "OverlapReport",
    "build_overlap_report",
    "PathComparison",
    "compare_paths",
    "IspMonitor",
    "IspReport",
    "PassiveFlow",
    "ServerSideIds",
    "RoutingReport",
    "build_routing_report",
    "egress_paths_to_destination",
    "RotationReport",
    "build_rotation_report",
    "TextTable",
]
