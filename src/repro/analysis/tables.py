"""Monospace table rendering for reports and benchmark output."""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class TextTable:
    """A simple left/right-aligned text table."""

    headers: list[str]
    rows: list[list[str]] = field(default_factory=list)
    title: str = ""

    def add_row(self, *cells: object) -> None:
        """Append a row (cells are str()-converted)."""
        row = [str(c) for c in cells]
        if len(row) != len(self.headers):
            raise ValueError(
                f"row has {len(row)} cells, table has {len(self.headers)} columns"
            )
        self.rows.append(row)

    def render(self) -> str:
        """Render the table with aligned columns."""
        widths = [len(h) for h in self.headers]
        for row in self.rows:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))

        def fmt(cells: list[str]) -> str:
            out = []
            for i, cell in enumerate(cells):
                if i == 0:
                    out.append(cell.ljust(widths[i]))
                else:
                    out.append(cell.rjust(widths[i]))
            return "  ".join(out)

        lines = []
        if self.title:
            lines.append(self.title)
        lines.append(fmt(self.headers))
        lines.append("  ".join("-" * w for w in widths))
        lines.extend(fmt(row) for row in self.rows)
        return "\n".join(lines)


def pct(value: float) -> str:
    """Format a ratio as a percentage with one decimal."""
    return f"{100.0 * value:.1f}%"
