"""Passive network analysis under relay traffic (Section 6 discussion).

Two observer roles from the paper's discussion:

* an **ISP monitor** in the client's access network, attributing
  traffic to services (the Trevisan/Feldmann style of analysis).  With
  the published ingress dataset it can *detect* relay traffic — the
  ingress relays "appear as a highly active destination" — but service
  attribution for those flows is impossible, because every relayed flow
  terminates at an ingress relay regardless of the real destination;

* a **server-side IDS/DDoS protection** observing requests whose
  source addresses rotate per connection (the Imperva issue report the
  paper cites).  Naively it flags anomalous address churn; "consulting
  the published egress list to identify matching addresses" — the
  paper's suggested mitigation — recognises the churn as relay egress
  rotation and suppresses the false positives.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.netmodel.addr import IPAddress
from repro.relay.egress_list import EgressList


@dataclass(frozen=True, slots=True)
class PassiveFlow:
    """One flow as an access-network monitor records it."""

    timestamp: float
    src: IPAddress
    dst: IPAddress
    bytes_transferred: int
    #: Ground-truth service label (for evaluating the monitor — the
    #: monitor itself never reads it).
    true_service: str = ""


@dataclass
class IspReport:
    """What the ISP monitor could and could not attribute."""

    total_flows: int = 0
    relay_flows: int = 0
    attributed: dict[str, int] = field(default_factory=dict)
    unattributable_bytes: int = 0
    top_destinations: list[tuple[IPAddress, int]] = field(default_factory=list)

    @property
    def relay_share(self) -> float:
        """Fraction of flows hidden behind the relay."""
        if not self.total_flows:
            return 0.0
        return self.relay_flows / self.total_flows


class IspMonitor:
    """Access-network flow attribution with an ingress dataset."""

    def __init__(
        self,
        ingress_addresses: set[IPAddress],
        service_map: dict[IPAddress, str] | None = None,
    ) -> None:
        self.ingress_addresses = set(ingress_addresses)
        #: Destination address → service name, the monitor's usual tool.
        self.service_map = dict(service_map or {})

    def analyze(self, flows: list[PassiveFlow]) -> IspReport:
        """Classify flows; relay flows stay service-unattributable."""
        report = IspReport(total_flows=len(flows))
        destination_bytes: dict[IPAddress, int] = {}
        for flow in flows:
            destination_bytes[flow.dst] = (
                destination_bytes.get(flow.dst, 0) + flow.bytes_transferred
            )
            if flow.dst in self.ingress_addresses:
                report.relay_flows += 1
                report.unattributable_bytes += flow.bytes_transferred
                continue
            service = self.service_map.get(flow.dst, "unknown")
            report.attributed[service] = report.attributed.get(service, 0) + 1
        report.top_destinations = sorted(
            destination_bytes.items(), key=lambda kv: -kv[1]
        )[:10]
        return report

    def attribution_error(self, flows: list[PassiveFlow]) -> float:
        """Fraction of flows whose true service the monitor cannot name."""
        if not flows:
            return 0.0
        missed = 0
        for flow in flows:
            if flow.dst in self.ingress_addresses:
                missed += 1
            elif self.service_map.get(flow.dst, "") != flow.true_service:
                missed += 1
        return missed / len(flows)


@dataclass(frozen=True, slots=True)
class IdsAlert:
    """One anomaly the server-side IDS raised."""

    window_start: float
    new_addresses: int
    reason: str


@dataclass
class IdsReport:
    """Server-side anomaly detection outcome."""

    alerts: list[IdsAlert] = field(default_factory=list)
    windows_evaluated: int = 0
    relay_addresses_recognised: int = 0

    @property
    def alert_rate(self) -> float:
        if not self.windows_evaluated:
            return 0.0
        return len(self.alerts) / self.windows_evaluated


class ServerSideIds:
    """Address-churn anomaly detection, with the paper's mitigation.

    ``churn_threshold`` is the number of never-seen source addresses per
    window that triggers an alert.  With ``egress_list`` set, addresses
    inside published egress subnets are recognised as relay egress and
    excluded from the churn count.
    """

    def __init__(
        self,
        window_seconds: float = 300.0,
        churn_threshold: int = 5,
        egress_list: EgressList | None = None,
    ) -> None:
        if window_seconds <= 0:
            raise ValueError("window must be positive")
        self.window_seconds = window_seconds
        self.churn_threshold = churn_threshold
        self.egress_list = egress_list

    def analyze(self, requests: list[tuple[float, IPAddress]]) -> IdsReport:
        """Evaluate request (timestamp, source) pairs window by window."""
        report = IdsReport()
        if not requests:
            return report
        seen: set[IPAddress] = set()
        ordered = sorted(requests, key=lambda r: r[0])
        window_start = ordered[0][0]
        new_in_window = 0

        def close_window(start: float) -> None:
            report.windows_evaluated += 1
            if new_in_window >= self.churn_threshold:
                report.alerts.append(
                    IdsAlert(
                        window_start=start,
                        new_addresses=new_in_window,
                        reason="anomalous source-address churn",
                    )
                )

        for timestamp, source in ordered:
            while timestamp >= window_start + self.window_seconds:
                close_window(window_start)
                window_start += self.window_seconds
                new_in_window = 0
            if (
                self.egress_list is not None
                and self.egress_list.contains_address(source)
            ):
                report.relay_addresses_recognised += 1
                continue
            if source not in seen:
                seen.add(source)
                new_in_window += 1
        close_window(window_start)
        return report
