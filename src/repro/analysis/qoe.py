"""Extension: QoE impact of the two-hop relay path (paper §6, item iii).

The paper closes with open questions, one of them: "How does the
service impact the user's QoE?  Apple claims the impact is low, and
caching would also lead to faster page load times."  This module makes
that measurable over the simulated topology:

* the **direct** path latency: client's vantage router → target;
* the **relayed** path latency: vantage → ingress relay's last hop →
  (operator backbone) → egress relay's last hop → target;
* the **backbone discount**: egress CDNs run optimised backbones
  (Cloudflare's Argo is cited in the paper), modelled as a latency
  factor < 1 on the inter-relay segment.

``compare_paths`` returns both RTTs plus the relative overhead, so the
"two hops are (nearly) free thanks to optimised backbones" hypothesis
can be tested quantitatively — benchmarked in the ablations.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import TopologyError
from repro.netmodel.addr import IPAddress
from repro.netmodel.topology import Topology


@dataclass(frozen=True, slots=True)
class PathComparison:
    """Direct vs relayed round-trip latency for one target."""

    direct_rtt_ms: float
    relayed_rtt_ms: float

    @property
    def overhead_ms(self) -> float:
        """Absolute RTT added by the relay path."""
        return self.relayed_rtt_ms - self.direct_rtt_ms

    @property
    def overhead_ratio(self) -> float:
        """Relative RTT inflation (0.0 = free relaying)."""
        if self.direct_rtt_ms <= 0:
            return 0.0
        return self.overhead_ms / self.direct_rtt_ms


def one_way_latency_ms(
    topology: Topology, src_router_id: str, destination: IPAddress
) -> float:
    """One-way latency from a router to a host over the topology."""
    path = topology.path_to_host(src_router_id, destination)
    return topology.path_latency_ms(path)


def compare_paths(
    topology: Topology,
    vantage_router_id: str,
    ingress_address: IPAddress,
    egress_address: IPAddress,
    target_address: IPAddress,
    backbone_factor: float = 0.6,
) -> PathComparison:
    """Compare direct and relayed RTTs for one target.

    ``backbone_factor`` scales the ingress→egress segment: CDN-operated
    backbones (Argo-style) forward faster than the public path between
    the same points.  1.0 disables the optimisation (ablation).
    """
    if not 0.0 < backbone_factor <= 1.0:
        raise TopologyError(f"backbone factor {backbone_factor} out of (0, 1]")
    direct = one_way_latency_ms(topology, vantage_router_id, target_address)
    to_ingress = one_way_latency_ms(topology, vantage_router_id, ingress_address)
    ingress_router = topology.host_router(ingress_address)
    ingress_to_egress = topology.path_latency_ms(
        topology.path_to_host(ingress_router.router_id, egress_address)
    )
    egress_router = topology.host_router(egress_address)
    egress_to_target = topology.path_latency_ms(
        topology.path_to_host(egress_router.router_id, target_address)
    )
    relayed = (
        to_ingress + backbone_factor * ingress_to_egress + egress_to_target
    )
    return PathComparison(
        direct_rtt_ms=round(2 * direct, 3),
        relayed_rtt_ms=round(2 * relayed, 3),
    )
