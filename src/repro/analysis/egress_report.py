"""Tables 3/4, Figures 2/4/5, and the egress-deployment facts.

All analyses consume only public inputs: the published egress list, the
BGP routing table, the gazetteer (for coordinates), and optionally the
commercial geolocation database (for the MaxMind-adoption finding).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.tables import TextTable
from repro.netmodel.asn import operator_name
from repro.netmodel.bgp import RoutingTable
from repro.netmodel.geo import Gazetteer
from repro.netmodel.geodb import GeoDatabase
from repro.relay.egress_list import EgressList


# ----------------------------------------------------------------------
# Table 3
# ----------------------------------------------------------------------


@dataclass(frozen=True, slots=True)
class Table3Row:
    """One operator's egress footprint."""

    asn: int
    v4_subnets: int
    v4_bgp_prefixes: int
    v4_addresses: int
    v6_subnets: int
    v6_bgp_prefixes: int
    v6_countries: int

    @property
    def operator(self) -> str:
        return operator_name(self.asn)


@dataclass
class Table3Report:
    """Egress subnets per operating AS."""

    rows: list[Table3Row] = field(default_factory=list)

    def row(self, asn: int) -> Table3Row:
        """The row of one operator AS."""
        for row in self.rows:
            if row.asn == asn:
                return row
        raise KeyError(f"no Table 3 row for AS{asn}")

    def total_subnets(self) -> int:
        """All egress subnets, both versions (the ~238 k)."""
        return sum(r.v4_subnets + r.v6_subnets for r in self.rows)

    def render(self) -> str:
        """The table in the paper's layout."""
        table = TextTable(
            ["AS", "v4 Subnets", "v4 BGP Pfxs", "v4 IP Addr.",
             "v6 Subnets", "v6 BGP Pfxs", "CCs"],
            title="Table 3: egress subnets per operating AS",
        )
        for row in self.rows:
            table.add_row(
                row.operator, row.v4_subnets, row.v4_bgp_prefixes,
                row.v4_addresses, row.v6_subnets, row.v6_bgp_prefixes,
                row.v6_countries,
            )
        return table.render()


def build_table3(egress_list: EgressList, routing: RoutingTable) -> Table3Report:
    """Aggregate the egress list by operator AS via BGP attribution."""
    per_asn: dict[int, dict[str, object]] = {}
    for entry in egress_list:
        address = entry.prefix.network_address
        asn = routing.origin_of(address)
        if asn is None:
            continue
        agg = per_asn.setdefault(
            asn,
            {
                "v4_subnets": 0, "v4_addresses": 0, "v4_prefixes": set(),
                "v6_subnets": 0, "v6_prefixes": set(), "v6_ccs": set(),
            },
        )
        bgp_prefix = routing.routed_prefix_of(address)
        if entry.prefix.version == 4:
            agg["v4_subnets"] += 1
            agg["v4_addresses"] += entry.prefix.num_addresses()
            agg["v4_prefixes"].add(bgp_prefix)
        else:
            agg["v6_subnets"] += 1
            agg["v6_prefixes"].add(bgp_prefix)
            agg["v6_ccs"].add(entry.country_code)
    report = Table3Report()
    for asn in sorted(per_asn):
        agg = per_asn[asn]
        report.rows.append(
            Table3Row(
                asn=asn,
                v4_subnets=agg["v4_subnets"],
                v4_bgp_prefixes=len(agg["v4_prefixes"]),
                v4_addresses=agg["v4_addresses"],
                v6_subnets=agg["v6_subnets"],
                v6_bgp_prefixes=len(agg["v6_prefixes"]),
                v6_countries=len(agg["v6_ccs"]),
            )
        )
    return report


# ----------------------------------------------------------------------
# Table 4
# ----------------------------------------------------------------------


@dataclass(frozen=True, slots=True)
class Table4Row:
    """Distinct covered cities for one operator."""

    asn: int
    cities_all: int
    cities_v4: int
    cities_v6: int

    @property
    def operator(self) -> str:
        return operator_name(self.asn)


@dataclass
class Table4Report:
    """Covered cities per operator (Appendix A)."""

    rows: list[Table4Row] = field(default_factory=list)

    def row(self, asn: int) -> Table4Row:
        """The row of one operator AS."""
        for row in self.rows:
            if row.asn == asn:
                return row
        raise KeyError(f"no Table 4 row for AS{asn}")

    def render(self) -> str:
        """The table in the paper's layout."""
        table = TextTable(
            ["AS", "Covered Cities", "Cities IPv4", "Cities IPv6"],
            title="Table 4: cities covered by egress subnets",
        )
        for row in self.rows:
            table.add_row(row.operator, row.cities_all, row.cities_v4, row.cities_v6)
        return table.render()


def build_table4(egress_list: EgressList, routing: RoutingTable) -> Table4Report:
    """Count distinct (country, city) pairs per operator and IP version."""
    per_asn: dict[int, dict[int, set]] = {}
    for entry in egress_list:
        if not entry.has_city:
            continue
        asn = routing.origin_of(entry.prefix.network_address)
        if asn is None:
            continue
        per_version = per_asn.setdefault(asn, {4: set(), 6: set()})
        per_version[entry.prefix.version].add((entry.country_code, entry.city))
    report = Table4Report()
    for asn in sorted(per_asn):
        v4 = per_asn[asn][4]
        v6 = per_asn[asn][6]
        report.rows.append(
            Table4Row(asn, len(v4 | v6), len(v4), len(v6))
        )
    return report


# ----------------------------------------------------------------------
# Figures 2 and 5: geolocation scatter series
# ----------------------------------------------------------------------


def build_geo_scatter(
    egress_list: EgressList,
    routing: RoutingTable,
    gazetteer: Gazetteer,
    version: int | None = None,
) -> dict[int, list[tuple[float, float]]]:
    """Per operator AS: (lat, lon) of every located subnet.

    This is the data series behind the Figure 2/5 maps.
    """
    out: dict[int, list[tuple[float, float]]] = {}
    for entry in egress_list.entries(version):
        if not entry.has_city:
            continue
        asn = routing.origin_of(entry.prefix.network_address)
        if asn is None:
            continue
        city = gazetteer.city(entry.country_code, entry.city)
        if city is None:
            continue
        out.setdefault(asn, []).append((city.location.lat, city.location.lon))
    return out


# ----------------------------------------------------------------------
# Figure 4: CDFs of subnets over cities / countries
# ----------------------------------------------------------------------


@dataclass
class LocationCdf:
    """One CDF series: x = location rank, y = cumulative subnet share."""

    asn: int
    version: int
    granularity: str  # "city" | "country"
    counts: list[int] = field(default_factory=list)  # descending

    def series(self) -> list[tuple[int, float]]:
        """(rank, cumulative fraction) points."""
        total = sum(self.counts)
        if not total:
            return []
        points = []
        acc = 0
        for rank, count in enumerate(self.counts, start=1):
            acc += count
            points.append((rank, acc / total))
        return points

    def location_count(self) -> int:
        """Number of distinct locations (the x-axis extent)."""
        return len(self.counts)


def build_location_cdfs(
    egress_list: EgressList, routing: RoutingTable
) -> list[LocationCdf]:
    """CDFs per (operator, version, granularity) — Figure 4's 4 panels."""
    counters: dict[tuple[int, int, str], dict] = {}
    for entry in egress_list:
        asn = routing.origin_of(entry.prefix.network_address)
        if asn is None:
            continue
        version = entry.prefix.version
        cc_key = (asn, version, "country")
        counters.setdefault(cc_key, {}).setdefault(entry.country_code, 0)
        counters[cc_key][entry.country_code] += 1
        if entry.has_city:
            city_key = (asn, version, "city")
            label = (entry.country_code, entry.city)
            counters.setdefault(city_key, {}).setdefault(label, 0)
            counters[city_key][label] += 1
    out = []
    for (asn, version, granularity), counts in sorted(
        counters.items(), key=lambda kv: (kv[0][0], kv[0][1], kv[0][2])
    ):
        out.append(
            LocationCdf(
                asn=asn,
                version=version,
                granularity=granularity,
                counts=sorted(counts.values(), reverse=True),
            )
        )
    return out


# ----------------------------------------------------------------------
# Deployment facts (Section 4.2 prose)
# ----------------------------------------------------------------------


@dataclass
class EgressFacts:
    """The quotable Section 4.2 findings."""

    total_subnets: int
    us_share: float
    second_cc: str
    second_cc_share: float
    ccs_below_50: int
    cc_coverage: dict[int, int]
    uniquely_covered: dict[int, int]
    akamai_pr_extra_over_eg: int
    missing_city_fraction: float
    growth_since_jan: float
    geodb_adoption: float | None = None

    def render(self) -> str:
        """The quotable findings as prose lines."""
        lines = [
            f"egress subnets: {self.total_subnets}",
            f"US share: {self.us_share:.1%}; #2 is {self.second_cc} at {self.second_cc_share:.1%}",
            f"CCs with <50 subnets: {self.ccs_below_50}",
            f"CC coverage: "
            + ", ".join(
                f"{operator_name(asn)}={n}" for asn, n in sorted(self.cc_coverage.items())
            ),
            f"uniquely covered CCs: "
            + ", ".join(
                f"{operator_name(asn)}={n}"
                for asn, n in sorted(self.uniquely_covered.items())
                if n
            ),
            f"Akamai_PR covers Akamai_EG's CCs plus {self.akamai_pr_extra_over_eg} more",
            f"blank city entries: {self.missing_city_fraction:.1%}",
            f"growth since January: {self.growth_since_jan:+.1%}",
        ]
        if self.geodb_adoption is not None:
            lines.append(f"geo-DB adopted published mapping: {self.geodb_adoption:.1%}")
        return "\n".join(lines)


def build_egress_facts(
    egress_list: EgressList,
    routing: RoutingTable,
    jan_list: EgressList | None = None,
    geodb: GeoDatabase | None = None,
) -> EgressFacts:
    """Compute the Section 4.2 prose facts from public inputs."""
    from repro.netmodel.asn import WellKnownAS

    subnet_counts = egress_list.subnets_per_country()
    total = sum(subnet_counts.values())
    ranked = sorted(subnet_counts.items(), key=lambda kv: -kv[1])
    us_share = subnet_counts.get("US", 0) / total if total else 0.0
    second_cc, second_count = ("", 0)
    for code, count in ranked:
        if code != "US":
            second_cc, second_count = code, count
            break
    cc_sets: dict[int, set[str]] = {}
    for entry in egress_list:
        asn = routing.origin_of(entry.prefix.network_address)
        if asn is None:
            continue
        cc_sets.setdefault(asn, set()).add(entry.country_code)
    uniquely: dict[int, int] = {}
    for asn, codes in cc_sets.items():
        others = set().union(
            *(s for other, s in cc_sets.items() if other != asn)
        ) if len(cc_sets) > 1 else set()
        uniquely[asn] = len(codes - others)
    akamai_pr = cc_sets.get(int(WellKnownAS.AKAMAI_PR), set())
    akamai_eg = cc_sets.get(int(WellKnownAS.AKAMAI_EG), set())
    growth = 0.0
    if jan_list is not None and len(jan_list):
        growth = len(egress_list) / len(jan_list) - 1.0
    geodb_adoption = None
    if geodb is not None:
        geodb_adoption = _geodb_agreement(egress_list, geodb)
    return EgressFacts(
        total_subnets=total,
        us_share=us_share,
        second_cc=second_cc,
        second_cc_share=second_count / total if total else 0.0,
        ccs_below_50=sum(1 for _c, n in subnet_counts.items() if n < 50),
        cc_coverage={asn: len(codes) for asn, codes in cc_sets.items()},
        uniquely_covered=uniquely,
        akamai_pr_extra_over_eg=len(akamai_pr - akamai_eg),
        missing_city_fraction=egress_list.missing_city_fraction(),
        growth_since_jan=growth,
        geodb_adoption=geodb_adoption,
    )


def _geodb_agreement(egress_list: EgressList, geodb: GeoDatabase) -> float:
    """Fraction of geo-DB-covered egress subnets whose DB country matches
    the published mapping — the MaxMind-adoption check."""
    agree = 0
    covered = 0
    for prefix, record in geodb.records():
        entry = egress_list.lookup(prefix)
        if entry is None:
            continue
        covered += 1
        if record.country == entry.country_code:
            agree += 1
    return agree / covered if covered else 0.0
