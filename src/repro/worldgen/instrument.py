"""Wiring the registry into the simulated world's existing counters.

The DNS/cache/BGP layers already account for themselves through
:class:`~repro.perfstats.CacheStats` and
:class:`~repro.dns.server.ServerStats` — both thin adapters over
telemetry :class:`~repro.telemetry.registry.Counter` objects.  This
module *adopts* those live counters into a registry (zero extra
hot-path cost: the counters are bumped regardless, adoption only makes
snapshots see them) and registers collectors for values derived from
live structures (rotation advances, world sizes).

Everything here is adoption/collection, not ownership: the adopted
counters cross the shard-worker boundary through their own merge paths
(``ServerStats.merge`` / ``CacheStats.merge``), which is why
:meth:`~repro.telemetry.registry.MetricsRegistry.owned_snapshot`
excludes them — see the registry module docstring.
"""

from __future__ import annotations

__all__ = ["instrument_server", "instrument_world"]

_CACHE_FIELDS = ("hits", "misses", "invalidations")


def _adopt_cache(registry, stats, **labels) -> None:
    for field in _CACHE_FIELDS:
        registry.adopt("cache." + field, stats.counter(field), **labels)


def instrument_server(registry, server) -> None:
    """Adopt one authoritative server's query and cache counters.

    Exposes ``dns.server.*{server=<name>}`` for the six
    :class:`~repro.dns.server.ServerStats` fields, plus
    ``cache.*{cache=answer_plan|zone_for, server=<name>}`` for the
    scope-block answer cache and the zone-routing memo.
    """
    name = server.name
    for field in server.stats._FIELDS:
        registry.adopt(
            "dns.server." + field, server.stats.counter(field), server=name
        )
    _adopt_cache(registry, server.answer_cache.stats, cache="answer_plan", server=name)
    _adopt_cache(registry, server.zone_for_stats, cache="zone_for", server=name)


def instrument_world(telemetry, world) -> None:
    """Adopt a built world's counters and register its gauge collectors.

    Called by :func:`~repro.worldgen.world.build_world` after assembly
    (and usable on any existing world).  Covers the authoritative
    servers, the delegation memo, the name-intern table, the BGP origin
    memo, relay rotation-stream advances, and world-size gauges.
    """
    registry = telemetry.registry
    if not registry.enabled:
        return
    from repro.dns.name import intern_stats

    instrument_server(registry, world.route53)
    instrument_server(registry, world.control_server)
    _adopt_cache(registry, world.ns_registry.delegation_stats, cache="delegation")
    _adopt_cache(registry, intern_stats, cache="name_intern")
    _adopt_cache(registry, world.routing.origin_stats, cache="origin_memo")

    service = world.service
    counters = service._pod_counters

    def collect(reg) -> None:
        reg.gauge("relay.rotation_advances").set(
            sum(value - counters.base for value in counters.values())
        )
        now = world.clock.now
        reg.gauge("world.sim_time_seconds").set(now)
        reg.gauge("relay.ingress_active", version="4").set(
            len(world.ingress_v4.active(now))
        )
        reg.gauge("relay.ingress_active", version="6").set(
            len(world.ingress_v6.active(now))
        )

    registry.add_collector(collect)
    registry.gauge("world.client_ases").set(len(world.registry))
    registry.gauge("world.assignment_units").set(len(world.assignment))
    registry.gauge("world.atlas_probes").set(len(world.atlas.probes))
    registry.gauge("relay.egress_pools").set(len(world.egress_fleet.pools))
    registry.gauge("relay.ingress_relays", version="4").set(
        len(world.ingress_v4.relays)
    )
    registry.gauge("relay.ingress_relays", version="6").set(
        len(world.ingress_v6.relays)
    )
