"""Synthetic-world generation.

Builds a seeded, self-consistent simulated Internet — client ASes with
prefixes and user populations, the relay deployment with its monthly
evolution, the published egress list, the Atlas probe population, DNS
infrastructure, and a router topology — calibrated so that running the
paper's measurement pipeline over it reproduces the shapes of every
table and figure.

Ground truth lives here; the scanners and analyses never read it
directly — they measure, exactly as the paper did.
"""

from repro.worldgen.config import WorldConfig
from repro.worldgen.world import World, build_world

__all__ = ["WorldConfig", "World", "build_world"]
