"""Synthetic Internet: address space, client ASes, populations, routing.

Lays out the IPv4 space: well-known operator blocks (Apple, the two
Akamai ASes, Cloudflare, Fastly), public-resolver anycast blocks, a
vantage network, and a densely packed client space of ~73 k ASes whose
/24 counts, ingress-operator split, and user populations reproduce the
Table 2 ground truth.

Every client AS falls in one of three categories — served exclusively
by Apple's ingress relays, exclusively by Akamai-PR's, or split between
both — and contributes *assignment chunks*: (prefix, ECS scope,
operator) triples that :mod:`repro.worldgen.deployment` later binds to
regional pods and installs into the relay service's assignment map.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.errors import WorldGenError
from repro.netmodel.addr import IPAddress, Prefix
from repro.netmodel.asn import ASRegistry, AutonomousSystem, WellKnownAS
from repro.netmodel.bgp import RoutingTable
from repro.netmodel.geo import Gazetteer
from repro.netmodel.population import ASPopulationDataset
from repro.worldgen.config import WorldConfig

# ----------------------------------------------------------------------
# Fixed address plan
# ----------------------------------------------------------------------

#: Operator supernets (reserved from client allocation, announced from
#: the operator's AS by the deployment builder).
OPERATOR_BLOCKS: dict[int, tuple[str, ...]] = {
    WellKnownAS.APPLE: ("17.0.0.0/8",),
    WellKnownAS.AKAMAI_PR: ("172.224.0.0/12",),
    WellKnownAS.AKAMAI_EG: ("23.32.0.0/11",),
    WellKnownAS.CLOUDFLARE: ("104.16.0.0/12", "172.64.0.0/13"),
    WellKnownAS.FASTLY: ("151.101.0.0/16", "146.75.0.0/16"),
}

#: IPv6 operator supernets.
OPERATOR_BLOCKS_V6: dict[int, tuple[str, ...]] = {
    WellKnownAS.APPLE: ("2620:149::/32",),
    WellKnownAS.AKAMAI_PR: ("2a02:26f7::/32",),
    WellKnownAS.AKAMAI_EG: ("2600:1400::/28",),
    WellKnownAS.CLOUDFLARE: ("2606:4700::/32",),
    WellKnownAS.FASTLY: ("2a04:4e40::/32",),
}

#: Public resolver anycast blocks and operator AS numbers.
RESOLVER_BLOCKS: dict[str, tuple[str, int]] = {
    "Google": ("8.8.0.0/16", 15169),
    "Cloudflare": ("1.1.0.0/16", WellKnownAS.CLOUDFLARE),
    "Quad9": ("9.9.0.0/16", 19281),
    "OpenDNS": ("208.67.0.0/16", 36692),
}

#: The measurement vantage network (the paper's university network).
VANTAGE_BLOCK = "131.159.0.0/16"
VANTAGE_ASN = 64496
VANTAGE_AS_NAME = "Vantage-University"

#: The authoritative DNS service block (Route 53-like).
DNS_SERVICE_BLOCK = "205.251.192.0/21"
DNS_SERVICE_ASN = 16509

#: The hijack target block (nextdns.io-style filtering service).
HIJACK_BLOCK = "45.90.28.0/22"
HIJACK_ASN = 34939

#: IETF/IANA special-use space, never allocated to clients.
SPECIAL_USE_BLOCKS: tuple[str, ...] = (
    "0.0.0.0/8",
    "10.0.0.0/8",
    "100.64.0.0/10",
    "127.0.0.0/8",
    "169.254.0.0/16",
    "172.16.0.0/12",
    "192.0.0.0/24",
    "192.88.99.0/24",
    "192.168.0.0/16",
    "198.18.0.0/15",
    "224.0.0.0/3",
)


def reserved_prefixes() -> list[Prefix]:
    """All IPv4 prefixes excluded from client allocation."""
    texts: list[str] = list(SPECIAL_USE_BLOCKS)
    for blocks in OPERATOR_BLOCKS.values():
        texts.extend(blocks)
    for block, _asn in RESOLVER_BLOCKS.values():
        texts.append(block)
    texts.extend((VANTAGE_BLOCK, DNS_SERVICE_BLOCK, HIJACK_BLOCK))
    return [Prefix.parse(t) for t in texts]


class SpaceAllocator:
    """Bump allocator of aligned IPv4 prefixes around reserved ranges.

    Callers allocate in descending-size order, which keeps the cursor
    aligned inside each free span and bounds fragmentation to the span
    boundaries.
    """

    def __init__(self, reserved: list[Prefix], start: str = "1.0.0.0") -> None:
        self._reserved = sorted(
            (p.value, p.broadcast_value) for p in reserved
        )
        self._cursor = IPAddress.parse(start).value
        self.wasted = 0

    def allocate(self, length: int) -> Prefix:
        """Allocate the next free, aligned prefix of ``length``."""
        size = 1 << (32 - length)
        while True:
            aligned = (self._cursor + size - 1) & ~(size - 1)
            end = aligned + size - 1
            if end >= 1 << 32:
                raise WorldGenError("IPv4 space exhausted during allocation")
            conflict = self._find_conflict(aligned, end)
            if conflict is None:
                self.wasted += aligned - self._cursor
                self._cursor = end + 1
                return Prefix(4, aligned, length)
            self._cursor = conflict + 1

    def _find_conflict(self, start: int, end: int) -> int | None:
        """The end of a reserved range overlapping [start, end], or None."""
        # Reserved list is small (~25 entries); linear scan is fine.
        for r_start, r_end in self._reserved:
            if r_start <= end and start <= r_end:
                return r_end
        return None


# ----------------------------------------------------------------------
# Ground-truth records
# ----------------------------------------------------------------------


@dataclass(frozen=True, slots=True)
class AssignmentChunk:
    """One client block and the ingress operator serving it."""

    prefix: Prefix
    scope_len: int
    operator_asn: int
    country: str


@dataclass
class ClientAS:
    """Ground truth for one client AS."""

    asys: AutonomousSystem
    category: str  # "apple" | "akamai" | "both"
    slash24_count: int
    country: str
    population: int


@dataclass
class InternetGround:
    """Everything the rest of worldgen needs about the base Internet."""

    config: WorldConfig
    registry: ASRegistry
    routing: RoutingTable
    population: ASPopulationDataset
    gazetteer: Gazetteer
    client_ases: list[ClientAS]
    chunks: list[AssignmentChunk]
    resolver_sites: dict[tuple[str, str], IPAddress]
    vantage_prefix: Prefix = field(default_factory=lambda: Prefix.parse(VANTAGE_BLOCK))

    def client_slash24_total(self) -> int:
        """Total ground-truth client /24 count."""
        return sum(c.slash24_count for c in self.client_ases)


# ----------------------------------------------------------------------
# Distribution helpers
# ----------------------------------------------------------------------


def _power_law_counts(total: int, n: int, alpha: float, minimum: int) -> list[int]:
    """Split ``total`` into ``n`` positive integers with a power-law shape."""
    if n <= 0:
        raise WorldGenError(f"cannot distribute over {n} recipients")
    weights = [(i + 1) ** -alpha for i in range(n)]
    weight_sum = sum(weights)
    counts = [max(minimum, int(total * w / weight_sum)) for w in weights]
    # Largest-remainder correction towards the exact total.
    drift = total - sum(counts)
    i = 0
    while drift != 0 and n > 0:
        idx = i % n
        if drift > 0:
            counts[idx] += 1
            drift -= 1
        elif counts[idx] > minimum:
            counts[idx] -= 1
            drift += 1
        i += 1
        if i > 10 * n and drift < 0:
            break  # cannot shrink below minimums; accept slight overshoot
    return counts


def _round_to_power_of_two(counts: list[int], minimum: int) -> list[int]:
    """Round each count to a power of two, steering total drift to ~0."""
    out = []
    drift = 0
    for count in counts:
        count = max(count, minimum)
        floor_pow = 1 << (count.bit_length() - 1)
        ceil_pow = floor_pow if floor_pow == count else floor_pow << 1
        if drift > 0:
            choice = floor_pow
        elif drift < 0:
            choice = ceil_pow
        else:
            choice = floor_pow if (count - floor_pow) <= (ceil_pow - count) else ceil_pow
        choice = max(choice, minimum)
        drift += choice - count
        out.append(choice)
    return out


def _country_weights(gazetteer: Gazetteer) -> list[float]:
    """Client-AS country weights: big codes first, long tail after."""
    return [1.0 / (rank + 3.0) for rank in range(len(gazetteer.country_codes))]


# ----------------------------------------------------------------------
# Builder
# ----------------------------------------------------------------------


def build_internet(config: WorldConfig) -> InternetGround:
    """Build the base Internet for a configuration."""
    rng = random.Random(config.seed)
    gazetteer = Gazetteer(
        config.seed ^ 0x9E0,
        num_countries=config.country_count,
        cities_per_country=(2, config.s(9000, 60)),
    )
    registry = ASRegistry()
    routing = RoutingTable()
    population = ASPopulationDataset()

    _register_operators(registry)
    _announce_infrastructure(routing, registry)
    resolver_sites = _build_resolver_sites(routing, registry)

    allocator = SpaceAllocator(reserved_prefixes())
    client_ases, chunks = _build_client_space(
        config, rng, gazetteer, registry, routing, population, allocator
    )
    _add_resolver_site_chunks(chunks, resolver_sites)
    # The vantage network is a relay client too: it is served like any
    # other subnet in its country (needed for scans through the relay).
    chunks.append(
        AssignmentChunk(
            Prefix.parse(VANTAGE_BLOCK), 16, int(WellKnownAS.AKAMAI_PR), "DE"
        )
    )
    return InternetGround(
        config=config,
        registry=registry,
        routing=routing,
        population=population,
        gazetteer=gazetteer,
        client_ases=client_ases,
        chunks=chunks,
        resolver_sites=resolver_sites,
    )


def _register_operators(registry: ASRegistry) -> None:
    registry.register(AutonomousSystem(WellKnownAS.APPLE, "Apple Inc.", "US"))
    registry.register(
        AutonomousSystem(WellKnownAS.AKAMAI_PR, "Akamai Private Relay", "US")
    )
    registry.register(AutonomousSystem(WellKnownAS.AKAMAI_EG, "Akamai Intl.", "US"))
    registry.register(AutonomousSystem(WellKnownAS.CLOUDFLARE, "Cloudflare", "US"))
    registry.register(AutonomousSystem(WellKnownAS.FASTLY, "Fastly", "US"))
    registry.register(AutonomousSystem(VANTAGE_ASN, VANTAGE_AS_NAME, "DE"))
    registry.register(AutonomousSystem(DNS_SERVICE_ASN, "DNS-Cloud", "US"))
    registry.register(AutonomousSystem(HIJACK_ASN, "NextFilter", "US"))


def _announce_infrastructure(routing: RoutingTable, registry: ASRegistry) -> None:
    for prefix_text, asn in (
        (VANTAGE_BLOCK, VANTAGE_ASN),
        (DNS_SERVICE_BLOCK, DNS_SERVICE_ASN),
        (HIJACK_BLOCK, HIJACK_ASN),
    ):
        prefix = Prefix.parse(prefix_text)
        routing.announce(prefix, asn)
        registry.get(asn).add_prefix(prefix)


def _build_resolver_sites(
    routing: RoutingTable, registry: ASRegistry
) -> dict[tuple[str, str], IPAddress]:
    """One anycast site per (provider, region), each in its own /24."""
    from repro.netmodel.geo import REGIONS

    sites: dict[tuple[str, str], IPAddress] = {}
    for provider, (block_text, asn) in RESOLVER_BLOCKS.items():
        block = Prefix.parse(block_text)
        asys = registry.ensure(asn, f"{provider} Resolver", "US")
        routing.announce(block, asn)
        asys.add_prefix(block)
        for index, region in enumerate(REGIONS):
            site_prefix = Prefix(4, block.value + (index << 8), 24)
            sites[(provider, region)] = site_prefix.address_at(1)
    return sites


_CLIENT_ASN_BASE = 100_000


def _build_client_space(
    config: WorldConfig,
    rng: random.Random,
    gazetteer: Gazetteer,
    registry: ASRegistry,
    routing: RoutingTable,
    population: ASPopulationDataset,
    allocator: SpaceAllocator,
) -> tuple[list[ClientAS], list[AssignmentChunk]]:
    categories = (
        # (name, AS count, /24 total, population, minimum /24s per AS)
        ("both", config.s(config.both_as_count, 4), config.s(config.both_slash24s, 32), config.s(config.both_population), 8),
        ("akamai", config.s(config.akamai_only_as_count, 4), config.s(config.akamai_only_slash24s, 16), config.s(config.akamai_only_population), 1),
        ("apple", config.s(config.apple_only_as_count, 4), config.s(config.apple_only_slash24s, 8), config.s(config.apple_only_population), 1),
    )
    countries = gazetteer.country_codes
    weights = _country_weights(gazetteer)
    plans: list[tuple[str, int, int, str]] = []  # (category, count, pop, country)
    for name, as_count, slash24_total, pop_total, minimum in categories:
        counts = _round_to_power_of_two(
            _power_law_counts(slash24_total, as_count, 0.3, minimum), minimum
        )
        pops = _power_law_counts(pop_total, as_count, 0.6, 10)
        as_countries = rng.choices(countries, weights=weights, k=as_count)
        plans.extend(
            (name, counts[i], pops[i], as_countries[i]) for i in range(as_count)
        )
    # Allocate big-first across all categories for tight packing.
    order = sorted(range(len(plans)), key=lambda i: -plans[i][1])
    prefixes: list[Prefix | None] = [None] * len(plans)
    for i in order:
        count = plans[i][1]
        length = 24 - (count.bit_length() - 1)
        prefixes[i] = allocator.allocate(length)

    client_ases: list[ClientAS] = []
    chunks: list[AssignmentChunk] = []
    next_asn = _CLIENT_ASN_BASE
    for i, (category, count, pop, country) in enumerate(plans):
        prefix = prefixes[i]
        assert prefix is not None
        asys = AutonomousSystem(next_asn, f"Client-{category}-{next_asn}", country)
        next_asn += 1
        registry.register(asys)
        asys.add_prefix(prefix)
        routing.announce(prefix, asys.number)
        population.set_population(asys.number, pop)
        client_ases.append(ClientAS(asys, category, count, country, pop))
        chunks.extend(_chunks_for_as(config, rng, prefix, category, country))
    return client_ases, chunks


def _chunks_for_as(
    config: WorldConfig,
    rng: random.Random,
    prefix: Prefix,
    category: str,
    country: str,
) -> list[AssignmentChunk]:
    apple = int(WellKnownAS.APPLE)
    akamai = int(WellKnownAS.AKAMAI_PR)
    if category in ("apple", "akamai"):
        operator = apple if category == "apple" else akamai
        if (
            prefix.length <= 23
            and rng.random() < config.unit_split_probability
        ):
            # Split into two half-sized units: exercises ECS scopes more
            # specific than the covering BGP prefix.
            return [
                AssignmentChunk(sub, sub.length, operator, country)
                for sub in prefix.subnets(prefix.length + 1)
            ]
        return [AssignmentChunk(prefix, prefix.length, operator, country)]
    # "Both" AS: eight units, k of them Apple-served, averaging the
    # configured 76 % Apple subnet share.
    unit_len = min(24, prefix.length + 3)
    units = list(prefix.subnets(unit_len))
    target = config.both_apple_share * len(units)
    k = int(target)
    if rng.random() < (target - k):
        k += 1
    k = max(1, min(len(units) - 1, k))
    rng.shuffle(units)
    return [
        AssignmentChunk(unit, unit.length, apple if idx < k else akamai, country)
        for idx, unit in enumerate(units)
    ]


def _add_resolver_site_chunks(
    chunks: list[AssignmentChunk], sites: dict[tuple[str, str], IPAddress]
) -> None:
    """Map each resolver site's /24 to its region (for non-ECS resolvers)."""
    akamai = int(WellKnownAS.AKAMAI_PR)
    for (provider, region), address in sites.items():
        site_prefix = address.to_prefix(24)
        # Country code is synthetic: the pod binder only uses the region,
        # which it derives from the chunk's country; encode the region by
        # picking any country of that region later — here we tag with a
        # sentinel the deployment layer resolves.
        chunks.append(
            AssignmentChunk(site_prefix, 24, akamai, f"@{region}")
        )
