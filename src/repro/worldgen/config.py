"""World-generation configuration.

Defaults are calibrated to the paper's measured aggregates, so a
scale-1.0 world, when measured by the scanners in :mod:`repro.scan`,
reproduces the published numbers to within sampling noise.  ``scale``
shrinks every population linearly (with sane floors) for fast tests.

All values describe **ground truth to deploy**, not the measurement
results; where the paper's numbers are themselves measurements (e.g.
the 1382 addresses RIPE Atlas saw), the deployed ground truth is chosen
slightly larger so the measured value emerges from probe coverage.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import WorldGenError


def _scaled(value: int, scale: float, minimum: int = 1) -> int:
    """Scale an integer population with a floor."""
    return max(minimum, round(value * scale))


@dataclass(frozen=True)
class MonthlyIngressCounts:
    """Ingress relay counts for one calendar month (Table 1 row)."""

    year: int
    month: int
    quic_apple: int
    quic_akamai: int
    fallback_apple: int
    fallback_akamai: int


@dataclass(frozen=True)
class WorldConfig:
    """Every knob of the synthetic world."""

    seed: int = 2022
    scale: float = 1.0

    # ------------------------------------------------------------------
    # Client space (Table 2 calibration)
    # ------------------------------------------------------------------
    #: ASes whose subnets are exclusively served by one ingress operator,
    #: and ASes split between both (the "Both" row).
    apple_only_as_count: int = 20807
    akamai_only_as_count: int = 34627
    both_as_count: int = 17301
    #: /24 client subnets per category (0.2 M / 1.1 M / 10.6 M).
    apple_only_slash24s: int = 200_000
    akamai_only_slash24s: int = 1_100_000
    both_slash24s: int = 10_600_000
    #: Apple's share of /24 subnets within "Both" ASes (76 %).
    both_apple_share: float = 0.76
    #: User populations per category (105 M / 994 M / 2 373 M).
    apple_only_population: int = 105_000_000
    akamai_only_population: int = 994_000_000
    both_population: int = 2_373_000_000
    #: Probability that a client BGP prefix is split into two assignment
    #: units with distinct ECS scopes (exercises scope handling).
    unit_split_probability: float = 0.12

    # ------------------------------------------------------------------
    # Ingress deployment (Table 1 calibration)
    # ------------------------------------------------------------------
    ingress_months: tuple[MonthlyIngressCounts, ...] = (
        MonthlyIngressCounts(2022, 1, 365, 823, 356, 0),
        MonthlyIngressCounts(2022, 2, 355, 845, 356, 0),
        MonthlyIngressCounts(2022, 3, 347, 945, 334, 25),
        MonthlyIngressCounts(2022, 4, 349, 1237, 336, 1062),
    )
    #: IPv6 QUIC fleet deployed in April (Atlas discovered 346 + 1229;
    #: ground truth is a bit larger so discovery is probe-limited).
    ingress_v6_apple: int = 352
    ingress_v6_akamai: int = 1260
    #: Ingress BGP prefixes ("within 123 routed BGP prefixes"): Apple +
    #: Akamai-PR IPv4, and Akamai-PR IPv6 (for the Section 6 analysis).
    ingress_v4_prefixes_apple: int = 30
    ingress_v4_prefixes_akamai: int = 93
    ingress_v6_prefixes_akamai: int = 108
    ingress_v6_prefixes_apple: int = 24
    #: One relay activates between the April ECS scan and the Atlas run
    #: (the paper's single Atlas-only address).
    late_relay_during_april: bool = True

    # Regional ingress pods: pods per region; probe-poor regions explain
    # the ~200 addresses Atlas misses.
    pods_per_region: dict[str, int] = field(
        default_factory=lambda: {"NA": 8, "EU": 8, "AS": 6, "SA": 3, "AF": 3, "OC": 2}
    )

    # ------------------------------------------------------------------
    # Egress list (Table 3/4 calibration)
    # ------------------------------------------------------------------
    #: IPv4: per-operator (subnet count, total addresses, BGP prefixes).
    egress_v4_akamai_pr: tuple[int, int, int] = (9890, 57589, 301)
    egress_v4_akamai_eg: tuple[int, int, int] = (1602, 5100, 1)
    egress_v4_cloudflare: tuple[int, int, int] = (18218, 18218, 112)
    egress_v4_fastly: tuple[int, int, int] = (8530, 17060, 81)
    #: IPv6: per-operator (subnet count, BGP prefixes); subnets are /64.
    egress_v6_akamai_pr: tuple[int, int] = (142826, 1172)
    egress_v6_akamai_eg: tuple[int, int] = (23495, 1)
    egress_v6_cloudflare: tuple[int, int] = (26988, 2)
    egress_v6_fastly: tuple[int, int] = (8530, 81)
    #: Country coverage per operator (CF 248 incl. 11 unique; Akamai-PR
    #: and Fastly 236; Akamai-EG 24).
    egress_ccs_cloudflare: int = 248
    egress_ccs_akamai_pr: int = 236
    egress_ccs_fastly: int = 236
    egress_ccs_akamai_eg: int = 24
    cloudflare_unique_ccs: int = 11
    #: City coverage targets per operator (Table 4): (v4 cities, v6 cities).
    egress_cities_akamai_pr: tuple[int, int] = (853, 14085)
    egress_cities_akamai_eg: tuple[int, int] = (455, 7507)
    egress_cities_cloudflare: tuple[int, int] = (1134, 5228)
    egress_cities_fastly: tuple[int, int] = (848, 848)
    #: Location-distribution shape: US share of all subnets (58 %), DE
    #: share (3.6 %), and the long tail (123 CCs below 50 subnets).
    us_subnet_share: float = 0.58
    de_subnet_share: float = 0.036
    #: Fraction of entries with a blank city (1.6 %).
    missing_city_fraction: float = 0.016
    #: The May list is 15 % larger than January, with little churn.
    egress_growth_jan_to_may: float = 0.15
    egress_churn_fraction: float = 0.01
    #: MaxMind-style DB adoption of the published mapping (most subnets).
    geodb_adoption_rate: float = 0.95

    # ------------------------------------------------------------------
    # Atlas probe population (Section 4.1 calibration)
    # ------------------------------------------------------------------
    atlas_probe_count: int = 11700
    atlas_as_count: int = 3326
    atlas_country_count: int = 168
    #: Regional probe shares (NA/EU bias as documented for RIPE Atlas).
    atlas_region_shares: dict[str, float] = field(
        default_factory=lambda: {
            "EU": 0.47,
            "NA": 0.27,
            "AS": 0.13,
            "OC": 0.05,
            "SA": 0.04,
            "AF": 0.04,
        }
    )
    #: Share of probes behind each public resolver ("more than half of
    #: all probes" in total).
    atlas_public_resolver_shares: dict[str, float] = field(
        default_factory=lambda: {
            "Google": 0.26,
            "Cloudflare": 0.15,
            "Quad9": 0.07,
            "OpenDNS": 0.05,
        }
    )
    #: Fraction of probes timing out on any DNS measurement (~10 %).
    atlas_timeout_fraction: float = 0.10
    #: Fraction of probes behind resolvers that answer but fail for the
    #: relay domains, and the rcode split among them.
    atlas_block_fraction: float = 0.061
    atlas_block_rcode_shares: dict[str, float] = field(
        default_factory=lambda: {
            "NXDOMAIN": 0.72,
            "NOERROR": 0.13,
            "REFUSED": 0.05,
            "SERVFAIL": 0.07,
            "FORMERR": 0.03,
        }
    )
    #: Exactly one probe sits behind a hijacking (nextdns-style) resolver.
    atlas_hijack_probes: int = 1
    #: Share of probes with working IPv6.
    atlas_ipv6_fraction: float = 0.55

    # ------------------------------------------------------------------
    # Relay scan vantage (Section 4.3)
    # ------------------------------------------------------------------
    vantage_country: str = "DE"
    #: Egress-operator presence weights at the vantage: Fastly absent.
    vantage_presence: dict[str, float] = field(
        default_factory=lambda: {"Cloudflare": 0.55, "Akamai_PR": 0.45}
    )
    #: Default presence weights elsewhere.
    default_presence: dict[str, float] = field(
        default_factory=lambda: {"Cloudflare": 0.45, "Akamai_PR": 0.35, "Fastly": 0.20}
    )
    #: Local egress pool shape at one location.  Per operator the pool is
    #: small; across the two operators present at the vantage, a 48-hour
    #: scan observes the paper's "six addresses from four subnets" order
    #: of magnitude.
    egress_pool_addresses: int = 4
    egress_pool_subnets: int = 3
    #: Probability a new connection reuses the previous egress address
    #: (calibrated so back-to-back requests change address >66 % of the
    #: time).
    egress_stickiness: float = 0.08

    # ------------------------------------------------------------------
    # DNS / scan mechanics
    # ------------------------------------------------------------------
    #: ECS scan rate limit (queries/second); tuned so that a full-scale
    #: scan takes tens of hours of simulated time, as in the paper.
    ecs_scan_rate: float = 2.2
    #: Gazetteer size.
    country_count: int = 250

    # ------------------------------------------------------------------
    # BGP history (Section 6)
    # ------------------------------------------------------------------
    history_start: tuple[int, int] = (2016, 1)
    history_end: tuple[int, int] = (2022, 5)
    akamai_pr_first_seen: tuple[int, int] = (2021, 6)

    def __post_init__(self) -> None:
        if not 0 < self.scale <= 1.0:
            raise WorldGenError(f"scale must be in (0, 1], got {self.scale}")
        if not 0.0 < self.both_apple_share < 1.0:
            raise WorldGenError("both_apple_share must be in (0, 1)")
        share_sum = sum(self.atlas_region_shares.values())
        if abs(share_sum - 1.0) > 1e-6:
            raise WorldGenError(f"atlas region shares sum to {share_sum}, not 1")
        rcode_sum = sum(self.atlas_block_rcode_shares.values())
        if abs(rcode_sum - 1.0) > 1e-6:
            raise WorldGenError(f"block rcode shares sum to {rcode_sum}, not 1")

    # ------------------------------------------------------------------
    # Scaled accessors
    # ------------------------------------------------------------------

    def s(self, value: int, minimum: int = 1) -> int:
        """Scale a ground-truth population by the world scale."""
        return _scaled(value, self.scale, minimum)

    @classmethod
    def tiny(cls, seed: int = 2022) -> "WorldConfig":
        """A small world for unit tests (sub-second generation)."""
        return cls(seed=seed, scale=0.004)

    @classmethod
    def small(cls, seed: int = 2022) -> "WorldConfig":
        """A mid-size world for integration tests."""
        return cls(seed=seed, scale=0.02)
