"""The assembled world: one object wiring every subsystem together.

``build_world(config)`` produces a :class:`World` from which examples,
tests and benchmarks run the paper's measurement pipeline:

* ``world.route53`` — the ECS-aware authoritative server for the relay
  domains (the ECS scanner's target);
* ``world.atlas`` — the probe platform (validation / IPv6 / blocking);
* ``world.make_vantage_client(...)`` — a relay client at the vantage
  for scans through the relay;
* ``world.topology`` / ``world.history`` — for the Section 6 analyses;
* ``world.egress_list_may`` / ``world.egress_list_jan`` — the published
  egress snapshots for the Table 3/4 and figure analyses.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.atlas.platform import AtlasPlatform
from repro.dns.name import DnsName
from repro.dns.rr import a_record
from repro.dns.server import AuthoritativeServer, EcsPolicy, NameServerRegistry
from repro.dns.whoami import WhoamiServer
from repro.dns.zone import Zone
from repro.netmodel.addr import IPAddress, Prefix
from repro.netmodel.bgp import BgpHistory
from repro.netmodel.geo import GeoPoint
from repro.netmodel.geodb import GeoDatabase
from repro.netmodel.topology import Topology
from repro.relay.client import DnsConfig, RelayClient
from repro.relay.egress import EgressFleet
from repro.relay.egress_list import EgressList
from repro.relay.ingress import IngressFleet
from repro.relay.observer import EchoService, ObservationServer
from repro.relay.service import AssignmentMap, PrivateRelayService
from repro.simtime import SimClock, month_to_seconds
from repro.telemetry import NULL_TELEMETRY, Telemetry
from repro.worldgen.config import WorldConfig
from repro.worldgen.deployment import (
    DeploymentGround,
    build_assignment,
    build_egress,
    build_geodb,
    build_history,
    build_ingress,
    build_pools,
    build_topology,
    scan_time,
)
from repro.netmodel.aspath import ASGraph
from repro.worldgen.asgraph import build_as_graph
from repro.worldgen.internet import (
    DNS_SERVICE_ASN,
    DNS_SERVICE_BLOCK,
    VANTAGE_ASN,
    InternetGround,
    build_internet,
)
from repro.worldgen.probes import build_probes

#: Control domain used to verify that blocking resolvers otherwise work.
CONTROL_DOMAIN = "example.org."
CONTROL_ADDRESS = "93.184.216.34"

#: The vantage's approximate location (Munich).
VANTAGE_LOCATION = GeoPoint(48.15, 11.57)


@dataclass
class World:
    """A fully wired simulated world."""

    config: WorldConfig
    clock: SimClock
    ground: InternetGround
    deployment: DeploymentGround
    service: PrivateRelayService
    ns_registry: NameServerRegistry
    route53: AuthoritativeServer
    control_server: AuthoritativeServer
    whoami: WhoamiServer
    atlas: AtlasPlatform
    web_server: ObservationServer
    echo_server: EchoService
    as_graph: ASGraph = field(default_factory=ASGraph)
    _vantage_host_counter: int = 16

    # -- convenient views ------------------------------------------------

    @property
    def routing(self):
        """The global routing table."""
        return self.ground.routing

    @property
    def registry(self):
        """The AS registry."""
        return self.ground.registry

    @property
    def population(self):
        """The APNIC-style AS population dataset."""
        return self.ground.population

    @property
    def gazetteer(self):
        """Countries and cities."""
        return self.ground.gazetteer

    @property
    def ingress_v4(self) -> IngressFleet:
        return self.deployment.ingress_v4

    @property
    def ingress_v6(self) -> IngressFleet:
        return self.deployment.ingress_v6

    @property
    def assignment(self) -> AssignmentMap:
        return self.deployment.assignment

    @property
    def egress_list_may(self) -> EgressList:
        return self.deployment.egress_list_may

    @property
    def egress_list_jan(self) -> EgressList:
        return self.deployment.egress_list_jan

    @property
    def egress_fleet(self) -> EgressFleet:
        return self.deployment.egress_fleet

    @property
    def geodb(self) -> GeoDatabase:
        return self.deployment.geodb

    @property
    def history(self) -> BgpHistory:
        return self.deployment.history

    @property
    def topology(self) -> Topology:
        return self.deployment.topology

    @property
    def vantage_router_id(self) -> str:
        return self.deployment.vantage_router_id

    def scan_months(self) -> list[tuple[int, int]]:
        """The paper's monthly scan calendar (Jan–Apr 2022)."""
        return [(m.year, m.month) for m in self.config.ingress_months]

    def scan_start(self, year: int, month: int) -> float:
        """Simulated start time of a monthly scan."""
        return scan_time(year, month)

    def make_vantage_client(self, dns: DnsConfig | None = None) -> RelayClient:
        """A relay client at the measurement vantage.

        With no ``dns`` argument the client uses a local recursive
        resolver at the vantage (the paper's *open* scan configuration).
        """
        from repro.dns.resolver import RecursiveResolver

        vantage = self.ground.vantage_prefix
        self._vantage_host_counter += 1
        address = vantage.address_at(self._vantage_host_counter)
        if dns is None:
            resolver = RecursiveResolver(
                self.ns_registry,
                vantage.address_at(3),
                clock=self.clock,
                send_ecs=False,
                name="vantage-local",
            )
            dns = DnsConfig.open(resolver)
        return RelayClient(
            service=self.service,
            address=address,
            asn=VANTAGE_ASN,
            country=self.config.vantage_country,
            location=VANTAGE_LOCATION,
            dns=dns,
        )


def build_world(
    config: WorldConfig | None = None, telemetry: Telemetry | None = None
) -> World:
    """Generate a complete world from a configuration.

    With a non-null ``telemetry``, worldgen phases record spans, the
    relay service reports connection-plane counters, and the world's
    existing stats counters are adopted into the metrics registry
    (:func:`~repro.worldgen.instrument.instrument_world`).
    """
    config = config or WorldConfig()
    telemetry = telemetry if telemetry is not None else NULL_TELEMETRY
    tracer = telemetry.tracer
    clock = SimClock()
    tracer.bind_clock(clock)
    clock.advance_to(month_to_seconds(2021, 7))

    with tracer.span("worldgen.internet"):
        ground = build_internet(config)
    rng = random.Random(config.seed ^ 0xD3B)

    codes = ground.gazetteer.country_codes
    covered = min(config.atlas_country_count, len(codes))
    probe_countries = codes[:covered]
    tail_countries = [c for c in codes[covered:]]

    with tracer.span("worldgen.egress"):
        egress_may, egress_jan, egress_prefixes = build_egress(config, ground, rng)
    with tracer.span("worldgen.ingress"):
        ingress_v4, ingress_v6, ingress_prefixes, unused = build_ingress(
            config, ground, rng, tail_countries
        )
    with tracer.span("worldgen.assignment"):
        assignment = build_assignment(config, ground, set(tail_countries))
    with tracer.span("worldgen.pools"):
        egress_fleet = build_pools(config, egress_may, rng, ground.gazetteer)
    with tracer.span("worldgen.geodb"):
        geodb = build_geodb(config, egress_may, ground.gazetteer, rng)
    with tracer.span("worldgen.history"):
        history = build_history(config, ground.routing)
    with tracer.span("worldgen.topology"):
        topology, vantage_router_id = build_topology(
            config, ground, ingress_v4, egress_fleet
        )

    service = PrivateRelayService(
        clock=clock,
        ingress_v4=ingress_v4,
        ingress_v6=ingress_v6,
        egress_fleet=egress_fleet,
        assignment=assignment,
        routing=ground.routing,
        rng=random.Random(config.seed ^ 0x5E55),
        telemetry=telemetry,
    )

    # DNS infrastructure.
    with tracer.span("worldgen.dns"):
        dns_block = Prefix.parse(DNS_SERVICE_BLOCK)
        route53 = AuthoritativeServer(
            dns_block.address_at(1), EcsPolicy(max_source_v4=24), name="route53"
        )
        route53.add_zone(service.build_zone())
        control_server = AuthoritativeServer(
            dns_block.address_at(2), EcsPolicy(enabled=False), name="generic-auth"
        )
        control_zone = Zone(CONTROL_DOMAIN)
        control_zone.add_record(
            a_record(DnsName.parse(CONTROL_DOMAIN), IPAddress.parse(CONTROL_ADDRESS))
        )
        control_server.add_zone(control_zone)
        whoami = WhoamiServer(dns_block.address_at(3))
        ns_registry = NameServerRegistry()
        ns_registry.register(route53)
        ns_registry.register(control_server)
        ns_registry.register(whoami)

    with tracer.span("worldgen.probes"):
        atlas = build_probes(config, ground, ns_registry, clock, probe_countries)

    vantage = ground.vantage_prefix
    web_server = ObservationServer(
        "observer.vantage.example", vantage.address_at(10), VANTAGE_ASN
    )
    echo_server = EchoService(
        "ipecho.net", dns_block.address_at(9), DNS_SERVICE_ASN
    )
    topology.attach_host(web_server.address, vantage_router_id)
    # The echo service lives in an external cloud AS, reachable through
    # transit — giving QoE comparisons a non-trivial direct path.
    from repro.netmodel.topology import Router

    cloud_router = topology.add_router(
        Router("service-cloud", DNS_SERVICE_ASN, dns_block.address_at(254))
    )
    topology.add_link("transit-1", cloud_router.router_id, 12.0)
    topology.attach_host(echo_server.address, cloud_router.router_id)

    deployment = DeploymentGround(
        ingress_v4=ingress_v4,
        ingress_v6=ingress_v6,
        assignment=assignment,
        egress_list_jan=egress_jan,
        egress_list_may=egress_may,
        egress_fleet=egress_fleet,
        geodb=geodb,
        history=history,
        topology=topology,
        vantage_router_id=vantage_router_id,
        ingress_prefixes=ingress_prefixes,
        egress_prefixes=egress_prefixes,
        unused_prefixes={
            4: [p for p in unused if p.version == 4],
            6: [p for p in unused if p.version == 6],
        },
        tail_countries=tail_countries,
        probe_countries=probe_countries,
        april_scan_start=scan_time(2022, 4),
    )
    world = World(
        config=config,
        clock=clock,
        ground=ground,
        deployment=deployment,
        service=service,
        ns_registry=ns_registry,
        route53=route53,
        control_server=control_server,
        whoami=whoami,
        atlas=atlas,
        web_server=web_server,
        echo_server=echo_server,
        as_graph=build_as_graph(config, ground),
    )
    # Local import: instrument depends on worldgen types only at runtime.
    from repro.worldgen.instrument import instrument_world

    instrument_world(telemetry, world)
    return world
