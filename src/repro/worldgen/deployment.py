"""Relay deployment: ingress fleets, assignment map, egress lists, topology.

Consumes the base Internet from :mod:`repro.worldgen.internet` and
deploys the relay network onto it:

* **ingress fleets** with per-month activation/retirement windows that
  realise the Table 1 trajectories, organised into regional pods plus
  *tail-country pods* — relays dedicated to countries without Atlas
  probes, which is why the ECS scan uncovers ~200 addresses the Atlas
  measurement never sees;
* the **assignment map** binding every client chunk to (operator, pod);
* the **egress lists** (January and May snapshots) with per-operator
  subnet sizes, BGP prefixes, and CC/city distributions calibrated to
  Tables 3/4 and Figures 2/4/5;
* **egress pools** and per-country operator presence for relay scans;
* a MaxMind-style **geo database** seeded (mostly) from the egress list;
* the **router topology** in which Akamai-PR ingress and egress
  addresses share a last-hop router; and
* the monthly **BGP visibility history** with AS36183 first appearing
  in June 2021.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.errors import WorldGenError
from repro.faults.plan import MASK64, MIX_MULT_A, MIX_MULT_B, fault_key
from repro.netmodel.addr import IPAddress, Prefix
from repro.netmodel.asn import WellKnownAS
from repro.netmodel.bgp import BgpHistory, RoutingTable
from repro.netmodel.geo import Gazetteer
from repro.netmodel.geodb import GeoDatabase, GeoRecord
from repro.netmodel.topology import Router, Topology
from repro.relay.egress import EgressFleet, EgressPool
from repro.relay.egress_list import EgressEntry, EgressList
from repro.relay.ingress import IngressFleet, IngressRelay, RelayProtocol
from repro.relay.service import AssignmentMap, AssignmentUnit
from repro.simtime import SECONDS_PER_DAY, month_to_seconds
from repro.worldgen.config import WorldConfig
from repro.worldgen.internet import (
    OPERATOR_BLOCKS_V6,
    InternetGround,
    VANTAGE_ASN,
)

_OPERATOR_BY_NAME = {
    "Apple": int(WellKnownAS.APPLE),
    "Akamai_PR": int(WellKnownAS.AKAMAI_PR),
    "Akamai_EG": int(WellKnownAS.AKAMAI_EG),
    "Cloudflare": int(WellKnownAS.CLOUDFLARE),
    "Fastly": int(WellKnownAS.FASTLY),
}

#: Relay-service launch (first BGP visibility of AS36183).
SERVICE_LAUNCH = (2021, 6)


@dataclass
class DeploymentGround:
    """Everything deployed on top of the base Internet."""

    ingress_v4: IngressFleet
    ingress_v6: IngressFleet
    assignment: AssignmentMap
    egress_list_jan: EgressList
    egress_list_may: EgressList
    egress_fleet: EgressFleet
    geodb: GeoDatabase
    history: BgpHistory
    topology: Topology
    vantage_router_id: str
    #: Ingress BGP prefixes per (asn, ip version).
    ingress_prefixes: dict[tuple[int, int], list[Prefix]] = field(default_factory=dict)
    #: Egress BGP prefixes per (asn, ip version).
    egress_prefixes: dict[tuple[int, int], list[Prefix]] = field(default_factory=dict)
    #: Announced-but-unused AS36183 prefixes per ip version.
    unused_prefixes: dict[int, list[Prefix]] = field(default_factory=dict)
    #: Countries with no Atlas probes (served by tail pods).
    tail_countries: list[str] = field(default_factory=list)
    #: Countries hosting Atlas probes.
    probe_countries: list[str] = field(default_factory=list)
    #: Timestamp of the April ECS scan start (for the late relay).
    april_scan_start: float = 0.0


def scan_time(year: int, month: int) -> float:
    """Simulated start time of the monthly scan (1 day into the month)."""
    return month_to_seconds(year, month) + SECONDS_PER_DAY


# ----------------------------------------------------------------------
# Subnet-size composition
# ----------------------------------------------------------------------


def compose_subnet_lengths(count: int, total_addresses: int) -> list[int]:
    """Choose IPv4 prefix lengths for ``count`` subnets summing to
    ``total_addresses`` addresses, using sizes 8/4/2/1 (/29../32).

    Raises :class:`WorldGenError` when the total is infeasible.
    """
    if not count <= total_addresses <= 8 * count:
        raise WorldGenError(
            f"cannot compose {count} subnets totalling {total_addresses} addresses"
        )
    length_of = {8: 29, 4: 30, 2: 31, 1: 32}
    ratio = total_addresses / count
    # Use the two size classes bracketing the average, mixing them so the
    # total comes out (nearly) exact — e.g. Fastly's 2.0 addresses per
    # subnet yields all /31s, Akamai-PR's 5.8 a /29-/30 mix.
    sizes_available = (1, 2, 4, 8)
    low = max(s for s in sizes_available if s <= ratio)
    high = min((s for s in sizes_available if s >= ratio), default=8)
    if low == high:
        return [length_of[low]] * count
    n_high = (total_addresses - low * count) // (high - low)
    n_high = max(0, min(count, n_high))
    residual = total_addresses - (n_high * high + (count - n_high) * low)
    if not 0 <= residual < high:
        raise WorldGenError(
            f"subnet composition residual {residual} for count={count}, "
            f"total={total_addresses}"
        )
    sizes = [high] * n_high + [low] * (count - n_high)
    return [length_of[s] for s in sizes]


# ----------------------------------------------------------------------
# Country/city distribution for the egress list
# ----------------------------------------------------------------------


def _egress_cc_universe(config: WorldConfig, gazetteer: Gazetteer) -> dict[str, list[str]]:
    """Country-coverage sets per operator (CC-overlap structure).

    Cloudflare covers everything except two low-rank CCs; 11 low-rank
    CCs are Cloudflare-exclusive; Akamai-PR and Fastly each additionally
    exclude three distinct CCs covered by the other two.
    """
    codes = gazetteer.country_codes
    n = len(codes)
    cf_unique = config.s(config.cloudflare_unique_ccs, 1)
    # Reserve low-rank slices for the exclusion structure.
    cf_only = codes[n - cf_unique:]
    not_cf = codes[n - cf_unique - 2 : n - cf_unique]
    not_apr = codes[n - cf_unique - 5 : n - cf_unique - 2]
    not_fastly = codes[n - cf_unique - 8 : n - cf_unique - 5]
    akamai_pr = [c for c in codes if c not in cf_only and c not in not_apr]
    fastly = [c for c in codes if c not in cf_only and c not in not_fastly]
    cloudflare = [c for c in codes if c not in not_cf]
    akamai_eg = [
        c for c in akamai_pr[: max(2, config.s(config.egress_ccs_akamai_eg, 2))]
    ]
    return {
        "Akamai_PR": akamai_pr,
        "Akamai_EG": akamai_eg,
        "Cloudflare": cloudflare,
        "Fastly": fastly,
    }


def _cc_subnet_counts(
    config: WorldConfig, covered: list[str], gazetteer: Gazetteer, total: int
) -> dict[str, int]:
    """Distribute ``total`` subnets over covered CCs (US-heavy shape).

    Shape targets from the paper: the US holds 58 % of all subnets, DE
    is a distant second at 3.6 %, and a long tail of ~123 CCs receives
    fewer than 50 subnets each.  The non-US/DE share is a normalised
    power law with the head capped just below DE's share.
    """
    if total < len(covered):
        covered = covered[:max(1, total)]
    tail_share = 1.0 - config.us_subnet_share - config.de_subnet_share
    raw = {}
    for code in covered:
        rank = gazetteer.country_codes.index(code)
        if code not in ("US", "DE"):
            # Exponent calibrated so ~123 CCs end below 50 subnets at
            # paper scale (the paper's long-tail observation).
            raw[code] = (rank + 2) ** -1.63
    raw_sum = sum(raw.values()) or 1.0
    weights = []
    cap = 0.92 * config.de_subnet_share
    capped_total = 0.0
    uncapped_sum = 0.0
    for code in covered:
        if code == "US":
            weights.append(config.us_subnet_share)
        elif code == "DE":
            weights.append(config.de_subnet_share)
        else:
            weight = tail_share * raw[code] / raw_sum
            if weight > cap:
                capped_total += weight - cap
                weight = cap
            else:
                uncapped_sum += weight
            weights.append(weight)
    # Redistribute capped excess proportionally over the uncapped tail.
    if capped_total > 0 and uncapped_sum > 0:
        scale_up = 1.0 + capped_total / uncapped_sum
        weights = [
            w * scale_up if code not in ("US", "DE") and w < cap else w
            for code, w in zip(covered, weights)
        ]
    weight_sum = sum(weights)
    counts = {c: max(1, int(total * w / weight_sum)) for c, w in zip(covered, weights)}
    drift = total - sum(counts.values())
    order = sorted(counts, key=lambda c: -counts[c])
    i = 0
    while drift != 0:
        code = order[i % len(order)]
        if drift > 0:
            counts[code] += 1
            drift -= 1
        elif counts[code] > 1:
            counts[code] -= 1
            drift += 1
        i += 1
    return counts


# ----------------------------------------------------------------------
# Egress list generation
# ----------------------------------------------------------------------


@dataclass
class _OperatorEgressPlan:
    name: str
    asn: int
    v4_subnets: int
    v4_addresses: int
    v4_prefixes: int
    v6_subnets: int
    v6_prefixes: int
    v4_cities: int
    v6_cities: int
    covered_ccs: list[str]
    v4_ccs: list[str]


def _operator_plans(config: WorldConfig, gazetteer: Gazetteer) -> list[_OperatorEgressPlan]:
    universe = _egress_cc_universe(config, gazetteer)
    s = config.s
    specs = (
        ("Akamai_PR", config.egress_v4_akamai_pr, config.egress_v6_akamai_pr,
         config.egress_cities_akamai_pr, universe["Akamai_PR"], None),
        ("Akamai_EG", config.egress_v4_akamai_eg, config.egress_v6_akamai_eg,
         config.egress_cities_akamai_eg, universe["Akamai_EG"], 18),
        ("Cloudflare", config.egress_v4_cloudflare, config.egress_v6_cloudflare,
         config.egress_cities_cloudflare, universe["Cloudflare"], None),
        ("Fastly", config.egress_v4_fastly, config.egress_v6_fastly,
         config.egress_cities_fastly, universe["Fastly"], None),
    )
    plans = []
    for name, (v4_count, v4_addrs, v4_pfx), (v6_count, v6_pfx), (c4, c6), ccs, v4_cc_cap in specs:
        v4_subnets = s(v4_count, 8)
        ratio = v4_addrs / v4_count
        v4_addresses = max(v4_subnets, round(v4_subnets * ratio))
        v4_addresses = min(v4_addresses, 8 * v4_subnets)
        v4_ccs = ccs if v4_cc_cap is None else ccs[: max(2, s(v4_cc_cap, 2))]
        plans.append(
            _OperatorEgressPlan(
                name=name,
                asn=_OPERATOR_BY_NAME[name],
                v4_subnets=v4_subnets,
                v4_addresses=v4_addresses,
                v4_prefixes=max(1, s(v4_pfx)) if name != "Akamai_EG" else 1,
                v6_subnets=s(v6_count, 8),
                v6_prefixes=max(1, s(v6_pfx)) if name != "Akamai_EG" else 1,
                v4_cities=s(c4, 4),
                v6_cities=s(c6, 4),
                covered_ccs=ccs,
                v4_ccs=v4_ccs,
            )
        )
    return plans


#: Carve-out sub-blocks inside each operator's IPv4 supernet.
_EGRESS_V4_BASE = {
    "Akamai_PR": "172.232.0.0/13",
    "Akamai_EG": "23.32.0.0/11",
    "Cloudflare": "104.16.0.0/13",
    "Fastly": "151.101.0.0/16",
}
_EGRESS_CHURN_V4_BASE = {
    "Akamai_PR": "172.230.0.0/16",
    "Akamai_EG": "23.56.0.0/16",
    "Cloudflare": "104.24.0.0/16",
    "Fastly": "146.75.0.0/16",
}


def _build_operator_egress(
    plan: _OperatorEgressPlan,
    config: WorldConfig,
    gazetteer: Gazetteer,
    rng: random.Random,
    routing: RoutingTable,
) -> tuple[list[EgressEntry], list[Prefix], list[Prefix], list[EgressEntry]]:
    """Build one operator's entries, BGP prefixes (v4, v6), churn spares."""
    entries: list[EgressEntry] = []
    # ----- IPv4 -----
    lengths = compose_subnet_lengths(plan.v4_subnets, plan.v4_addresses)
    lengths.sort()  # big subnets first (small length first = big size)
    base_v4 = Prefix.parse(_EGRESS_V4_BASE[plan.name])
    v4_bgp: list[Prefix] = []
    if plan.name == "Akamai_EG":
        v4_bgp = [base_v4]
        routing.announce(base_v4, plan.asn)
        cursor = base_v4.value
    else:
        # Block capacity: double the average per-block address load (the
        # factor absorbs alignment slack and size skew between blocks).
        load = -(-plan.v4_addresses // plan.v4_prefixes)
        capacity = max(256, 2 * load)
        block_len = 32 - (capacity - 1).bit_length()
        for i in range(plan.v4_prefixes):
            block = Prefix(4, base_v4.value + (i << (32 - block_len)), block_len)
            if not base_v4.contains_prefix(block):
                raise WorldGenError(f"egress blocks overflow {base_v4} for {plan.name}")
            routing.announce(block, plan.asn)
            v4_bgp.append(block)
        cursor = v4_bgp[0].value
    v4_subnet_prefixes: list[Prefix] = []
    current_block = -1
    for i, length in enumerate(lengths):
        if plan.name != "Akamai_EG":
            # Balanced assignment: every announced block receives at
            # least one subnet (the paper's per-AS BGP prefix counts all
            # carry egress space).
            block_idx = i * len(v4_bgp) // len(lengths)
            if block_idx != current_block:
                current_block = block_idx
                cursor = v4_bgp[block_idx].value
        size = 1 << (32 - length)
        aligned = (cursor + size - 1) & ~(size - 1)
        prefix = Prefix(4, aligned, length)
        if plan.name != "Akamai_EG" and not v4_bgp[current_block].contains_prefix(prefix):
            raise WorldGenError(
                f"egress subnet {prefix} overflows block {v4_bgp[current_block]} "
                f"for {plan.name}"
            )
        cursor = aligned + size
        v4_subnet_prefixes.append(prefix)
    # ----- IPv6 -----
    base_v6 = Prefix.parse(OPERATOR_BLOCKS_V6[plan.asn][0])
    v6_bgp: list[Prefix] = []
    v6_subnet_prefixes: list[Prefix] = []
    per_prefix_v6 = -(-plan.v6_subnets // plan.v6_prefixes)
    bgp_len = 44 if plan.v6_prefixes > 200 else 40
    if plan.v6_prefixes >= (0xFE << (bgp_len - 40)):
        raise WorldGenError(
            f"{plan.name}: {plan.v6_prefixes} v6 blocks collide with the "
            "ingress carve-out"
        )
    for i in range(plan.v6_prefixes):
        block = Prefix(6, base_v6.value + (i << (128 - bgp_len)), bgp_len)
        routing.announce(block, plan.asn)
        v6_bgp.append(block)
    v6_block_fill: dict[int, int] = {}
    for i in range(plan.v6_subnets):
        block_idx = i * len(v6_bgp) // plan.v6_subnets
        offset = v6_block_fill.get(block_idx, 0)
        v6_block_fill[block_idx] = offset + 1
        v6_subnet_prefixes.append(
            Prefix(6, v6_bgp[block_idx].value + (offset << 64), 64)
        )
    # ----- locations -----
    for version, prefixes, cc_list, city_target in (
        (4, v4_subnet_prefixes, plan.v4_ccs, plan.v4_cities),
        (6, v6_subnet_prefixes, plan.covered_ccs, plan.v6_cities),
    ):
        cc_counts = _cc_subnet_counts(config, cc_list, gazetteer, len(prefixes))
        index = 0
        for code in cc_list:
            count = cc_counts.get(code, 0)
            if count == 0:
                continue
            cities = gazetteer.cities_in(code)
            budget = max(1, min(len(cities), count,
                                round(city_target * count / len(prefixes))))
            for j in range(count):
                prefix = prefixes[index]
                index += 1
                city = cities[j % budget]
                city_name = "" if rng.random() < config.missing_city_fraction else city.name
                region = f"{code}-{city.region}"
                entries.append(EgressEntry(prefix, code, region, city_name))
    # ----- churn spares (entries only in the January list) -----
    churn_count = max(1, int(len(entries) * config.egress_churn_fraction))
    churn_base = Prefix.parse(_EGRESS_CHURN_V4_BASE[plan.name])
    if plan.name != "Akamai_EG":
        routing.announce(churn_base, plan.asn)
    churn_entries = []
    cities_us = gazetteer.cities_in("US")
    for i in range(churn_count):
        prefix = Prefix(4, churn_base.value + (i << 3), 29)
        churn_entries.append(
            EgressEntry(prefix, "US", "US-NA", cities_us[i % len(cities_us)].name)
        )
    return entries, v4_bgp, v6_bgp, churn_entries


def build_egress(
    config: WorldConfig,
    ground: InternetGround,
    rng: random.Random,
) -> tuple[EgressList, EgressList, dict[tuple[int, int], list[Prefix]]]:
    """Build the May and January egress lists and the BGP prefix index."""
    plans = _operator_plans(config, ground.gazetteer)
    may_entries: list[EgressEntry] = []
    jan_entries: list[EgressEntry] = []
    prefix_index: dict[tuple[int, int], list[Prefix]] = {}
    for plan in plans:
        entries, v4_bgp, v6_bgp, churn = _build_operator_egress(
            plan, config, ground.gazetteer, rng, ground.routing
        )
        may_entries.extend(entries)
        prefix_index[(plan.asn, 4)] = v4_bgp
        prefix_index[(plan.asn, 6)] = v6_bgp
        # January: ~87 % of the May list (the May list is ~15 % larger),
        # plus a small churned-out set that vanished by May.
        keep = 1.0 / (1.0 + config.egress_growth_jan_to_may)
        jan_entries.extend(e for e in entries if rng.random() < keep)
        jan_entries.extend(churn)
    return EgressList(may_entries), EgressList(jan_entries), prefix_index


# ----------------------------------------------------------------------
# Ingress deployment
# ----------------------------------------------------------------------

_REGION_RELAY_WEIGHTS = {"NA": 0.30, "EU": 0.32, "AS": 0.20, "SA": 0.07, "AF": 0.06, "OC": 0.05}

#: Ingress address blocks (carved from the operator supernets).
_INGRESS_V4_BASE = {
    int(WellKnownAS.APPLE): "17.0.0.0/16",
    int(WellKnownAS.AKAMAI_PR): "172.224.0.0/16",
}
_UNUSED_V4_BASE = "172.225.0.0/16"  # announced-but-unused AS36183 space


def _region_pods(config: WorldConfig) -> list[str]:
    pods = []
    for region, count in config.pods_per_region.items():
        scaled = max(1, round(count * max(config.scale, 0.25)))
        pods.extend(f"{region}-{i}" for i in range(scaled))
    return pods


@dataclass
class _FleetPlan:
    """Mutable relay plan (frozen into IngressRelay at the end)."""

    address: IPAddress
    asn: int
    protocol: RelayProtocol
    pod: str
    active_from: float
    active_until: float | None = None


def _monthly_targets(config: WorldConfig) -> dict[tuple[int, RelayProtocol], list[tuple[float, int]]]:
    """Per (asn, protocol): [(effective time, target count)] trajectories."""
    apple, akamai = int(WellKnownAS.APPLE), int(WellKnownAS.AKAMAI_PR)
    out: dict[tuple[int, RelayProtocol], list[tuple[float, int]]] = {
        (apple, RelayProtocol.QUIC): [],
        (akamai, RelayProtocol.QUIC): [],
        (apple, RelayProtocol.TCP_FALLBACK): [],
        (akamai, RelayProtocol.TCP_FALLBACK): [],
    }
    for month in config.ingress_months:
        ts = month_to_seconds(month.year, month.month)
        out[(apple, RelayProtocol.QUIC)].append((ts, config.s(month.quic_apple, 4)))
        out[(akamai, RelayProtocol.QUIC)].append((ts, config.s(month.quic_akamai, 8)))
        out[(apple, RelayProtocol.TCP_FALLBACK)].append(
            (ts, config.s(month.fallback_apple, 4))
        )
        out[(akamai, RelayProtocol.TCP_FALLBACK)].append(
            (ts, config.s(month.fallback_akamai, 0) if month.fallback_akamai else 0)
        )
    return out


def build_ingress(
    config: WorldConfig,
    ground: InternetGround,
    rng: random.Random,
    tail_countries: list[str],
) -> tuple[IngressFleet, IngressFleet, dict[tuple[int, int], list[Prefix]], list[Prefix]]:
    """Build both ingress fleets, the prefix index, and unused prefixes."""
    apple, akamai = int(WellKnownAS.APPLE), int(WellKnownAS.AKAMAI_PR)
    routing = ground.routing
    registry = ground.registry
    prefix_index: dict[tuple[int, int], list[Prefix]] = {}

    # Announce ingress BGP prefixes (/24s carved from the bases).
    for asn, count_cfg in (
        (apple, config.ingress_v4_prefixes_apple),
        (akamai, config.ingress_v4_prefixes_akamai),
    ):
        base = Prefix.parse(_INGRESS_V4_BASE[asn])
        count = max(2, config.s(count_cfg, 2))
        prefixes = [Prefix(4, base.value + (i << 8), 24) for i in range(count)]
        for prefix in prefixes:
            routing.announce(prefix, asn)
            registry.get(asn).add_prefix(prefix)
        prefix_index[(asn, 4)] = prefixes
    for asn, count_cfg in (
        (apple, config.ingress_v6_prefixes_apple),
        (akamai, config.ingress_v6_prefixes_akamai),
    ):
        base = Prefix.parse(OPERATOR_BLOCKS_V6[asn][0])
        count = max(2, config.s(count_cfg, 2))
        # Ingress v6 prefixes sit in the top /40 of the operator block
        # (0xFF), clear of the egress /40-or-/44 carve-outs which never
        # reach index 0xFE.
        top = base.value | (0xFF << 88)
        prefixes = [Prefix(6, top + (i << 80), 48) for i in range(count)]
        for prefix in prefixes:
            routing.announce(prefix, asn)
            registry.get(asn).add_prefix(prefix)
        prefix_index[(asn, 6)] = prefixes

    # Announced-but-unused AS36183 prefixes (Section 6's 7.8 %).
    unused: list[Prefix] = []
    unused_v4 = max(1, config.s(84))
    base = Prefix.parse(_UNUSED_V4_BASE)
    for i in range(unused_v4):
        prefix = Prefix(4, base.value + (i << 8), 24)
        routing.announce(prefix, akamai)
        unused.append(prefix)
    unused_v6 = max(1, config.s(55))
    base6 = Prefix.parse(OPERATOR_BLOCKS_V6[akamai][0])
    top6 = base6.value | (0xFE << 88)
    for i in range(unused_v6):
        prefix = Prefix(6, top6 + (i << 80), 48)
        routing.announce(prefix, akamai)
        unused.append(prefix)

    pods = _region_pods(config)
    pod_weights = [
        _REGION_RELAY_WEIGHTS[p.split("-")[0]] for p in pods
    ]
    launch = month_to_seconds(*SERVICE_LAUNCH)

    fleet_v4 = IngressFleet(4)
    fleet_v6 = IngressFleet(6)
    counters: dict[tuple[int, int], int] = {}

    def next_address(asn: int, version: int) -> IPAddress:
        prefixes = prefix_index[(asn, version)]
        idx = counters.get((asn, version), 0)
        counters[(asn, version)] = idx + 1
        prefix = prefixes[idx % len(prefixes)]
        offset = 1 + idx // len(prefixes)
        if version == 4 and offset >= 255:
            raise WorldGenError(f"ingress /24s exhausted for AS{asn}")
        return prefix.address_at(offset)

    # ----- IPv4: monthly trajectories with churn -----
    plans: list[_FleetPlan] = []
    hidden_total = max(0, config.s(204, 0))
    hidden_apple = round(hidden_total * 0.22)
    hidden_akamai = hidden_total - hidden_apple
    hidden_budget = {apple: hidden_apple, akamai: hidden_akamai}
    for (asn, protocol), trajectory in _monthly_targets(config).items():
        active: list[_FleetPlan] = []
        hidden_left = hidden_budget[asn] if protocol is RelayProtocol.QUIC else 0
        for ts, target in trajectory:
            start = launch if ts == trajectory[0][0] else ts
            current = len(active)
            if target > current:
                for _ in range(target - current):
                    if hidden_left > 0 and tail_countries:
                        pod = f"CC:{tail_countries[hidden_left % len(tail_countries)]}"
                        hidden_left -= 1
                    else:
                        pod = rng.choices(pods, weights=pod_weights, k=1)[0]
                    plan = _FleetPlan(
                        next_address(asn, 4), asn, protocol, pod, start
                    )
                    active.append(plan)
                    plans.append(plan)
            elif target < current:
                for plan in rng.sample(active, current - target):
                    plan.active_until = ts
                    active.remove(plan)
    # The single relay that activates between the April ECS scan and the
    # Atlas validation run.
    april_scan = scan_time(2022, 4)
    if config.late_relay_during_april:
        plans.append(
            _FleetPlan(
                next_address(akamai, 4),
                akamai,
                RelayProtocol.QUIC,
                "EU-0",
                april_scan + 36 * 3600.0,
            )
        )
    for plan in plans:
        fleet_v4.add(
            IngressRelay(
                plan.address, plan.asn, plan.protocol, plan.pod,
                plan.active_from, plan.active_until,
            )
        )

    # ----- IPv6: final counts with the same pod structure -----
    hidden_v6 = {apple: max(0, config.s(6, 0)), akamai: max(0, config.s(31, 0))}
    for asn, total_cfg in ((apple, config.ingress_v6_apple), (akamai, config.ingress_v6_akamai)):
        total = config.s(total_cfg, 4)
        hidden_left = min(hidden_v6[asn], total - 1)
        for i in range(total):
            if hidden_left > 0 and tail_countries:
                pod = f"CC:{tail_countries[(i + asn) % len(tail_countries)]}"
                hidden_left -= 1
            else:
                pod = rng.choices(pods, weights=pod_weights, k=1)[0]
            fleet_v6.add(
                IngressRelay(
                    next_address(asn, 6), asn, RelayProtocol.QUIC, pod, launch
                )
            )
    return fleet_v4, fleet_v6, prefix_index, unused


# ----------------------------------------------------------------------
# Assignment map
# ----------------------------------------------------------------------


def build_assignment(
    config: WorldConfig,
    ground: InternetGround,
    tail_countries: set[str],
) -> AssignmentMap:
    """Bind every client chunk to (operator, pod)."""
    assignment = AssignmentMap()
    pods = _region_pods(config)
    by_region: dict[str, list[str]] = {}
    for pod in pods:
        by_region.setdefault(pod.split("-")[0], []).append(pod)
    gazetteer = ground.gazetteer
    for chunk in ground.chunks:
        if chunk.country.startswith("@"):
            region = chunk.country[1:]
            pod = by_region[region][0]
        elif chunk.country in tail_countries:
            pod = f"CC:{chunk.country}"
        else:
            region = gazetteer.region_of(chunk.country)
            region_pods = by_region[region]
            # Use the prefix's block number, not its raw value: aligned
            # prefixes have zero low bits, which would funnel every unit
            # into pod 0.
            block_number = chunk.prefix.value >> (32 - chunk.prefix.length or 1)
            pod = region_pods[block_number % len(region_pods)]
        assignment.add(
            AssignmentUnit(chunk.prefix, chunk.scope_len, chunk.operator_asn, pod)
        )
    return assignment


# ----------------------------------------------------------------------
# Pools, presence, geo DB, topology, history
# ----------------------------------------------------------------------


def build_pools(
    config: WorldConfig,
    egress_list: EgressList,
    rng: random.Random,
    gazetteer: Gazetteer,
) -> EgressFleet:
    """Egress pools and per-country operator presence."""
    fleet = EgressFleet()
    pool_ops = ("Akamai_PR", "Cloudflare", "Fastly")
    blocks = {
        _OPERATOR_BY_NAME[name]: (
            Prefix.parse(_EGRESS_V4_BASE[name]),
            Prefix.parse(_EGRESS_CHURN_V4_BASE[name]),
        )
        for name in pool_ops
    }
    by_op_cc: dict[tuple[int, str], list[EgressEntry]] = {}
    for entry in egress_list:
        if entry.prefix.version != 4:
            continue
        # Pools draw from IPv4 subnets (the scan client is v4); attribute
        # each entry to its operator by address block.
        for asn, (base, churn) in blocks.items():
            if base.contains_prefix(entry.prefix) or churn.contains_prefix(entry.prefix):
                by_op_cc.setdefault((asn, entry.country_code), []).append(entry)
                break
    # Per-(operator, region) entry lists, for topping up pools in
    # countries where the operator has few local subnets: a client is
    # served by nearby sites, so borrowing stays region-local.
    region_entries: dict[tuple[int, str], list[EgressEntry]] = {}
    for (asn, cc), entries in by_op_cc.items():
        region_entries.setdefault((asn, gazetteer.region_of(cc)), []).extend(entries)
    for (asn, cc), entries in by_op_cc.items():
        region = gazetteer.region_of(cc)
        candidates = list(entries)
        for extra in region_entries[(asn, region)]:
            if len(candidates) >= config.egress_pool_subnets:
                break
            if extra not in candidates:
                candidates.append(extra)
        stride = max(1, len(candidates) // config.egress_pool_subnets)
        chosen = [
            candidates[i * stride]
            for i in range(min(config.egress_pool_subnets, len(candidates)))
        ]
        # Round-robin one address per subnet, then a second round — the
        # shape the paper observed: six addresses out of four subnets.
        addresses: list[IPAddress] = []
        for round_idx in range(2):
            for entry in chosen:
                if len(addresses) >= config.egress_pool_addresses:
                    break
                if round_idx < entry.prefix.num_addresses():
                    addresses.append(entry.prefix.address_at(round_idx))
        extra_iter = (
            e for e in region_entries[(asn, region)] if e not in chosen
        )
        while len(addresses) < config.egress_pool_addresses:
            extra = next(extra_iter, None)
            if extra is None:
                break
            addresses.append(extra.prefix.address_at(0))
        fleet.add_pool(
            EgressPool(asn, cc, addresses, stickiness=config.egress_stickiness)
        )
    # Presence weights per country.
    countries = {cc for _asn, cc in by_op_cc}
    for cc in countries:
        if cc == config.vantage_country:
            weights = {
                _OPERATOR_BY_NAME[name]: w
                for name, w in config.vantage_presence.items()
                if (_OPERATOR_BY_NAME[name], cc) in fleet.pools
            }
        else:
            weights = {
                _OPERATOR_BY_NAME[name]: w
                for name, w in config.default_presence.items()
                if (_OPERATOR_BY_NAME[name], cc) in fleet.pools
            }
        if weights:
            fleet.set_presence(cc, weights)
    return fleet


def build_geodb(
    config: WorldConfig,
    egress_list: EgressList,
    gazetteer: Gazetteer,
    rng: random.Random,
    sample_size: int = 20000,
) -> GeoDatabase:
    """A MaxMind-style DB that mostly adopted the published mapping."""
    geodb = GeoDatabase()
    entries = egress_list.entries()
    stride = max(1, len(entries) // sample_size)
    for entry in entries[::stride]:
        if rng.random() < config.geodb_adoption_rate:
            record = GeoRecord(entry.country_code, entry.city or None, None, "egress-list")
        else:
            other = rng.choice(gazetteer.country_codes[:40])
            record = GeoRecord(other, None, None, "vendor")
        geodb.add(entry.prefix, record)
    return geodb


def build_topology(
    config: WorldConfig,
    ground: InternetGround,
    ingress_v4: IngressFleet,
    egress_fleet: EgressFleet,
) -> tuple[Topology, str]:
    """Router topology with shared Akamai-PR last hops.

    The vantage connects through a transit router to each operator's
    core.  Akamai-PR attaches **both** its ingress relays and its egress
    pool addresses behind the same per-region last-hop routers — the
    configuration the paper's traceroutes exposed.
    """
    topology = Topology()
    vantage = Router("vantage", VANTAGE_ASN, IPAddress.parse("131.159.0.1"))
    transit = Router("transit-1", 3356, IPAddress.parse("4.68.0.1"))
    topology.add_router(vantage)
    topology.add_router(transit)
    topology.add_link("vantage", "transit-1", 2.0)
    akamai = int(WellKnownAS.AKAMAI_PR)
    cores: dict[int, Router] = {}
    for name, asn, core_ip in (
        ("apple-core", int(WellKnownAS.APPLE), "17.255.0.1"),
        ("akamai-pr-core", akamai, "172.224.255.1"),
        ("cloudflare-core", int(WellKnownAS.CLOUDFLARE), "104.16.255.1"),
        ("fastly-core", int(WellKnownAS.FASTLY), "151.101.255.1"),
        ("akamai-eg-core", int(WellKnownAS.AKAMAI_EG), "23.32.255.1"),
    ):
        router = Router(name, asn, IPAddress.parse(core_ip))
        topology.add_router(router)
        topology.add_link("transit-1", name, 8.0)
        cores[asn] = router
    # Last-hop routers: one per (operator, region-ish shard).
    lasthops: dict[tuple[int, int], Router] = {}

    def lasthop_for(asn: int, shard: int) -> Router:
        key = (asn, shard)
        router = lasthops.get(key)
        if router is None:
            core = cores[asn]
            iface = IPAddress(4, core.interface.value - 65536 * (shard + 1))
            router = Router(f"{core.router_id}-lh{shard}", asn, iface)
            topology.add_router(router)
            topology.add_link(core.router_id, router.router_id, 1.0)
            lasthops[key] = router
        return router

    # Attach ingress relay addresses (IPv4).
    for relay in ingress_v4.relays:
        shard = _pod_shard(relay.pod)
        router = lasthop_for(relay.asn, shard)
        topology.attach_host(relay.address, router.router_id)
    # Attach egress pool addresses; Akamai-PR pools share the ingress
    # last-hop routers of their region — the co-location finding.
    gaz = ground.gazetteer
    for (asn, cc), pool in egress_fleet.pools.items():
        if asn == akamai:
            shard = _region_shard(gaz.region_of(cc)) if not cc.startswith("@") else 0
        else:
            shard = 100 + (sum(map(ord, cc)) % 4)
        router = lasthop_for(asn, shard)
        for address in pool.addresses:
            if not topology.has_host(address):
                topology.attach_host(address, router.router_id)
    return topology, "vantage"


_REGION_ORDER = {"NA": 0, "EU": 1, "AS": 2, "SA": 3, "AF": 4, "OC": 5}


def _region_shard(region: str) -> int:
    return _REGION_ORDER.get(region, 0)


def _pod_shard(pod: str) -> int:
    if pod.startswith("CC:"):
        return 50  # tail-country relays share one distant site
    return _region_shard(pod.split("-")[0])


def build_history(config: WorldConfig, routing: RoutingTable) -> BgpHistory:
    """Monthly BGP visibility 2016-01..2022-05; AS36183 appears 2021-06."""
    history = BgpHistory()
    akamai = int(WellKnownAS.AKAMAI_PR)
    all_origins = frozenset(routing.origins())
    before = frozenset(all_origins - {akamai})
    first_year, first_month = config.akamai_pr_first_seen
    first_idx = (first_year - config.history_start[0]) * 12 + (
        first_month - config.history_start[1]
    )
    start_year, start_month = config.history_start
    end_year, end_month = config.history_end
    total_months = (end_year - start_year) * 12 + (end_month - start_month) + 1
    for i in range(total_months):
        year = start_year + (start_month - 1 + i) // 12
        month = (start_month - 1 + i) % 12 + 1
        history.record_origins(year, month, before if i < first_idx else all_origins)
    return history


# ----------------------------------------------------------------------
# Deployment churn (continuous-monitoring drills)
# ----------------------------------------------------------------------


@dataclass(frozen=True, slots=True)
class ChangeRecord:
    """One injected deployment change, with where a scan can see it.

    ``block_value`` is the first address of the edited unit — a walk
    landing position in every scan, so the incremental engine's
    detection of the change must surface an event at this value.
    """

    kind: str
    prefix: Prefix
    block_value: int
    detail: str


def _churn_key(text: str) -> int:
    """Content-keyed 64-bit pick for churn decisions (crc32 + splitmix).

    Same construction as the fault plane: the chosen units depend only
    on the seed and the map contents, never on process or iteration
    order, so every worker count and every re-run drills the same
    deployment changes.
    """
    x = fault_key(text)
    x = ((x ^ (x >> 30)) * MIX_MULT_A) & MASK64
    x = ((x ^ (x >> 27)) * MIX_MULT_B) & MASK64
    return (x ^ (x >> 31)) & MASK64


class DeploymentChurn:
    """Deterministic deployment-change injector for a live assignment map.

    Models the localized, bursty churn the Meta-CDN literature reports:
    an operator hand-off on one block, a pod re-assignment, a block
    split (half the unit moves to a new pod at finer granularity), and
    a block withdrawal (the space reverts to the operator fallback).
    Every edit goes through :meth:`AssignmentMap.remove`/``add``, so the
    map version bump invalidates cached answer plans and replay
    programs exactly like a real deployment push.
    """

    KINDS = ("operator-swap", "pod-reassign", "block-split", "block-remove")

    #: DNS answer windows carry at most this many records (the service's
    #: rotation window); a pod whose operator roster stays *below* it is
    #: "saturated" — every answer exposes the whole roster, making pod
    #: moves exactly classifiable from a single probe.
    _SATURATED = 8

    def __init__(
        self,
        assignment: AssignmentMap,
        fleet: IngressFleet | None = None,
        at_time: float = 0.0,
    ) -> None:
        self.assignment = assignment
        self.fleet = fleet
        self.at_time = at_time

    def _pod_observable(self, pod: str, operator_asn: int) -> bool:
        """Whether answers from ``pod`` are distinguishable in a scan.

        A pod with no relay of the assigned operator spills over to the
        operator's fleet-wide roster, so a move between two spilled pods
        changes nothing any scanner can see.  Pod-move drills therefore
        only involve pods hosting the operator's relays for the QUIC
        protocol — the primary scan domain, which carries detection
        (the TCP-fallback fleet is deliberately sparse early in the
        observation window, so requiring both protocols would leave no
        eligible pods at small scales).  Without a fleet reference every
        pod is assumed observable (structural drills don't need one).
        """
        if self.fleet is None:
            return True
        relays = self.fleet.pod_relays(pod, RelayProtocol.QUIC, self.at_time)
        return any(r.asn == operator_asn for r in relays)

    def _pod_saturated(self, pod: str, operator_asn: int) -> bool:
        """Whether ``pod``'s operator roster fits one answer window.

        Pod-move drills are restricted to saturated *source* pods: a
        saturated pod's answer window IS its roster, so the new pod's
        window cannot equal it and a single delta probe proves the
        move.  An unsaturated source rotates through a larger roster —
        a real monitor would need several probes to tell rotation from
        relocation, which is a calibration question, not a drill.
        Without a fleet reference every pod is assumed saturated.
        """
        if self.fleet is None:
            return True
        relays = self.fleet.pod_relays(pod, RelayProtocol.QUIC, self.at_time)
        count = sum(1 for r in relays if r.asn == operator_asn)
        return 0 < count < self._SATURATED

    # -- unit inventory -------------------------------------------------

    def _v4_units(self) -> list[AssignmentUnit]:
        """Editable v4 units in address order (tail-country pods excluded:
        their hidden single-country placement is a calibration target,
        not churn material)."""
        units = [
            unit
            for unit in self.assignment.units()
            if unit.prefix.version == 4 and not unit.pod.startswith("CC:")
        ]
        units.sort(key=lambda unit: unit.prefix.value)
        return units

    def _operators(self) -> list[int]:
        return sorted({unit.operator_asn for unit in self._v4_units()})

    def _pods_of(self, operator_asn: int) -> list[str]:
        """Observable pods currently serving the operator, sorted."""
        return sorted(
            {
                unit.pod
                for unit in self._v4_units()
                if unit.operator_asn == operator_asn
                and self._pod_observable(unit.pod, operator_asn)
            }
        )

    def _eligible(self, kind: str) -> list[AssignmentUnit]:
        units = self._v4_units()
        if kind == "operator-swap":
            operators = self._operators()
            return units if len(operators) > 1 else []
        if kind in ("pod-reassign", "block-split"):
            out = []
            pods_memo: dict[int, list[str]] = {}
            for unit in units:
                if kind == "block-split" and (
                    unit.prefix.length >= 24
                    # A unit already scoped finer than its prefix walks as
                    # several rows; halving it then changes no row's scope,
                    # so the split would be invisible to structure probes.
                    or unit.scope_len != unit.prefix.length
                ):
                    continue
                if kind == "pod-reassign" and not self._pod_saturated(
                    unit.pod, unit.operator_asn
                ):
                    continue
                pods = pods_memo.get(unit.operator_asn)
                if pods is None:
                    pods = pods_memo[unit.operator_asn] = self._pods_of(
                        unit.operator_asn
                    )
                # The move must be observable from both ends: the unit's
                # current pod and at least one target pod answer from
                # their own (disjoint) relay rosters.
                if unit.pod in pods and len(pods) > 1:
                    out.append(unit)
            return out
        if kind == "block-remove":
            # A withdrawn /16-scoped Akamai unit reverts to the fallback
            # answer — same AS, same scope — leaving only a roster shift a
            # probe may not be able to attribute; require a visible scope
            # or operator transition instead.
            akamai = int(WellKnownAS.AKAMAI_PR)
            return [
                unit
                for unit in units
                if unit.scope_len != 16 or unit.operator_asn != akamai
            ]
        raise WorldGenError(f"unknown churn kind {kind!r}")

    # -- the four change kinds ------------------------------------------

    def swap_operator(self, unit: AssignmentUnit) -> ChangeRecord:
        """Hand the unit to a different operator (answer AS changes)."""
        choices = [a for a in self._operators() if a != unit.operator_asn]
        if not choices:
            raise WorldGenError("operator swap needs a second operator")
        new_asn = choices[_churn_key(f"operator:{unit.prefix}") % len(choices)]
        self.assignment.remove(unit.prefix)
        self.assignment.add(
            AssignmentUnit(unit.prefix, unit.scope_len, new_asn, unit.pod)
        )
        return ChangeRecord(
            "operator-swap",
            unit.prefix,
            unit.prefix.value,
            f"AS{unit.operator_asn} -> AS{new_asn}",
        )

    def reassign_pod(self, unit: AssignmentUnit) -> ChangeRecord:
        """Serve the unit from a different pod (answer roster changes)."""
        pods = [p for p in self._pods_of(unit.operator_asn) if p != unit.pod]
        if not pods:
            raise WorldGenError("pod re-assignment needs a second pod")
        new_pod = pods[_churn_key(f"pod:{unit.prefix}") % len(pods)]
        self.assignment.remove(unit.prefix)
        self.assignment.add(
            AssignmentUnit(unit.prefix, unit.scope_len, unit.operator_asn, new_pod)
        )
        return ChangeRecord(
            "pod-reassign",
            unit.prefix,
            unit.prefix.value,
            f"{unit.pod} -> {new_pod}",
        )

    def split_block(self, unit: AssignmentUnit) -> ChangeRecord:
        """Split the unit in half; the lower half moves to a new pod.

        The split halves stay walk-visible: both are rooted at scan
        landing positions (the unit start and its midpoint), so a full
        rescan and the incremental probe see the same refined partition
        — nesting, which would defeat the replay program, never occurs.
        """
        length = unit.prefix.length
        if length >= 24:
            raise WorldGenError(f"unit {unit.prefix} too small to split")
        pods = [p for p in self._pods_of(unit.operator_asn) if p != unit.pod]
        if not pods:
            raise WorldGenError("block split needs a second pod")
        new_pod = pods[_churn_key(f"split:{unit.prefix}") % len(pods)]
        half_len = length + 1
        scope = max(unit.scope_len, half_len)
        lower = Prefix(4, unit.prefix.value, half_len)
        upper = Prefix(4, unit.prefix.value + (1 << (32 - half_len)), half_len)
        self.assignment.remove(unit.prefix)
        self.assignment.add(
            AssignmentUnit(lower, scope, unit.operator_asn, new_pod)
        )
        self.assignment.add(
            AssignmentUnit(upper, scope, unit.operator_asn, unit.pod)
        )
        return ChangeRecord(
            "block-split",
            unit.prefix,
            unit.prefix.value,
            f"/{length} -> 2x/{half_len}, lower half {unit.pod} -> {new_pod}",
        )

    def remove_block(self, unit: AssignmentUnit) -> ChangeRecord:
        """Withdraw the unit; its space reverts to the /16 fallback answer."""
        self.assignment.remove(unit.prefix)
        return ChangeRecord(
            "block-remove",
            unit.prefix,
            unit.prefix.value,
            f"unit {unit.prefix} withdrawn (pod {unit.pod})",
        )

    # -- batch drills ---------------------------------------------------

    def apply(self, kind: str, unit: AssignmentUnit) -> ChangeRecord:
        """Apply one change kind to one unit."""
        if kind == "operator-swap":
            return self.swap_operator(unit)
        if kind == "pod-reassign":
            return self.reassign_pod(unit)
        if kind == "block-split":
            return self.split_block(unit)
        if kind == "block-remove":
            return self.remove_block(unit)
        raise WorldGenError(f"unknown churn kind {kind!r}")

    def inject_standard(self, seed: int) -> list[ChangeRecord]:
        """One change of each kind, on units in pairwise-distinct /16s.

        Distinct /16s keep the drills independently observable: a
        withdrawn unit's fallback answer declares a /16 scope, and a
        second change hiding inside that skip window would be invisible
        to a full rescan too — a property under test, not a drill.
        """
        records: list[ChangeRecord] = []
        taken: set[int] = set()
        for kind in self.KINDS:
            eligible = [
                unit
                for unit in self._eligible(kind)
                if not any(
                    block in taken
                    for block in range(
                        unit.prefix.value >> 16,
                        (unit.prefix.broadcast_value >> 16) + 1,
                    )
                )
            ]
            if not eligible:
                raise WorldGenError(f"no eligible unit left for {kind}")
            unit = eligible[
                _churn_key(f"churn:{kind}:{seed}") % len(eligible)
            ]
            taken.update(
                range(
                    unit.prefix.value >> 16,
                    (unit.prefix.broadcast_value >> 16) + 1,
                )
            )
            records.append(self.apply(kind, unit))
        return records
