"""AS-relationship graph construction for a world.

Builds the business-relationship hierarchy the AS-path analyses run on:

* three tier-1 transit ASes (full mesh of peers);
* two regional transit ASes per region — customers of two tier-1s,
  peering with each other inside the region;
* every client AS buys transit from one or two regional transits of its
  region;
* the relay/CDN operators are multihomed customers of all tier-1s —
  except that **AS36183's only peering link is to Akamai's AS20940**,
  the paper's observation about the relay AS's connectivity.
"""

from __future__ import annotations

from repro.netmodel.asn import WellKnownAS
from repro.netmodel.aspath import ASGraph
from repro.netmodel.geo import REGIONS
from repro.worldgen.config import WorldConfig
from repro.worldgen.internet import (
    DNS_SERVICE_ASN,
    HIJACK_ASN,
    RESOLVER_BLOCKS,
    VANTAGE_ASN,
    InternetGround,
)

#: Tier-1 transit AS numbers (Lumen, Arelion, Cogent).
TIER1_ASNS: tuple[int, ...] = (3356, 1299, 174)

#: Base number for the synthetic regional transit ASes.
_REGIONAL_BASE = 60_000


def regional_transit_asns(region: str) -> tuple[int, int]:
    """The two regional transit AS numbers of a region."""
    index = REGIONS.index(region)
    return (_REGIONAL_BASE + 2 * index, _REGIONAL_BASE + 2 * index + 1)


def build_as_graph(config: WorldConfig, ground: InternetGround) -> ASGraph:
    """Construct the relationship graph for a generated world."""
    graph = ASGraph()
    # Tier-1 full mesh.
    for i, a in enumerate(TIER1_ASNS):
        for b in TIER1_ASNS[i + 1:]:
            graph.add_peer(a, b)
    # Regional transits: dual-homed to tier-1s, peering regionally.
    for region in REGIONS:
        first, second = regional_transit_asns(region)
        index = REGIONS.index(region)
        graph.add_customer(TIER1_ASNS[index % 3], first)
        graph.add_customer(TIER1_ASNS[(index + 1) % 3], first)
        graph.add_customer(TIER1_ASNS[(index + 1) % 3], second)
        graph.add_customer(TIER1_ASNS[(index + 2) % 3], second)
        graph.add_peer(first, second)
    # Client ASes attach to their region's transits.
    gazetteer = ground.gazetteer
    for client in ground.client_ases:
        region = gazetteer.region_of(client.country)
        first, second = regional_transit_asns(region)
        choice = client.asys.number % 3
        if choice == 0:
            graph.add_customer(first, client.asys.number)
        elif choice == 1:
            graph.add_customer(second, client.asys.number)
        else:  # multihomed
            graph.add_customer(first, client.asys.number)
            graph.add_customer(second, client.asys.number)
    # Operators: multihomed to every tier-1.
    operators = (
        int(WellKnownAS.APPLE),
        int(WellKnownAS.AKAMAI_PR),
        int(WellKnownAS.AKAMAI_EG),
        int(WellKnownAS.CLOUDFLARE),
        int(WellKnownAS.FASTLY),
    )
    for asn in operators:
        for tier1 in TIER1_ASNS:
            graph.add_customer(tier1, asn)
    # The paper's observation: AS36183's single visible peering link.
    graph.add_peer(int(WellKnownAS.AKAMAI_PR), int(WellKnownAS.AKAMAI_EG))
    # Infrastructure ASes.
    eu = regional_transit_asns("EU")
    graph.add_customer(eu[0], VANTAGE_ASN)
    for asn in (DNS_SERVICE_ASN, HIJACK_ASN):
        graph.add_customer(TIER1_ASNS[0], asn)
        graph.add_customer(TIER1_ASNS[1], asn)
    for _provider, (_block, asn) in RESOLVER_BLOCKS.items():
        if asn not in graph or not graph.providers_of(asn):
            for tier1 in TIER1_ASNS:
                if asn != tier1:
                    graph.add_customer(tier1, asn)
    return graph
