"""Atlas probe population generation.

Places probes in client ASes with the documented RIPE Atlas properties:
~10k+ probes across ~3.3k ASes and 168 countries with a strong NA/EU
bias, over half behind the big four public resolvers, ~10 % timing out,
a few percent behind relay-blocking resolvers (with the paper's rcode
mix), and exactly one behind a hijacking filter service.
"""

from __future__ import annotations

import random

from repro.atlas.platform import AtlasPlatform
from repro.atlas.probe import Probe
from repro.dns.message import Rcode
from repro.dns.resolver import (
    BlockingResolver,
    HijackingResolver,
    PublicResolver,
    RecursiveResolver,
    Resolver,
    TimeoutResolver,
)
from repro.dns.server import NameServerRegistry
from repro.netmodel.addr import IPAddress
from repro.relay.service import RELAY_DOMAIN_FALLBACK, RELAY_DOMAIN_QUIC
from repro.simtime import SimClock
from repro.worldgen.config import WorldConfig
from repro.worldgen.internet import HIJACK_BLOCK, InternetGround

_BLOCK_RCODES = {
    "NXDOMAIN": Rcode.NXDOMAIN,
    "NOERROR": Rcode.NOERROR,
    "REFUSED": Rcode.REFUSED,
    "SERVFAIL": Rcode.SERVFAIL,
    "FORMERR": Rcode.FORMERR,
}

_RELAY_DOMAINS = [RELAY_DOMAIN_QUIC, RELAY_DOMAIN_FALLBACK]

#: Documentation prefix used for probe IPv6 connectivity flags.
_PROBE_V6_BASE = 0x20010DB8 << 96


def build_probes(
    config: WorldConfig,
    ground: InternetGround,
    registry: NameServerRegistry,
    clock: SimClock,
    probe_countries: list[str],
) -> AtlasPlatform:
    """Build the probe platform for a world."""
    rng = random.Random(config.seed ^ 0xA71A5)
    platform = AtlasPlatform(registry, clock)
    probe_count = config.s(config.atlas_probe_count, 40)

    # --- probe-AS pool: ~3.3k client ASes, weighted by population -----
    by_country: dict[str, list] = {}
    for client in ground.client_ases:
        by_country.setdefault(client.country, []).append(client)
    pool_target = min(config.s(config.atlas_as_count, 20), len(ground.client_ases))
    weighted = sorted(ground.client_ases, key=lambda c: -c.population)
    pool = weighted[:pool_target]
    pool_by_country: dict[str, list] = {}
    for client in pool:
        pool_by_country.setdefault(client.country, []).append(client)

    # --- per-region country lists among the covered 168 ----------------
    gaz = ground.gazetteer
    region_countries: dict[str, list[str]] = {}
    for code in probe_countries:
        if code in pool_by_country:
            region_countries.setdefault(gaz.region_of(code), []).append(code)

    regions = list(config.atlas_region_shares)
    region_weights = [config.atlas_region_shares[r] for r in regions]

    # --- shared public resolver instances per (provider, region) ------
    public_instances: dict[tuple[str, str], PublicResolver] = {}
    for (provider, region), address in ground.resolver_sites.items():
        public_instances[(provider, region)] = PublicResolver(
            registry,
            address,
            provider,
            clock=clock,
            send_ecs=(provider != "Cloudflare"),
        )

    # --- behaviour quotas ----------------------------------------------
    n_timeout = round(probe_count * config.atlas_timeout_fraction)
    n_block = round(probe_count * config.atlas_block_fraction)
    block_plan: list[Rcode] = []
    for name, share in config.atlas_block_rcode_shares.items():
        block_plan.extend([_BLOCK_RCODES[name]] * round(n_block * share))
    while len(block_plan) < n_block:
        block_plan.append(Rcode.NXDOMAIN)
    block_plan = block_plan[:n_block]
    n_hijack = min(config.atlas_hijack_probes, probe_count)
    provider_plan: list[str] = []
    for provider, share in config.atlas_public_resolver_shares.items():
        provider_plan.extend([provider] * round(probe_count * share))

    per_as_counter: dict[int, int] = {}
    hijack_target = IPAddress.parse(HIJACK_BLOCK.split("/")[0]).value + 1

    for probe_id in range(probe_count):
        region = rng.choices(regions, weights=region_weights, k=1)[0]
        countries = region_countries.get(region)
        if not countries:
            # Fallback: any region with covered countries.
            countries = next(
                codes for codes in region_countries.values() if codes
            )
            region = gaz.region_of(countries[0])
        weights = [1.0 / (gaz.country_codes.index(c) + 3.0) for c in countries]
        country = rng.choices(countries, weights=weights, k=1)[0]
        client = rng.choice(pool_by_country[country])
        prefix = client.asys.prefixes[0]
        counter = per_as_counter.get(client.asys.number, 0)
        per_as_counter[client.asys.number] = counter + 1
        # Spread probes across the AS's /24s (a Knuth-hash stride), so
        # probe subnets sample the AS's assignment units uniformly.
        slash24s = prefix.num_addresses() // 256
        block = (counter * 2654435761 + client.asys.number) % slash24s
        address = prefix.address_at(block * 256 + 7)

        local = RecursiveResolver(
            registry,
            IPAddress(4, address.value ^ 1),
            clock=clock,
            send_ecs=False,
            name=f"local-{probe_id}",
        )
        resolver: Resolver = local
        provider: str | None = None
        if probe_id < n_timeout:
            resolver = TimeoutResolver(local.address)
        elif probe_id < n_timeout + len(block_plan):
            resolver = BlockingResolver(
                local, _RELAY_DOMAINS, block_plan[probe_id - n_timeout]
            )
        elif probe_id < n_timeout + len(block_plan) + n_hijack:
            resolver = HijackingResolver(
                local, _RELAY_DOMAINS, IPAddress(4, hijack_target)
            )
        elif provider_plan:
            provider = provider_plan.pop()
            site = public_instances.get((provider, region))
            if site is None:
                site = next(
                    inst for (p, _r), inst in public_instances.items() if p == provider
                )
            resolver = site

        address_v6 = None
        if rng.random() < config.atlas_ipv6_fraction:
            address_v6 = IPAddress(6, _PROBE_V6_BASE + (probe_id << 16) + 1)

        platform.add_probe(
            Probe(
                probe_id=probe_id,
                asn=client.asys.number,
                country=country,
                region=region,
                address=address,
                resolver=resolver,
                address_v6=address_v6,
                resolver_provider=provider,
            )
        )
    return platform
