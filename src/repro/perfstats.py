"""Hit/miss counters for the fast-path caches.

Every cache added by the scan fast path (name interning, scope-block
answer plans, zone routing, origin memoisation, assignment memoisation)
exposes one of these so the perf harness — and, later, a metrics
exporter — can observe cache effectiveness without poking at cache
internals.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class CacheStats:
    """Counts cache hits and misses (and explicit invalidations)."""

    hits: int = 0
    misses: int = 0
    invalidations: int = 0

    @property
    def lookups(self) -> int:
        """Total lookups observed."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from cache (0.0 when unused)."""
        total = self.lookups
        return self.hits / total if total else 0.0

    def reset(self) -> None:
        """Zero all counters."""
        self.hits = 0
        self.misses = 0
        self.invalidations = 0

    def merge(self, other: "CacheStats") -> None:
        """Accumulate another counter set (shard-result aggregation)."""
        self.hits += other.hits
        self.misses += other.misses
        self.invalidations += other.invalidations

    def snapshot(self) -> dict[str, int | float]:
        """A JSON-friendly view (for the perf harness / observability)."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "invalidations": self.invalidations,
            "hit_rate": self.hit_rate,
        }
