"""Hit/miss counters for the fast-path caches.

Every cache added by the scan fast path (name interning, scope-block
answer plans, zone routing, origin memoisation, assignment memoisation)
exposes one of these so the perf harness — and the telemetry exporter —
can observe cache effectiveness without poking at cache internals.

:class:`CacheStats` is a thin adapter over
:class:`repro.telemetry.registry.Counter` instruments: the public
attribute API (``stats.hits += 1``) is unchanged from the original
dataclass, but the underlying counters can be *adopted* by a
:class:`~repro.telemetry.registry.MetricsRegistry` so a telemetry
snapshot sees the live values with zero extra accounting on the hot
path.  Hot loops (e.g. :class:`~repro.dns.answer_cache.ScopeAnswerCache`)
may also grab :meth:`counter` once and bump ``.value`` directly, which
costs exactly what the old dataclass attribute increment cost.

The counter *objects* are part of the contract: :meth:`reset` and the
attribute setters mutate counter values in place and never replace the
counter objects, so references hoisted by hot loops or adopted by a
registry stay live for the lifetime of the stats object.
"""

from __future__ import annotations

from repro.telemetry.registry import Counter


class CacheStats:
    """Counts cache hits and misses (and explicit invalidations)."""

    __slots__ = ("_hits", "_misses", "_invalidations")

    #: Field names, in declaration order (drives merge/reset/snapshot).
    _FIELDS = ("hits", "misses", "invalidations")

    def __init__(
        self, hits: int = 0, misses: int = 0, invalidations: int = 0
    ) -> None:
        self._hits = Counter(hits)
        self._misses = Counter(misses)
        self._invalidations = Counter(invalidations)

    @property
    def hits(self) -> int:
        """Lookups served from cache."""
        return self._hits.value

    @hits.setter
    def hits(self, value: int) -> None:
        self._hits.value = value

    @property
    def misses(self) -> int:
        """Lookups that had to compute the result."""
        return self._misses.value

    @misses.setter
    def misses(self, value: int) -> None:
        self._misses.value = value

    @property
    def invalidations(self) -> int:
        """Explicit cache flushes (epoch changes, zone edits)."""
        return self._invalidations.value

    @invalidations.setter
    def invalidations(self, value: int) -> None:
        self._invalidations.value = value

    def counter(self, field: str) -> Counter:
        """The live Counter behind ``field`` (for registry adoption).

        The returned object stays valid across :meth:`reset` — resets
        zero it in place.
        """
        if field not in self._FIELDS:
            raise KeyError(f"no such CacheStats field: {field!r}")
        return getattr(self, "_" + field)

    @property
    def lookups(self) -> int:
        """Total lookups observed."""
        return self._hits.value + self._misses.value

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from cache (0.0 when unused)."""
        total = self.lookups
        return self._hits.value / total if total else 0.0

    def reset(self) -> None:
        """Zero all counters (in place — hoisted references stay live)."""
        self._hits.value = 0
        self._misses.value = 0
        self._invalidations.value = 0

    def merge(self, other: "CacheStats") -> None:
        """Accumulate another counter set (shard-result aggregation)."""
        self._hits.value += other.hits
        self._misses.value += other.misses
        self._invalidations.value += other.invalidations

    def snapshot(self) -> dict[str, int | float]:
        """A JSON-friendly view (for the perf harness / observability)."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "invalidations": self.invalidations,
            "lookups": self.lookups,
            "hit_rate": self.hit_rate,
        }

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, CacheStats):
            return NotImplemented
        return (
            self.hits == other.hits
            and self.misses == other.misses
            and self.invalidations == other.invalidations
        )

    def __repr__(self) -> str:
        return (
            f"CacheStats(hits={self.hits}, misses={self.misses}, "
            f"invalidations={self.invalidations})"
        )
