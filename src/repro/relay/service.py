"""The iCloud Private Relay control plane.

:class:`PrivateRelayService` wires together everything a client touches:

* the **assignment map** — which ingress operator and regional pod
  serves each client subnet.  This is what the authoritative DNS zone's
  dynamic handlers consult, and its /24-or-coarser granularity is what
  ECS scope answers expose;
* the **DNS zone** for ``mask.icloud.com`` / ``mask-h2.icloud.com``,
  built from the assignment map and the ingress fleets;
* **egress selection** — sticky operator choice with rare re-draws,
  per-connection address rotation within the local pool;
* **tunnel establishment** via the MASQUE layer, producing
  :class:`RelaySession` objects whose legs encode the visibility split;
* the **QUIC listener** behaviour of every ingress address (silent to
  foreign handshakes, version negotiation on unknown versions).
"""

from __future__ import annotations

import bisect
import random
from dataclasses import dataclass, field

from repro.errors import ConnectionFailed, RelayError, RelayUnavailable
from repro.faults.plan import FaultPlan, fault_key
from repro.dns.name import DnsName
from repro.dns.rr import RRType, ResourceRecord, a_record, aaaa_record
from repro.dns.zone import UNCACHED, LookupResult, Zone
from repro.masque.http import ConnectRequest, HttpVersion
from repro.masque.proxy import MasqueTunnel, establish_tunnel
from repro.masque.streams import Direction, PaddingPolicy, TunnelDataPlane
from repro.netmodel.addr import IPAddress, Prefix
from repro.netmodel.asn import WellKnownAS
from repro.netmodel.bgp import RoutingTable
from repro.netmodel.geo import GeoPoint
from repro.netmodel.prefix_trie import DualStackTrie
from repro.quic.endpoint import RelayQuicEndpoint
from repro.relay.egress import EgressFleet
from repro.relay.geohash import geohash_encode
from repro.relay.ingress import IngressFleet, RelayProtocol
from repro.simtime import SimClock
from repro.telemetry import NULL_TELEMETRY, Telemetry

RELAY_DOMAIN_QUIC = "mask.icloud.com."
RELAY_DOMAIN_FALLBACK = "mask-h2.icloud.com."
RELAY_ZONE_APEX = "icloud.com."

#: Maximum address records per DNS response, as observed in the paper
#: ("responses with up to eight different records").
MAX_RECORDS_PER_RESPONSE = 8


class RotationCounters(dict):
    """Per-pod answer-rotation counters with a configurable stream base.

    Behaves as a plain ``dict`` keyed ``(pod, protocol, version)`` except
    that a missing key reads as :attr:`base` instead of raising — with
    the default ``base=0`` the rotation sequence is bit-identical to the
    previous ``dict.get(key, 0)`` behaviour.

    The base is what makes sharded scans deterministic: the rotation
    offset a query observes is the one order-dependent piece of an ECS
    answer, so each shard worker reseeds its replica's counters from
    (campaign seed, shard index) before a task.  Shard results then
    depend only on the shard's own query order, never on which worker
    ran which shard first.
    """

    __slots__ = ("base",)

    def __init__(self, base: int = 0) -> None:
        super().__init__()
        self.base = base

    def __missing__(self, key) -> int:
        return self.base

    def reseed(self, base: int) -> None:
        """Drop all counters and restart every stream at ``base``."""
        self.clear()
        self.base = base

    def delta_snapshot(self) -> dict:
        """Per-key query counts accumulated since the last reseed."""
        base = self.base
        return {key: value - base for key, value in self.items()}

    def apply_deltas(self, deltas: dict) -> None:
        """Advance streams by merged per-key counts (parent-side merge).

        Every key's counter only ever increments by one per query, so the
        merged end state equals the sequential end state whenever the
        per-key query counts match — which the shard partition guarantees
        (same query set, split across shards).
        """
        for key, delta in deltas.items():
            self[key] = self[key] + delta

    def state_snapshot(self) -> dict:
        """A JSON-safe snapshot of the full rotation state.

        Campaign checkpoints persist this so a resumed run's rotation
        streams continue exactly where the killed run's left off — the
        one piece of scan-visible state that lives outside the results.
        """
        return {
            "base": self.base,
            "counters": sorted(
                (
                    [pod, protocol.value, version, count]
                    for (pod, protocol, version), count in self.items()
                ),
                # Unassigned-space streams use a None pod.
                key=lambda row: (row[0] or "", row[1], row[2]),
            ),
        }

    def restore_state(self, state: dict) -> None:
        """Reset to a :meth:`state_snapshot` (checkpoint resume)."""
        self.clear()
        self.base = state["base"]
        for pod, protocol, version, count in state["counters"]:
            self[(pod, RelayProtocol(protocol), version)] = count


@dataclass(frozen=True, slots=True)
class AssignmentUnit:
    """One block of client space and how it is served.

    ``scope_len`` is the granularity the name server declares in its ECS
    scope field: all /24s inside ``prefix`` receive the same answer, and
    a compliant scanner queries the unit only once.
    """

    prefix: Prefix
    scope_len: int
    operator_asn: int
    pod: str

    def __post_init__(self) -> None:
        if self.scope_len < self.prefix.length:
            raise RelayError(
                f"scope /{self.scope_len} wider than assignment prefix {self.prefix}"
            )


class AssignmentMap:
    """Client subnet → assignment unit, with longest-prefix semantics."""

    def __init__(self) -> None:
        self._trie: DualStackTrie[AssignmentUnit] | None = None
        self._units: list[AssignmentUnit] = []
        # Units per address family in start-value order (parallel lists),
        # for the bisect fast path and the planner's overlap probes.
        self._starts: dict[int, list[int]] = {4: [], 6: []}
        self._ends: dict[int, list[int]] = {4: [], 6: []}
        self._sorted_units: dict[int, list[AssignmentUnit]] = {4: [], 6: []}
        self._nested = False
        #: Bumped on every :meth:`add`; participates in the relay zone's
        #: epoch token so cached answer plans never survive a map edit.
        self.version = 0

    def add(self, unit: AssignmentUnit) -> AssignmentUnit:
        """Register a unit."""
        prefix = unit.prefix
        # Detect units nesting inside or covering existing ones.  The
        # planner only hands out block-cacheable answers when units are
        # disjoint — with nesting, one block could span several units —
        # and :meth:`lookup` falls back from bisect to the trie.  Two
        # prefixes either nest or are disjoint (aligned power-of-two
        # ranges cannot partially overlap), so both directions reduce to
        # bisect probes of the sorted starts/ends — the trie itself is
        # only materialised if nesting ever appears (worldgen's ~40 k
        # disjoint units never pay for its node objects).
        starts = self._starts[prefix.version]
        ends = self._ends[prefix.version]
        pos = bisect.bisect_left(starts, prefix.value)
        if pos < len(starts) and starts[pos] <= prefix.broadcast_value:
            self._nested = True
        elif pos > 0 and ends[pos - 1] >= prefix.value:
            self._nested = True
        starts.insert(pos, prefix.value)
        ends.insert(pos, prefix.broadcast_value)
        self._sorted_units[prefix.version].insert(pos, unit)
        if self._trie is not None:
            self._trie.insert(prefix, unit)
        self._units.append(unit)
        self.version += 1
        return unit

    def remove(self, prefix: Prefix) -> AssignmentUnit:
        """Unregister the unit rooted exactly at ``prefix``.

        Deployment churn (block withdrawals, unit replacements) edits a
        live map; bumping :attr:`version` rides the zone's epoch token,
        so every cached answer plan and replay program built against the
        old partition is invalidated the moment the unit disappears.
        The longest-match trie, if one was ever materialised, is dropped
        and lazily rebuilt — removals are rare next to lookups.
        """
        starts = self._starts[prefix.version]
        units = self._sorted_units[prefix.version]
        pos = bisect.bisect_left(starts, prefix.value)
        while pos < len(starts) and starts[pos] == prefix.value:
            if units[pos].prefix == prefix:
                break
            pos += 1
        else:
            raise RelayError(f"no assignment unit rooted at {prefix}")
        unit = units[pos]
        del starts[pos]
        del self._ends[prefix.version][pos]
        del units[pos]
        self._units.remove(unit)
        self._trie = None
        self.version += 1
        return unit

    def _built_trie(self) -> DualStackTrie:
        """The longest-match trie, built on first (nested-path) touch."""
        trie = self._trie
        if trie is None:
            trie = DualStackTrie()
            for unit in self._units:
                trie.insert(unit.prefix, unit)
            self._trie = trie
        return trie

    def __len__(self) -> int:
        return len(self._units)

    def units(self) -> list[AssignmentUnit]:
        """All registered units."""
        return list(self._units)

    @property
    def has_nested_units(self) -> bool:
        """Whether any two registered units overlap or nest."""
        return self._nested

    def overlaps_block(self, block: Prefix) -> bool:
        """Whether any unit intersects ``block`` (covers it or starts in it)."""
        starts = self._starts[block.version]
        pos = bisect.bisect_left(starts, block.value)
        if pos < len(starts) and starts[pos] <= block.broadcast_value:
            return True
        # A preceding unit whose range reaches the block's start covers
        # the whole block (prefix ranges nest or are disjoint).
        return pos > 0 and self._ends[block.version][pos - 1] >= block.value

    def units_in_range(
        self, version: int, lo: int, hi: int
    ) -> list[AssignmentUnit]:
        """Units of one address family intersecting ``[lo, hi]``, in order.

        Only meaningful for disjoint units (the replay-program compiler
        checks :attr:`has_nested_units` first): includes a unit whose
        range merely reaches into the window from below, then every unit
        starting inside it.
        """
        starts = self._starts[version]
        ends = self._ends[version]
        pos = bisect.bisect_right(starts, lo) - 1
        if pos < 0 or ends[pos] < lo:
            pos += 1
        # Units starting inside the window are exactly starts[pos:stop]
        # (starts is sorted), so the walk collapses to one C-level slice.
        stop = bisect.bisect_right(starts, hi)
        return self._sorted_units[version][pos:stop]

    def range_view(
        self, version: int, lo: int, hi: int
    ) -> tuple[list[int], list[int], list[AssignmentUnit], int, int]:
        """The :meth:`units_in_range` window as parallel lists plus bounds.

        Returns ``(starts, ends, units, pos, stop)`` — the full sorted
        per-family lists and the ``[pos, stop)`` index window — so bulk
        consumers (the replay-program compiler) can walk unit bounds as
        plain ints without touching prefix objects.  Same intersection
        semantics as :meth:`units_in_range`.
        """
        starts = self._starts[version]
        ends = self._ends[version]
        pos = bisect.bisect_right(starts, lo) - 1
        if pos < 0 or ends[pos] < lo:
            pos += 1
        stop = bisect.bisect_right(starts, hi)
        return starts, ends, self._sorted_units[version], pos, stop

    def lookup(self, subnet: Prefix) -> AssignmentUnit | None:
        """The unit serving a client subnet, or None if unserved.

        A covering unit wins; a subnet wider than its unit still matches
        by its first address.  With disjoint units both cases reduce to
        "the unit containing the subnet's first address", found by one
        bisect; nested units take the (slower, longest-match) trie path.
        """
        if self._nested:
            trie = self._built_trie()
            hit = trie.covering(subnet)
            if hit is not None:
                return hit[1]
            hit2 = trie.lookup(subnet.network_address)
            return hit2[1] if hit2 else None
        version = subnet.version
        starts = self._starts[version]
        pos = bisect.bisect_right(starts, subnet.value) - 1
        if pos >= 0 and self._ends[version][pos] >= subnet.value:
            return self._sorted_units[version][pos]
        return None


@dataclass
class RelaySession:
    """An established relay connection of one client."""

    tunnel: MasqueTunnel
    protocol: RelayProtocol
    ingress_address: IPAddress
    ingress_asn: int
    egress_operator_asn: int
    egress_address: IPAddress
    egress_asn: int
    geohash: str | None
    established_at: float
    data_plane: TunnelDataPlane = field(default_factory=TunnelDataPlane)

    #: Nominal request/response sizes for an observation fetch.
    _REQUEST_BYTES = 420
    _RESPONSE_BYTES = 2800

    def fetch(self, target, path: str = "/", tool: str = "curl") -> str:
        """Fetch from an observation target through the tunnel.

        ``target`` is an :class:`~repro.relay.observer.ObservationServer`
        or :class:`~repro.relay.observer.EchoService` — either way it
        observes only the egress address.  The exchange is accounted on
        a fresh tunnel stream, so on-path observers see (padded) sizes.
        """
        stream = self.data_plane.open_stream(self.established_at)
        self.data_plane.send(stream.stream_id, self._REQUEST_BYTES, Direction.UP)
        body = target.handle_request(
            timestamp=self.established_at,
            requester=self.egress_address,
            requester_asn=self.egress_asn,
            tool=tool,
            path=path,
        )
        self.data_plane.send(
            stream.stream_id,
            max(len(body), self._RESPONSE_BYTES),
            Direction.DOWN,
        )
        self.data_plane.close_stream(stream.stream_id)
        return body


@dataclass
class _ClientEgressState:
    """Sticky egress-operator state for one client."""

    operator_asn: int
    chosen_at: float


class _PodSupplier:
    """The epoch-stable relay roster for one (name, pod, operator) target.

    Every assignment unit pointing at the same pod serves the same relay
    list, rotation counter, and record objects — only the declared scope
    differs per unit.  Suppliers are memoised per deployment epoch on the
    service, so record construction happens once per rotation offset per
    epoch instead of once per query.  Rotations are stored as tuples: the
    server's ``tuple(result.records)`` then costs nothing.
    """

    __slots__ = (
        "relays",
        "counter_key",
        "_name",
        "_version",
        "_rotations",
        "_addr_rotations",
    )

    def __init__(
        self,
        name: DnsName,
        pod: str | None,
        protocol: RelayProtocol,
        version: int,
        relays: list,
    ) -> None:
        self.relays = relays
        self.counter_key = (pod, protocol, version)
        self._name = name
        self._version = version
        self._rotations: dict[int, tuple[ResourceRecord, ...]] = {}
        self._addr_rotations: dict[int, tuple[IPAddress, ...]] = {}

    def rotation(self, start: int) -> tuple[ResourceRecord, ...]:
        """The ≤8-record answer window beginning at relay index ``start``."""
        out = self._rotations.get(start)
        if out is None:
            relays = self.relays
            total = len(relays)
            count = (
                MAX_RECORDS_PER_RESPONSE
                if total > MAX_RECORDS_PER_RESPONSE
                else total
            )
            make = a_record if self._version == 4 else aaaa_record
            name = self._name
            out = tuple(
                make(name, relays[(start + i) % total].address)
                for i in range(count)
            )
            self._rotations[start] = out
        return out

    def rotation_addresses(self, start: int) -> tuple[IPAddress, ...]:
        """The address tuple of the rotation window at ``start``.

        The batch-replay kernel consumes addresses directly (it never
        builds record objects), so the window is sliced straight from
        the relay roster — the same ``relays[(start + i) % total]``
        walk :meth:`rotation` wraps in records — without constructing
        the records at all.  Both views hand out the *same* address
        objects, so identity-based dedup works across paths.
        """
        out = self._addr_rotations.get(start)
        if out is None:
            relays = self.relays
            total = len(relays)
            count = (
                MAX_RECORDS_PER_RESPONSE
                if total > MAX_RECORDS_PER_RESPONSE
                else total
            )
            out = tuple(relays[(start + i) % total].address for i in range(count))
            self._addr_rotations[start] = out
        return out


class _BlockAnswer:
    """One client block's relay answer, replayed per query.

    Pairs a shared :class:`_PodSupplier` with the block's unit and
    declared scope.  The impure tail (the pod's rotation counter) runs in
    :meth:`produce` on every query, cached or not, so the answer sequence
    is bit-identical to the plain handler's.
    """

    __slots__ = ("_counters", "_supplier", "unit", "scope", "replay")

    def __init__(
        self,
        counters: dict,
        supplier: _PodSupplier,
        unit: AssignmentUnit | None,
        scope: int | None,
    ) -> None:
        self._counters = counters
        self._supplier = supplier
        self.unit = unit
        self.scope = scope
        #: The flat replay spec (see :meth:`replay_spec`), prebuilt:
        #: answers are immutable and the program compiler reads one spec
        #: per answer per epoch, so an attribute beats a method call.
        self.replay = (
            scope,
            counters,
            supplier.counter_key,
            len(supplier.relays),
            supplier,
        )

    def produce(self) -> LookupResult:
        supplier = self._supplier
        relays = supplier.relays
        if not relays:
            return LookupResult(exists=True, records=(), scope_override=self.scope)
        counters = self._counters
        key = supplier.counter_key
        # A missing key reads as the counters' stream base (0 outside
        # sharded execution), via RotationCounters.__missing__.
        offset = counters[key]
        counters[key] = offset + 1
        start = offset % len(relays)
        records = supplier._rotations.get(start)
        if records is None:
            records = supplier.rotation(start)
        return LookupResult(exists=True, records=records, scope_override=self.scope)

    def replay_spec(self) -> tuple:
        """The flat spec the batch-replay kernel links against.

        ``(scope override, rotation counters, counter key, relay count,
        supplier)`` — everything :meth:`produce` consults, exposed so the
        kernel can advance the rotation stream with per-batch local
        counts and fetch answer windows via
        :meth:`_PodSupplier.rotation_addresses`, reproducing produce()'s
        sequence exactly without per-query LookupResult objects.
        """
        return self.replay


@dataclass
class PrivateRelayService:
    """The relay network's control and data plane."""

    clock: SimClock
    ingress_v4: IngressFleet
    ingress_v6: IngressFleet
    egress_fleet: EgressFleet
    assignment: AssignmentMap
    routing: RoutingTable
    rng: random.Random = field(default_factory=lambda: random.Random(0x1C10))
    #: Probability that an established client re-draws its egress operator
    #: on a new connection (a handful of changes across a day of 5-minute
    #: scans => order 1e-2).
    operator_switch_probability: float = 0.012
    #: Countries where local law forbids the service (requests refused).
    unavailable_countries: frozenset[str] = frozenset({"CN", "BY", "SA"})
    #: Observable-size quantisation of tunnel traffic (0 = no padding).
    padding: PaddingPolicy = field(default_factory=lambda: PaddingPolicy(512))
    #: Observability sink for connection-plane counters (ingress
    #: selections, sticky/switch egress-operator draws, refusals).  The
    #: DNS answer path is *not* instrumented here — it is per-query hot
    #: and accounted by the server/cache counters instead.
    telemetry: Telemetry = field(default=NULL_TELEMETRY, repr=False)
    #: Deterministic fault plan for the connection plane (None = no
    #: injection).  Transient connect failures are keyed by (client key,
    #: per-client attempt ordinal), so a retrying client re-draws and a
    #: persistent one eventually connects.
    fault_plan: "FaultPlan | None" = field(default=None, repr=False)
    _operator_state: dict[str, _ClientEgressState] = field(default_factory=dict)
    _connect_attempts: dict[str, int] = field(default_factory=dict, repr=False)
    _quic_endpoints: dict[IPAddress, RelayQuicEndpoint] = field(default_factory=dict)
    _pod_counters: RotationCounters = field(default_factory=RotationCounters)
    #: Window cache for :meth:`_deployment_epoch_token` — the token is
    #: constant between deployment boundaries, but the clock advances on
    #: every rate-limited scan query, so the token would otherwise be
    #: recomputed per query.  Layout: (valid_from, valid_until, v4
    #: generation, v6 generation, assignment version, token).
    _epoch_token_window: tuple | None = field(default=None, repr=False)

    # ------------------------------------------------------------------
    # DNS: the authoritative zone for the relay domains
    # ------------------------------------------------------------------

    def build_zone(self) -> Zone:
        """The ``icloud.com`` zone with dynamic relay-domain handlers.

        Each relay name registers both a per-query handler (the reference
        path) and a planner (the answer-cache fast path); the zone's
        epoch token is extended with the fleets' deployment epochs so
        cached plans never outlive a relay activation or retirement.
        """
        zone = Zone(RELAY_ZONE_APEX)
        for domain, protocol in (
            (RELAY_DOMAIN_QUIC, RelayProtocol.QUIC),
            (RELAY_DOMAIN_FALLBACK, RelayProtocol.TCP_FALLBACK),
        ):
            name = DnsName.parse(domain)
            for rtype, version in ((RRType.A, 4), (RRType.AAAA, 6)):
                derive, make_enumerator = self._make_deriver(protocol, version)
                zone.add_dynamic(
                    name,
                    rtype,
                    self._make_handler(derive),
                    planner=self._make_planner(derive),
                )
                if version == 4:
                    # The batch-replay scan kernel covers the v4 ECS
                    # enumeration (the paper's scan); v6 names keep the
                    # per-query path.
                    zone.add_replay_enumerator(name, rtype, make_enumerator(name))
        zone.add_epoch_source(
            self._deployment_epoch_token, horizon=self._deployment_epoch_horizon
        )
        zone.add_mutation_source(self._mutation_token)
        zone.add_shard_hook(self._pod_counters)
        return zone

    def _mutation_token(self) -> tuple[int, int, int]:
        """Assignment-map and fleet-composition versions — no time terms.

        Everything here changes only when the served world is *edited*
        (a deployment push, a fleet roster change), never from a clock
        advance: forked world replicas stay valid across months but go
        stale the moment any of these bump.
        """
        return (
            self.assignment.version,
            self.ingress_v4.epoch_generation,
            self.ingress_v6.epoch_generation,
        )

    def _deployment_epoch_token(self) -> tuple[int, int, int]:
        """Fleet deployment epochs (current simulated time) + map version.

        The token only changes at deployment boundaries, fleet
        composition edits, or assignment-map edits; inside a validity
        window the cached token object is returned as-is (this runs once
        per query on the scan fast path).
        """
        now = self.clock.now
        v4 = self.ingress_v4
        v6 = self.ingress_v6
        window = self._epoch_token_window
        if (
            window is not None
            and window[0] <= now < window[1]
            and window[2] == v4.epoch_generation
            and window[3] == v6.epoch_generation
            and window[4] == self.assignment.version
        ):
            return window[5]
        lo4, hi4, e4 = v4.deployment_epoch_window(now)
        lo6, hi6, e6 = v6.deployment_epoch_window(now)
        token = (e4, e6, self.assignment.version)
        self._epoch_token_window = (
            max(lo4, lo6),
            min(hi4, hi6),
            v4.epoch_generation,
            v6.epoch_generation,
            self.assignment.version,
            token,
        )
        return token

    def _deployment_epoch_horizon(self) -> float:
        """Until when (sim time) the current deployment token holds.

        The zone registers this next to the token source: batch scan
        execution replays cached answers without re-validating the token
        for any ``clock.now`` strictly below the horizon.  Fleet
        composition and assignment-map edits bump generations/versions
        between scans, never mid-scan, so the deployment window's end is
        the only mid-scan boundary.
        """
        self._deployment_epoch_token()
        return self._epoch_token_window[1]

    def _make_deriver(self, protocol: RelayProtocol, version: int):
        """The epoch-stable answer derivation shared by handler and planner.

        Returns ``(derive, make_enumerator)``.  ``derive`` is the
        per-query closure with everything the hot path needs bound
        locally — the fleet, the assignment map's lookup, the shared pod
        counters — plus a supplier memo keyed only ``(pod, operator,
        deployment epoch)``: one deriver serves exactly one registered
        (name, rtype), so name/protocol/version need not be in the key.
        ``make_enumerator(name)`` builds the zone's replay-range
        enumerator over the same memos, so a compiled program's answer
        objects are the very ones per-query lookups would hand out.
        """
        fleet = self.ingress_v4 if version == 4 else self.ingress_v6
        assignment = self.assignment
        lookup_unit = assignment.lookup
        counters = self._pod_counters
        clock = self.clock
        deployment_epoch = fleet.deployment_epoch
        fallback_asn = int(WellKnownAS.AKAMAI_PR)
        memo: dict[tuple[str, int, int], _PodSupplier] = {}
        # Everything in a _BlockAnswer is epoch-stable (the impure tail
        # lives in the *shared* counters, consulted inside produce()), so
        # one answer object serves every query of a unit within an epoch.
        # Keyed by the unit's identity — units are retained by both the
        # assignment map and the memoised answer, so ids cannot be
        # reissued.  Unassigned space collapses to two keys: fallback
        # answers declare a /16 scope for v4 subnets and none otherwise.
        answer_memo: dict[tuple[int, int], _BlockAnswer] = {}

        def answer_for(
            name: DnsName, unit: AssignmentUnit | None, subnet_v4: bool
        ) -> _BlockAnswer:
            epoch = deployment_epoch(clock.now)
            generation = fleet.epoch_generation
            if unit is not None:
                answer_key = (id(unit), epoch, generation)
            elif subnet_v4:
                answer_key = (1, epoch, generation)
            else:
                answer_key = (0, epoch, generation)
            answer = answer_memo.get(answer_key)
            if answer is not None:
                return answer
            if unit is None:
                # Unserved space still resolves: the control plane falls
                # back to the dominant operator's default pod.  Responses
                # stay single-AS ("all response records are in the same
                # AS", as the paper observed).
                pods = [p for p in fleet.pods_sorted() if not p.startswith("CC:")]
                if not pods:
                    supplier = _PodSupplier(name, None, protocol, version, [])
                    answer = _BlockAnswer(counters, supplier, None, None)
                    answer_memo[answer_key] = answer
                    return answer
                # Unassigned space is served uniformly, and the answer is
                # declared valid for a wide (/16) scope.
                unit_pod = pods[0]
                operator_asn = fallback_asn
                scope = 16 if subnet_v4 else None
            else:
                unit_pod = unit.pod
                operator_asn = unit.operator_asn
                scope = unit.scope_len
            now = clock.now
            memo_key = (unit_pod, operator_asn, epoch)
            supplier = memo.get(memo_key)
            if supplier is None:
                relays = fleet.pod_relays_cached(unit_pod, protocol, now)
                if operator_asn is not None:
                    relays = [r for r in relays if r.asn == operator_asn]
                if not relays:
                    # The pod has no relay of the assigned operator (yet):
                    # spill over to that operator's fleet-wide relays.  If
                    # the operator has none at all for this protocol — as
                    # for the Akamai TCP-fallback fleet before March 2022 —
                    # any active relay of the protocol serves, which is
                    # exactly how the fallback layer was "initially served
                    # by Apple".
                    relays = fleet.active_cached(
                        now, protocol, asn=operator_asn
                    ) or fleet.active_cached(now, protocol)
                supplier = _PodSupplier(name, unit_pod, protocol, version, relays)
                memo[memo_key] = supplier
            answer = _BlockAnswer(counters, supplier, unit, scope)
            answer_memo[answer_key] = answer
            return answer

        def derive(name: DnsName, client_subnet: Prefix | None) -> _BlockAnswer:
            unit = lookup_unit(client_subnet) if client_subnet is not None else None
            return answer_for(
                name,
                unit,
                client_subnet is not None and client_subnet.version == 4,
            )

        # Spec-dedup keys per unit index (parallel to the assignment's
        # sorted unit list), rebuilt when the map changes: a replay spec
        # depends on its unit only through these three fields, so one
        # spec serves every unit sharing them.
        spec_keys: list[tuple] = []
        spec_keys_version = -1

        def make_enumerator(name: DnsName):
            def enumerate_answers(lo: int, hi: int) -> tuple[list, list] | None:
                """``(rows, specs)`` covering [lo, hi] contiguously.

                ``rows`` holds ``(start, end, spec index)`` triples — one
                per assignment unit intersecting the range, with fallback
                rows filling unassigned space between and around them —
                and ``specs`` the referenced replay tuples (see
                :meth:`_BlockAnswer.replay_spec`): the exact per-subnet
                partition ``derive`` induces for v4 ECS queries in the
                current epoch.  A spec depends on its unit only through
                (pod, operator AS, scope), so specs deduplicate on that
                key — tens of thousands of units collapse to a few
                hundred distinct answers, and the derivation (supplier
                lookup, relay filtering) runs once per distinct key, not
                once per unit.  Nested units make a flat partition
                ambiguous; the compiler falls back to per-query lookups
                then.
                """
                nonlocal spec_keys, spec_keys_version
                if assignment.has_nested_units:
                    return None
                starts, ends, units, pos, stop = assignment.range_view(
                    version, lo, hi
                )
                if spec_keys_version != assignment.version:
                    spec_keys = [
                        (u.pod, u.operator_asn, u.scope_len) for u in units
                    ]
                    spec_keys_version = assignment.version
                rows: list = []
                specs: list = []
                append = rows.append
                spec_map: dict = {}
                spec_get = spec_map.get
                cursor = lo
                fallback_index = -1
                for i in range(pos, stop):
                    unit_start = starts[i]
                    if unit_start > cursor:
                        if fallback_index < 0:
                            fallback_index = len(specs)
                            specs.append(
                                answer_for(name, None, True).replay_spec()
                            )
                        append((cursor, unit_start - 1, fallback_index))
                        cursor = unit_start
                    key = spec_keys[i]
                    index = spec_get(key)
                    if index is None:
                        index = spec_map[key] = len(specs)
                        specs.append(
                            answer_for(name, units[i], True).replay_spec()
                        )
                    unit_end = ends[i]
                    append((cursor, unit_end if unit_end < hi else hi, index))
                    cursor = unit_end + 1
                    if cursor > hi:
                        break
                if cursor <= hi:
                    if fallback_index < 0:
                        fallback_index = len(specs)
                        specs.append(answer_for(name, None, True).replay_spec())
                    append((cursor, hi, fallback_index))
                return rows, specs

            return enumerate_answers

        return derive, make_enumerator

    def _make_handler(self, derive):
        def handler(
            name: DnsName, client_subnet: Prefix | None
        ) -> tuple[tuple[ResourceRecord, ...], int | None]:
            result = derive(name, client_subnet).produce()
            return result.records, result.scope_override

        return handler

    def _make_planner(self, derive):
        assignment = self.assignment

        def planner(name: DnsName, client_subnet: Prefix | None):
            answer = derive(name, client_subnet)
            if client_subnet is None:
                # Every subnet-less query derives identically.
                return None, answer
            unit = answer.unit
            if unit is not None:
                # Every subnet inside the unit's prefix derives the same
                # answer, so the plan's validity region is the whole unit
                # — typically wider than the declared ECS scope, which is
                # what turns a scope-pruned scan (one query per declared
                # block) into cache hits.  With nested units a block
                # could straddle assignments, so don't store then.
                if assignment.has_nested_units:
                    return UNCACHED, answer
                return unit.prefix, answer
            scope = answer.scope
            if scope is None or scope > client_subnet.length:
                # No declared validity block, or one narrower than the
                # query's own granularity: single-use only.
                return UNCACHED, answer
            if scope == client_subnet.length:
                # The subnet's value is already network-masked.
                block = client_subnet
            else:
                block = client_subnet.truncate(scope)
            if assignment.overlaps_block(block):
                # Fallback answer, but part of the declared /16 is
                # assigned: subnets inside the block differ.
                return UNCACHED, answer
            return block, answer

        return planner

    # ------------------------------------------------------------------
    # QUIC listener surface
    # ------------------------------------------------------------------

    def quic_endpoint_for(self, address: IPAddress) -> RelayQuicEndpoint | None:
        """The QUIC listener at an address, or None (probe times out).

        Only active QUIC-protocol ingress relays listen; fallback relays
        and retired addresses produce silence.
        """
        fleet = self.ingress_v4 if address.version == 4 else self.ingress_v6
        active = fleet.active_addresses(self.clock.now, RelayProtocol.QUIC)
        if address not in active:
            return None
        endpoint = self._quic_endpoints.get(address)
        if endpoint is None:
            endpoint = RelayQuicEndpoint()
            self._quic_endpoints[address] = endpoint
        return endpoint

    # ------------------------------------------------------------------
    # Connection establishment
    # ------------------------------------------------------------------

    def connect(
        self,
        client_address: IPAddress,
        client_asn: int,
        client_country: str,
        client_location: GeoPoint | None,
        ingress_address: IPAddress,
        target_authority: str,
        target_port: int = 80,
        preserve_location: bool = True,
        client_key: str | None = None,
        protocol: RelayProtocol = RelayProtocol.QUIC,
    ) -> RelaySession:
        """Establish one relayed connection through a chosen ingress.

        Raises :class:`RelayUnavailable` when the service does not serve
        the client's country, and :class:`RelayError` when the ingress
        address is not an active relay of the requested protocol.
        """
        registry = self.telemetry.registry
        if client_country in self.unavailable_countries:
            registry.counter("relay.connect_refused", reason="country_unavailable").inc()
            raise RelayUnavailable(
                f"iCloud Private Relay is not offered in {client_country}"
            )
        fleet = (
            self.ingress_v4 if ingress_address.version == 4 else self.ingress_v6
        )
        active = fleet.active_addresses(self.clock.now, protocol)
        if ingress_address not in active:
            registry.counter("relay.connect_refused", reason="inactive_ingress").inc()
            raise RelayError(
                f"{ingress_address} is not an active {protocol.value} ingress relay"
            )
        ingress_asn = self.routing.origin_of(ingress_address)
        if ingress_asn is None:
            registry.counter("relay.connect_refused", reason="unrouted_ingress").inc()
            raise RelayError(f"ingress address {ingress_address} is unrouted")
        key = client_key or str(client_address)
        plan = self.fault_plan
        if plan is not None and plan.connect_active:
            # Injected before operator selection: a failed handshake never
            # consumes an egress draw, so sticky-operator state is
            # unaffected by how many retries a client needed.
            sequence = self._connect_attempts.get(key, 0)
            self._connect_attempts[key] = sequence + 1
            if plan.connect_fails(fault_key(key), sequence):
                registry.counter(
                    "relay.connect_refused", reason="fault_injected"
                ).inc()
                registry.counter("faults.injected", surface="relay",
                                 kind="connect").inc()
                raise ConnectionFailed(
                    f"transient connection failure to {ingress_address} (injected)"
                )
        operator_asn = self._select_operator(key, client_country)
        pool = self.egress_fleet.pool_for(operator_asn, client_country)
        egress_address = pool.select(key, self.rng)
        registry.counter("relay.egress_selections").inc()
        egress_asn = self.routing.origin_of(egress_address)
        if egress_asn is None:
            registry.counter("relay.connect_refused", reason="unrouted_egress").inc()
            raise RelayError(f"egress address {egress_address} is unrouted")
        request = ConnectRequest(
            authority=target_authority,
            port=target_port,
            http_version=HttpVersion.H3
            if protocol is RelayProtocol.QUIC
            else HttpVersion.H2,
        )
        tunnel, response = establish_tunnel(
            client_address=client_address,
            client_asn=client_asn,
            ingress_address=ingress_address,
            ingress_asn=ingress_asn,
            egress_service_address=egress_address,
            egress_service_asn=egress_asn,
            egress_address=egress_address,
            egress_asn=egress_asn,
            request=request,
            established_at=self.clock.now,
        )
        if tunnel is None:
            registry.counter("relay.connect_refused", reason="proxy_rejected").inc()
            raise RelayUnavailable(f"proxy rejected connection: {response.reason}")
        registry.counter("relay.connects", protocol=protocol.value).inc()
        geohash = None
        if preserve_location and client_location is not None:
            geohash = geohash_encode(client_location)
        return RelaySession(
            tunnel=tunnel,
            protocol=protocol,
            ingress_address=ingress_address,
            ingress_asn=ingress_asn,
            egress_operator_asn=operator_asn,
            egress_address=egress_address,
            egress_asn=egress_asn,
            geohash=geohash,
            established_at=self.clock.now,
            data_plane=TunnelDataPlane(self.padding),
        )

    def _select_operator(self, client_key: str, client_country: str) -> int:
        registry = self.telemetry.registry
        state = self._operator_state.get(client_key)
        weights = self.egress_fleet.operators_for(client_country)
        if not weights:
            registry.counter("relay.connect_refused", reason="no_operator").inc()
            raise RelayUnavailable(
                f"no egress operator present for {client_country}"
            )
        if state is not None and state.operator_asn in weights:
            if self.rng.random() >= self.operator_switch_probability:
                registry.counter("relay.operator_sticky").inc()
                return state.operator_asn
        operator_asn = self.egress_fleet.choose_operator(client_country, self.rng)
        if state is not None:
            registry.counter("relay.operator_switches").inc()
        self._operator_state[client_key] = _ClientEgressState(
            operator_asn, self.clock.now
        )
        return operator_asn

    # ------------------------------------------------------------------
    # Appendix-B behaviours
    # ------------------------------------------------------------------

    def management_connection_target(self, ingress_address: IPAddress) -> IPAddress:
        """Where the client's extra management QUIC connection goes.

        The paper observed that shortly after connecting, clients open an
        additional QUIC connection to an address "in the prefix (or AS in
        the dual stack case) of the configured ingress".
        """
        prefix = self.routing.routed_prefix_of(ingress_address)
        if prefix is None:
            raise RelayError(f"{ingress_address} is unrouted")
        offset = (ingress_address.value - prefix.value + 1) % prefix.num_addresses()
        return prefix.address_at(offset)
