"""The iCloud Private Relay control plane.

:class:`PrivateRelayService` wires together everything a client touches:

* the **assignment map** — which ingress operator and regional pod
  serves each client subnet.  This is what the authoritative DNS zone's
  dynamic handlers consult, and its /24-or-coarser granularity is what
  ECS scope answers expose;
* the **DNS zone** for ``mask.icloud.com`` / ``mask-h2.icloud.com``,
  built from the assignment map and the ingress fleets;
* **egress selection** — sticky operator choice with rare re-draws,
  per-connection address rotation within the local pool;
* **tunnel establishment** via the MASQUE layer, producing
  :class:`RelaySession` objects whose legs encode the visibility split;
* the **QUIC listener** behaviour of every ingress address (silent to
  foreign handshakes, version negotiation on unknown versions).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.errors import RelayError, RelayUnavailable
from repro.dns.name import DnsName
from repro.dns.rr import RRType, ResourceRecord, a_record, aaaa_record
from repro.dns.zone import Zone
from repro.masque.http import ConnectRequest, HttpVersion
from repro.masque.proxy import MasqueTunnel, establish_tunnel
from repro.masque.streams import Direction, PaddingPolicy, TunnelDataPlane
from repro.netmodel.addr import IPAddress, Prefix
from repro.netmodel.asn import WellKnownAS
from repro.netmodel.bgp import RoutingTable
from repro.netmodel.geo import GeoPoint
from repro.netmodel.prefix_trie import DualStackTrie
from repro.quic.endpoint import RelayQuicEndpoint
from repro.relay.egress import EgressFleet
from repro.relay.geohash import geohash_encode
from repro.relay.ingress import IngressFleet, RelayProtocol
from repro.simtime import SimClock

RELAY_DOMAIN_QUIC = "mask.icloud.com."
RELAY_DOMAIN_FALLBACK = "mask-h2.icloud.com."
RELAY_ZONE_APEX = "icloud.com."

#: Maximum address records per DNS response, as observed in the paper
#: ("responses with up to eight different records").
MAX_RECORDS_PER_RESPONSE = 8


@dataclass(frozen=True, slots=True)
class AssignmentUnit:
    """One block of client space and how it is served.

    ``scope_len`` is the granularity the name server declares in its ECS
    scope field: all /24s inside ``prefix`` receive the same answer, and
    a compliant scanner queries the unit only once.
    """

    prefix: Prefix
    scope_len: int
    operator_asn: int
    pod: str

    def __post_init__(self) -> None:
        if self.scope_len < self.prefix.length:
            raise RelayError(
                f"scope /{self.scope_len} wider than assignment prefix {self.prefix}"
            )


class AssignmentMap:
    """Client subnet → assignment unit, with longest-prefix semantics."""

    def __init__(self) -> None:
        self._trie: DualStackTrie[AssignmentUnit] = DualStackTrie()
        self._units: list[AssignmentUnit] = []

    def add(self, unit: AssignmentUnit) -> AssignmentUnit:
        """Register a unit."""
        self._trie.insert(unit.prefix, unit)
        self._units.append(unit)
        return unit

    def __len__(self) -> int:
        return len(self._units)

    def units(self) -> list[AssignmentUnit]:
        """All registered units."""
        return list(self._units)

    def lookup(self, subnet: Prefix) -> AssignmentUnit | None:
        """The unit serving a client subnet, or None if unserved."""
        hit = self._trie.covering(subnet)
        if hit is not None:
            return hit[1]
        # A subnet wider than the unit still matches by its first address.
        hit2 = self._trie.lookup(subnet.network_address)
        return hit2[1] if hit2 else None


@dataclass
class RelaySession:
    """An established relay connection of one client."""

    tunnel: MasqueTunnel
    protocol: RelayProtocol
    ingress_address: IPAddress
    ingress_asn: int
    egress_operator_asn: int
    egress_address: IPAddress
    egress_asn: int
    geohash: str | None
    established_at: float
    data_plane: TunnelDataPlane = field(default_factory=TunnelDataPlane)

    #: Nominal request/response sizes for an observation fetch.
    _REQUEST_BYTES = 420
    _RESPONSE_BYTES = 2800

    def fetch(self, target, path: str = "/", tool: str = "curl") -> str:
        """Fetch from an observation target through the tunnel.

        ``target`` is an :class:`~repro.relay.observer.ObservationServer`
        or :class:`~repro.relay.observer.EchoService` — either way it
        observes only the egress address.  The exchange is accounted on
        a fresh tunnel stream, so on-path observers see (padded) sizes.
        """
        stream = self.data_plane.open_stream(self.established_at)
        self.data_plane.send(stream.stream_id, self._REQUEST_BYTES, Direction.UP)
        body = target.handle_request(
            timestamp=self.established_at,
            requester=self.egress_address,
            requester_asn=self.egress_asn,
            tool=tool,
            path=path,
        )
        self.data_plane.send(
            stream.stream_id,
            max(len(body), self._RESPONSE_BYTES),
            Direction.DOWN,
        )
        self.data_plane.close_stream(stream.stream_id)
        return body


@dataclass
class _ClientEgressState:
    """Sticky egress-operator state for one client."""

    operator_asn: int
    chosen_at: float


@dataclass
class PrivateRelayService:
    """The relay network's control and data plane."""

    clock: SimClock
    ingress_v4: IngressFleet
    ingress_v6: IngressFleet
    egress_fleet: EgressFleet
    assignment: AssignmentMap
    routing: RoutingTable
    rng: random.Random = field(default_factory=lambda: random.Random(0x1C10))
    #: Probability that an established client re-draws its egress operator
    #: on a new connection (a handful of changes across a day of 5-minute
    #: scans => order 1e-2).
    operator_switch_probability: float = 0.012
    #: Countries where local law forbids the service (requests refused).
    unavailable_countries: frozenset[str] = frozenset({"CN", "BY", "SA"})
    #: Observable-size quantisation of tunnel traffic (0 = no padding).
    padding: PaddingPolicy = field(default_factory=lambda: PaddingPolicy(512))
    _operator_state: dict[str, _ClientEgressState] = field(default_factory=dict)
    _quic_endpoints: dict[IPAddress, RelayQuicEndpoint] = field(default_factory=dict)
    _pod_counters: dict[tuple[str, RelayProtocol, int], int] = field(
        default_factory=dict
    )

    # ------------------------------------------------------------------
    # DNS: the authoritative zone for the relay domains
    # ------------------------------------------------------------------

    def build_zone(self) -> Zone:
        """The ``icloud.com`` zone with dynamic relay-domain handlers."""
        zone = Zone(RELAY_ZONE_APEX)
        for domain, protocol in (
            (RELAY_DOMAIN_QUIC, RelayProtocol.QUIC),
            (RELAY_DOMAIN_FALLBACK, RelayProtocol.TCP_FALLBACK),
        ):
            name = DnsName.parse(domain)
            zone.add_dynamic(
                name, RRType.A, self._make_handler(protocol, version=4)
            )
            zone.add_dynamic(
                name, RRType.AAAA, self._make_handler(protocol, version=6)
            )
        return zone

    def _make_handler(self, protocol: RelayProtocol, version: int):
        fleet = self.ingress_v4 if version == 4 else self.ingress_v6

        def handler(
            name: DnsName, client_subnet: Prefix | None
        ) -> tuple[list[ResourceRecord], int | None]:
            unit = None
            if client_subnet is not None:
                unit = self.assignment.lookup(client_subnet)
            if unit is None:
                # Unserved space still resolves: the control plane falls
                # back to the dominant operator's default pod.  Responses
                # stay single-AS ("all response records are in the same
                # AS", as the paper observed).
                pods = sorted(p for p in fleet.pods() if not p.startswith("CC:"))
                if not pods:
                    return [], None
                # Unassigned space is served uniformly, and the answer is
                # declared valid for a wide (/16) scope.
                unit_pod, operator_asn, scope = (
                    pods[0],
                    int(WellKnownAS.AKAMAI_PR),
                    16 if client_subnet is not None and client_subnet.version == 4 else None,
                )
            else:
                unit_pod, operator_asn, scope = (
                    unit.pod,
                    unit.operator_asn,
                    unit.scope_len,
                )
            relays = fleet.pod_relays(unit_pod, protocol, self.clock.now)
            if operator_asn is not None:
                relays = [r for r in relays if r.asn == operator_asn]
            if not relays:
                # The pod has no relay of the assigned operator (yet):
                # spill over to that operator's fleet-wide relays.  If the
                # operator has none at all for this protocol — as for the
                # Akamai TCP-fallback fleet before March 2022 — any active
                # relay of the protocol serves, which is exactly how the
                # fallback layer was "initially served by Apple".
                relays = fleet.active_cached(
                    self.clock.now, protocol, asn=operator_asn
                ) or fleet.active_cached(self.clock.now, protocol)
            if not relays:
                return [], scope
            counter_key = (unit_pod, protocol, version)
            offset = self._pod_counters.get(counter_key, 0)
            self._pod_counters[counter_key] = offset + 1
            count = min(MAX_RECORDS_PER_RESPONSE, len(relays))
            chosen = [relays[(offset + i) % len(relays)] for i in range(count)]
            make = a_record if version == 4 else aaaa_record
            return [make(name, relay.address) for relay in chosen], scope

        return handler

    # ------------------------------------------------------------------
    # QUIC listener surface
    # ------------------------------------------------------------------

    def quic_endpoint_for(self, address: IPAddress) -> RelayQuicEndpoint | None:
        """The QUIC listener at an address, or None (probe times out).

        Only active QUIC-protocol ingress relays listen; fallback relays
        and retired addresses produce silence.
        """
        fleet = self.ingress_v4 if address.version == 4 else self.ingress_v6
        active = fleet.active_addresses(self.clock.now, RelayProtocol.QUIC)
        if address not in active:
            return None
        endpoint = self._quic_endpoints.get(address)
        if endpoint is None:
            endpoint = RelayQuicEndpoint()
            self._quic_endpoints[address] = endpoint
        return endpoint

    # ------------------------------------------------------------------
    # Connection establishment
    # ------------------------------------------------------------------

    def connect(
        self,
        client_address: IPAddress,
        client_asn: int,
        client_country: str,
        client_location: GeoPoint | None,
        ingress_address: IPAddress,
        target_authority: str,
        target_port: int = 80,
        preserve_location: bool = True,
        client_key: str | None = None,
        protocol: RelayProtocol = RelayProtocol.QUIC,
    ) -> RelaySession:
        """Establish one relayed connection through a chosen ingress.

        Raises :class:`RelayUnavailable` when the service does not serve
        the client's country, and :class:`RelayError` when the ingress
        address is not an active relay of the requested protocol.
        """
        if client_country in self.unavailable_countries:
            raise RelayUnavailable(
                f"iCloud Private Relay is not offered in {client_country}"
            )
        fleet = (
            self.ingress_v4 if ingress_address.version == 4 else self.ingress_v6
        )
        active = fleet.active_addresses(self.clock.now, protocol)
        if ingress_address not in active:
            raise RelayError(
                f"{ingress_address} is not an active {protocol.value} ingress relay"
            )
        ingress_asn = self.routing.origin_of(ingress_address)
        if ingress_asn is None:
            raise RelayError(f"ingress address {ingress_address} is unrouted")
        key = client_key or str(client_address)
        operator_asn = self._select_operator(key, client_country)
        pool = self.egress_fleet.pool_for(operator_asn, client_country)
        egress_address = pool.select(key, self.rng)
        egress_asn = self.routing.origin_of(egress_address)
        if egress_asn is None:
            raise RelayError(f"egress address {egress_address} is unrouted")
        request = ConnectRequest(
            authority=target_authority,
            port=target_port,
            http_version=HttpVersion.H3
            if protocol is RelayProtocol.QUIC
            else HttpVersion.H2,
        )
        tunnel, response = establish_tunnel(
            client_address=client_address,
            client_asn=client_asn,
            ingress_address=ingress_address,
            ingress_asn=ingress_asn,
            egress_service_address=egress_address,
            egress_service_asn=egress_asn,
            egress_address=egress_address,
            egress_asn=egress_asn,
            request=request,
            established_at=self.clock.now,
        )
        if tunnel is None:
            raise RelayUnavailable(f"proxy rejected connection: {response.reason}")
        geohash = None
        if preserve_location and client_location is not None:
            geohash = geohash_encode(client_location)
        return RelaySession(
            tunnel=tunnel,
            protocol=protocol,
            ingress_address=ingress_address,
            ingress_asn=ingress_asn,
            egress_operator_asn=operator_asn,
            egress_address=egress_address,
            egress_asn=egress_asn,
            geohash=geohash,
            established_at=self.clock.now,
            data_plane=TunnelDataPlane(self.padding),
        )

    def _select_operator(self, client_key: str, client_country: str) -> int:
        state = self._operator_state.get(client_key)
        weights = self.egress_fleet.operators_for(client_country)
        if not weights:
            raise RelayUnavailable(
                f"no egress operator present for {client_country}"
            )
        if state is not None and state.operator_asn in weights:
            if self.rng.random() >= self.operator_switch_probability:
                return state.operator_asn
        operator_asn = self.egress_fleet.choose_operator(client_country, self.rng)
        self._operator_state[client_key] = _ClientEgressState(
            operator_asn, self.clock.now
        )
        return operator_asn

    # ------------------------------------------------------------------
    # Appendix-B behaviours
    # ------------------------------------------------------------------

    def management_connection_target(self, ingress_address: IPAddress) -> IPAddress:
        """Where the client's extra management QUIC connection goes.

        The paper observed that shortly after connecting, clients open an
        additional QUIC connection to an address "in the prefix (or AS in
        the dual stack case) of the configured ingress".
        """
        prefix = self.routing.routed_prefix_of(ingress_address)
        if prefix is None:
            raise RelayError(f"{ingress_address} is unrouted")
        offset = (ingress_address.value - prefix.value + 1) % prefix.num_addresses()
        return prefix.address_at(offset)
