"""The iCloud Private Relay system model.

Contains the two relay layers (ingress fleets operated by Apple/AS714
and Akamai/AS36183; egress fleets operated by Akamai, Cloudflare and
Fastly), Apple's published egress IP range list, the service control
plane that wires DNS, relay selection and MASQUE tunnels together, and
the client device model used for scans through the relay.
"""

from repro.relay.client import DnsConfig, RelayClient, RequestTool
from repro.relay.egress import EgressFleet, EgressPool, RotationPolicy
from repro.relay.egress_list import EgressEntry, EgressList
from repro.relay.geohash import geohash_decode_center, geohash_encode
from repro.relay.ingress import IngressFleet, IngressRelay, RelayProtocol
from repro.relay.observer import EchoService, ObservationServer
from repro.relay.odoh import ObliviousDnsPath, oblivious_path_for_session
from repro.relay.service import PrivateRelayService, RelaySession
from repro.relay.tokens import AccessToken, TokenIssuer

__all__ = [
    "DnsConfig",
    "RelayClient",
    "RequestTool",
    "EgressFleet",
    "EgressPool",
    "RotationPolicy",
    "EgressEntry",
    "EgressList",
    "geohash_encode",
    "geohash_decode_center",
    "IngressFleet",
    "IngressRelay",
    "RelayProtocol",
    "EchoService",
    "ObservationServer",
    "ObliviousDnsPath",
    "oblivious_path_for_session",
    "PrivateRelayService",
    "RelaySession",
    "AccessToken",
    "TokenIssuer",
]
