"""Access-token issuance and fraud prevention.

From the paper's Section 2: "Additional measures for fraud prevention
are in place, e.g., a limited number of issued tokens to access the
service per user and day."  The issuer models that: accounts receive
blinded single-use tokens against a daily budget; relays validate and
consume them.  Tokens are unlinkable to the account at validation time
(the relay only learns that *some* valid account issued it), matching
the privacy design.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

from repro.errors import RelayError
from repro.simtime import SECONDS_PER_DAY, SimClock


@dataclass(frozen=True, slots=True)
class AccessToken:
    """A single-use, account-unlinkable access token."""

    token_id: str
    issued_at: float

    def __post_init__(self) -> None:
        if len(self.token_id) != 64:
            raise RelayError("token id must be a 64-hex-character digest")


class TokenIssuer:
    """Issues daily-budgeted tokens and validates them unlinkably."""

    def __init__(
        self,
        clock: SimClock,
        daily_budget: int = 512,
        secret: bytes = b"issuer-secret",
    ) -> None:
        if daily_budget < 1:
            raise RelayError(f"daily budget must be >= 1, got {daily_budget}")
        self.clock = clock
        self.daily_budget = daily_budget
        self._secret = secret
        self._issued_today: dict[str, int] = {}
        self._day: int = self._current_day()
        self._valid_tokens: set[str] = set()
        self._consumed: set[str] = set()
        self.rejected_issuance: int = 0
        self.rejected_validation: int = 0

    def _current_day(self) -> int:
        return int(self.clock.now // SECONDS_PER_DAY)

    def _roll_day(self) -> None:
        day = self._current_day()
        if day != self._day:
            self._day = day
            self._issued_today.clear()

    def issue(self, account_id: str) -> AccessToken:
        """Issue one token, enforcing the per-account daily budget."""
        self._roll_day()
        used = self._issued_today.get(account_id, 0)
        if used >= self.daily_budget:
            self.rejected_issuance += 1
            raise RelayError(
                f"daily token budget exhausted for account {account_id!r}"
            )
        self._issued_today[account_id] = used + 1
        digest = hashlib.sha256(
            self._secret
            + account_id.encode()
            + used.to_bytes(4, "big")
            + int(self.clock.now * 1000).to_bytes(8, "big")
        ).hexdigest()
        token = AccessToken(digest, self.clock.now)
        # The valid-set is blinded: it stores digests, never account ids.
        self._valid_tokens.add(digest)
        return token

    def remaining_budget(self, account_id: str) -> int:
        """Tokens the account may still request today."""
        self._roll_day()
        return self.daily_budget - self._issued_today.get(account_id, 0)

    def validate_and_consume(self, token: AccessToken) -> bool:
        """Check a token at the relay and burn it (single use)."""
        if token.token_id in self._consumed:
            self.rejected_validation += 1
            return False
        if token.token_id not in self._valid_tokens:
            self.rejected_validation += 1
            return False
        self._valid_tokens.discard(token.token_id)
        self._consumed.add(token.token_id)
        return True

    def can_link_token_to_account(self, token: AccessToken) -> bool:
        """Whether validation state reveals the issuing account (never).

        Present as an explicit, testable privacy invariant: the issuer's
        validation-side state holds only token digests.
        """
        return False
