"""Egress relay fleets and address rotation.

The egress layer properties the paper measured:

* Egress subnets belong to Akamai (AS36183 and AS20940), Cloudflare
  (AS13335) and Fastly (AS54113).
* For one client location, only the operators with local presence are
  candidates — at the paper's vantage Fastly never appeared, "explained
  by its sparse presence at our measurement location".
* The egress address **rotates**: a fresh address is selected per
  connection from a small local pool (the paper saw six addresses from
  four subnets over 48 hours), changing in more than 66 % of back-to-
  back requests, and parallel connections get independently selected
  addresses.
* The chosen egress **operator** is far stickier, changing only a
  handful of times over a scan day.
"""

from __future__ import annotations

import enum
import random
from dataclasses import dataclass, field

from repro.errors import RelayError
from repro.netmodel.addr import IPAddress
from repro.relay.egress_list import EgressList


class RotationPolicy(enum.Enum):
    """How a pool picks the egress address for a new connection."""

    #: A fresh (sticky-biased random) pick per connection — the deployed
    #: behaviour the paper verified.
    PER_CONNECTION = "per-connection"
    #: Keep the same address for the whole client session — the VPN-like
    #: baseline the paper contrasts against (ablation).
    STICKY = "sticky"


@dataclass
class EgressPool:
    """The egress addresses one operator exposes near one location."""

    operator_asn: int
    country_code: str
    addresses: list[IPAddress]
    policy: RotationPolicy = RotationPolicy.PER_CONNECTION
    #: Probability of reusing the previous address under PER_CONNECTION;
    #: calibrated so back-to-back scans observe a >66 % change rate.
    stickiness: float = 0.15
    _last: dict[str, IPAddress] = field(default_factory=dict, repr=False)

    def __post_init__(self) -> None:
        if not self.addresses:
            raise RelayError(
                f"empty egress pool for AS{self.operator_asn} in {self.country_code}"
            )
        if not 0.0 <= self.stickiness < 1.0:
            raise RelayError(f"stickiness {self.stickiness} out of [0, 1)")

    def select(self, client_key: str, rng: random.Random) -> IPAddress:
        """Pick the egress address for a new connection of ``client_key``.

        ``client_key`` identifies the rotation context (one client
        session); parallel connections of the same client share the
        context but still draw independently, so simultaneous curl and
        Safari requests can observe different addresses.
        """
        previous = self._last.get(client_key)
        if self.policy is RotationPolicy.STICKY and previous is not None:
            return previous
        if (
            self.policy is RotationPolicy.PER_CONNECTION
            and previous is not None
            and rng.random() < self.stickiness
        ):
            return previous
        choice = rng.choice(self.addresses)
        self._last[client_key] = choice
        return choice

    def distinct_subnet_count(self, egress_list: EgressList) -> int:
        """Number of published subnets the pool's addresses fall into."""
        subnets = set()
        for address in self.addresses:
            entry = egress_list.entry_for_address(address)
            if entry is not None:
                subnets.add(entry.prefix)
        return len(subnets)


@dataclass
class EgressFleet:
    """All egress pools, indexed by (operator AS, country code)."""

    pools: dict[tuple[int, str], EgressPool] = field(default_factory=dict)
    #: Per-country operator weights: how likely the control plane is to
    #: assign each locally present operator (0 weight = no local presence).
    presence: dict[str, dict[int, float]] = field(default_factory=dict)

    def add_pool(self, pool: EgressPool) -> EgressPool:
        """Register a pool; one per (operator, country)."""
        key = (pool.operator_asn, pool.country_code)
        if key in self.pools:
            raise RelayError(f"pool already registered for {key}")
        self.pools[key] = pool
        return pool

    def set_presence(self, country_code: str, weights: dict[int, float]) -> None:
        """Declare operator weights for one client country."""
        if not weights or all(w <= 0 for w in weights.values()):
            raise RelayError(f"no positive operator weight for {country_code}")
        self.presence[country_code] = dict(weights)

    def operators_for(self, country_code: str) -> dict[int, float]:
        """Positive-weight operators serving clients in a country."""
        weights = self.presence.get(country_code, {})
        return {asn: w for asn, w in weights.items() if w > 0}

    def pool_for(self, operator_asn: int, country_code: str) -> EgressPool:
        """The pool of one operator near one country."""
        try:
            return self.pools[(operator_asn, country_code)]
        except KeyError:
            raise RelayError(
                f"no egress pool for AS{operator_asn} in {country_code}"
            ) from None

    def choose_operator(self, country_code: str, rng: random.Random) -> int:
        """Weighted pick of an egress operator for a client country."""
        weights = self.operators_for(country_code)
        if not weights:
            raise RelayError(f"no egress operator present for {country_code}")
        asns = sorted(weights)
        return rng.choices(asns, weights=[weights[a] for a in asns], k=1)[0]

    def operator_asns(self) -> set[int]:
        """All operator ASes with at least one pool."""
        return {asn for asn, _cc in self.pools}
