"""Ingress relay fleets.

The ingress layer is what the ECS scans enumerate.  Properties the model
must carry, straight from the paper's findings:

* Addresses live in exactly two ASes: Apple's AS714 and the
  relay-specific Akamai AS36183, across ~123 routed BGP prefixes.
* There are two fleets per address family: the **default** (QUIC)
  relays behind ``mask.icloud.com`` and the **fallback** (HTTP/2 over
  TCP) relays behind ``mask-h2.icloud.com``.  The fallback fleet started
  Apple-only and caught up at Akamai later.
* Fleets evolve: +34 % QUIC relays and +293 % fallback relays over the
  January–April observation window, with small churn on the Apple side.
* Answers are location-dependent: each relay belongs to a regional
  **pod**, and a client subnet is served by one pod (per operator).

Relays carry activation windows so a fleet query at simulated time ``t``
sees exactly the addresses deployed then — the mechanism behind both the
monthly Table 1 growth and the single address the RIPE Atlas scan saw
that the (40-hour-earlier) ECS scan did not.
"""

from __future__ import annotations

import bisect
import enum
from dataclasses import dataclass, field

from repro.errors import RelayError
from repro.netmodel.addr import IPAddress


class RelayProtocol(enum.Enum):
    """Which relay domain a fleet serves."""

    QUIC = "quic"  # mask.icloud.com (HTTP/3)
    TCP_FALLBACK = "tcp"  # mask-h2.icloud.com (HTTP/2 over TLS/TCP)


@dataclass(frozen=True, slots=True)
class IngressRelay:
    """One ingress relay address with its deployment window."""

    address: IPAddress
    asn: int
    protocol: RelayProtocol
    pod: str  # e.g. "EU-3": the regional serving pod
    active_from: float = 0.0
    active_until: float | None = None  # None = still active

    def is_active(self, at_time: float) -> bool:
        """Whether the relay is deployed at the given simulated time."""
        if at_time < self.active_from:
            return False
        return self.active_until is None or at_time < self.active_until


@dataclass
class IngressFleet:
    """All ingress relays of one address family."""

    version: int
    relays: list[IngressRelay] = field(default_factory=list)
    _by_pod: dict[tuple[str, RelayProtocol], list[IngressRelay]] = field(
        default_factory=dict, repr=False
    )
    _boundaries: list[float] | None = field(default=None, repr=False)
    _epoch_window: tuple[float, float, int] | None = field(default=None, repr=False)
    _active_cache: dict[tuple[int, RelayProtocol, int | None], list[IngressRelay]] = field(
        default_factory=dict, repr=False
    )
    _pod_cache: dict[tuple[int, str, RelayProtocol], list[IngressRelay]] = field(
        default_factory=dict, repr=False
    )
    _pods_sorted: list[str] | None = field(default=None, repr=False)
    #: Bumped on every composition change; epoch-derived caches held by
    #: *other* objects (the relay service's epoch-token window) key on it.
    epoch_generation: int = 0

    def add(self, relay: IngressRelay) -> IngressRelay:
        """Register a relay (address family must match the fleet)."""
        if relay.address.version != self.version:
            raise RelayError(
                f"IPv{relay.address.version} relay in IPv{self.version} fleet"
            )
        self.relays.append(relay)
        self._by_pod.setdefault((relay.pod, relay.protocol), []).append(relay)
        self._boundaries = None
        self._epoch_window = None
        self._active_cache.clear()
        self._pod_cache.clear()
        self._pods_sorted = None
        self.epoch_generation += 1
        return relay

    def deployment_epoch_window(self, at_time: float) -> tuple[float, float, int]:
        """``(lo, hi, epoch)``: the epoch containing ``at_time`` and its
        validity bounds — callers may reuse ``epoch`` for any time in
        ``[lo, hi)`` at the current :attr:`epoch_generation`."""
        epoch = self.deployment_epoch(at_time)
        window = self._epoch_window
        assert window is not None and window[2] == epoch
        return window

    def deployment_epoch(self, at_time: float) -> int:
        """Index of the deployment state containing ``at_time``.

        The fleet's composition only changes at relay activation and
        retirement timestamps; between two consecutive boundaries the set
        of active relays is constant, which callers exploit for caching.

        Queries cluster heavily in time (the clock advances in sub-second
        rate-limit steps), so the last boundary window is memoised and
        repeat calls inside it skip the bisect.
        """
        window = self._epoch_window
        if window is not None and window[0] <= at_time < window[1]:
            return window[2]
        boundaries = self._boundaries
        if boundaries is None:
            points = {r.active_from for r in self.relays}
            points.update(
                r.active_until for r in self.relays if r.active_until is not None
            )
            boundaries = self._boundaries = sorted(points)
        epoch = bisect.bisect_right(boundaries, at_time)
        lo = boundaries[epoch - 1] if epoch > 0 else float("-inf")
        hi = boundaries[epoch] if epoch < len(boundaries) else float("inf")
        self._epoch_window = (lo, hi, epoch)
        return epoch

    def active_cached(
        self,
        at_time: float,
        protocol: RelayProtocol,
        asn: int | None = None,
    ) -> list[IngressRelay]:
        """Like :meth:`active`, memoised per deployment epoch.

        The hot path: the relay DNS zone consults this on every query
        whose pod lacks relays of the assigned operator.
        """
        key = (self.deployment_epoch(at_time), protocol, asn)
        cached = self._active_cache.get(key)
        if cached is None:
            cached = self.active(at_time, protocol, asn)
            self._active_cache[key] = cached
        return cached

    def active(
        self,
        at_time: float,
        protocol: RelayProtocol | None = None,
        asn: int | None = None,
    ) -> list[IngressRelay]:
        """Relays deployed at ``at_time``, optionally filtered."""
        return [
            r
            for r in self.relays
            if r.is_active(at_time)
            and (protocol is None or r.protocol == protocol)
            and (asn is None or r.asn == asn)
        ]

    def active_addresses(
        self,
        at_time: float,
        protocol: RelayProtocol | None = None,
        asn: int | None = None,
    ) -> set[IPAddress]:
        """Addresses of :meth:`active` relays."""
        return {r.address for r in self.active(at_time, protocol, asn)}

    def pods(self) -> set[str]:
        """All pod labels present in the fleet."""
        return {pod for pod, _protocol in self._by_pod}

    def pods_sorted(self) -> list[str]:
        """All pod labels, sorted (cached; invalidated on :meth:`add`)."""
        if self._pods_sorted is None:
            self._pods_sorted = sorted(self.pods())
        return self._pods_sorted

    def pod_relays(
        self, pod: str, protocol: RelayProtocol, at_time: float
    ) -> list[IngressRelay]:
        """Active relays of one pod and protocol, insertion order."""
        return [
            r
            for r in self._by_pod.get((pod, protocol), [])
            if r.is_active(at_time)
        ]

    def pod_relays_cached(
        self, pod: str, protocol: RelayProtocol, at_time: float
    ) -> list[IngressRelay]:
        """Like :meth:`pod_relays`, memoised per deployment epoch."""
        key = (self.deployment_epoch(at_time), pod, protocol)
        cached = self._pod_cache.get(key)
        if cached is None:
            cached = self.pod_relays(pod, protocol, at_time)
            self._pod_cache[key] = cached
        return cached

    def asns(self, at_time: float) -> set[int]:
        """ASes with at least one active relay."""
        return {r.asn for r in self.relays if r.is_active(at_time)}

    def counts_by_asn(
        self, at_time: float, protocol: RelayProtocol
    ) -> dict[int, int]:
        """Active relay count per AS — the Table 1 cell values."""
        counts: dict[int, int] = {}
        for relay in self.active(at_time, protocol):
            counts[relay.asn] = counts.get(relay.asn, 0) + 1
        return counts
