"""Observation endpoints for scans through the relay.

The paper ran two observation services: their own web server (logging
the requester address of every fetch) and ``http://ipecho.net/plain``
(which returns the requester's address in the response body).  Both see
only the *egress* address of relayed connections — that is the point.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.netmodel.addr import IPAddress


@dataclass(frozen=True, slots=True)
class AccessLogEntry:
    """One logged request: when, from which address, via which tool."""

    timestamp: float
    requester: IPAddress
    requester_asn: int | None
    tool: str
    path: str


@dataclass
class ObservationServer:
    """A web server that logs every requester address."""

    hostname: str
    address: IPAddress
    asn: int
    log: list[AccessLogEntry] = field(default_factory=list)

    def handle_request(
        self,
        timestamp: float,
        requester: IPAddress,
        requester_asn: int | None = None,
        tool: str = "unknown",
        path: str = "/",
    ) -> str:
        """Serve a request, recording the requester."""
        self.log.append(
            AccessLogEntry(timestamp, requester, requester_asn, tool, path)
        )
        return "ok"

    def requester_addresses(self) -> list[IPAddress]:
        """All logged requester addresses in arrival order."""
        return [entry.requester for entry in self.log]

    def clear(self) -> None:
        """Drop the access log."""
        self.log.clear()


@dataclass
class EchoService:
    """An ipecho.net-style service: the response body is your address."""

    hostname: str
    address: IPAddress
    asn: int
    requests_served: int = 0

    def handle_request(
        self,
        timestamp: float,
        requester: IPAddress,
        requester_asn: int | None = None,
        tool: str = "unknown",
        path: str = "/plain",
    ) -> str:
        """Serve a request; the body is the requester's address."""
        self.requests_served += 1
        return str(requester)
