"""Oblivious DNS over HTTPS through the relay (Appendix B).

The paper's Appendix B observations:

* With an active relay connection, the system **ignores the local DNS
  resolver** and resolves through an oblivious DoH server — identified
  as Cloudflare's public resolver — reached through the first relay.
* Queries travel encrypted through the ingress (which therefore cannot
  read them) and go *directly* to the DoH server, not through the
  egress.
* The client can learn its **egress IP address** and attach it as the
  ECS client subnet, so responses are optimised for where its traffic
  will exit — not for where the client actually sits.

:class:`ObliviousDnsPath` models this: it wraps the DoH resolver and a
relay session, enforces the visibility rules (the resolver sees the
ingress address as transport source, never the client), and implements
the egress-based ECS optimisation.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import RelayError
from repro.dns.message import DnsMessage
from repro.dns.name import DnsName
from repro.dns.resolver import Resolver
from repro.dns.rr import RRType
from repro.netmodel.addr import IPAddress, Prefix


@dataclass(frozen=True, slots=True)
class ObliviousQueryRecord:
    """What each party observed for one oblivious query."""

    #: Transport source the DoH resolver saw (the ingress relay).
    resolver_saw: IPAddress
    #: ECS subnet attached to the query (egress-derived), if any.
    ecs_source: Prefix | None
    #: Whether the ingress could read the question (never).
    ingress_read_question: bool


@dataclass
class ObliviousDnsPath:
    """DNS resolution for a client with an active relay session."""

    doh_resolver: Resolver
    ingress_address: IPAddress
    egress_address: IPAddress
    #: Provider label of the DoH service (the paper identified
    #: Cloudflare's public resolver).
    provider: str = "Cloudflare"
    log: list[ObliviousQueryRecord] = field(default_factory=list)

    def resolve(
        self,
        name: DnsName | str,
        rtype: RRType,
        optimise_for_egress: bool = True,
    ) -> DnsMessage:
        """Resolve obliviously through the relay.

        With ``optimise_for_egress`` the client includes its egress
        address as the ECS subnet, so the answer is optimised for the
        egress location (Appendix B's optimisation).
        """
        client_hint = self.egress_address if optimise_for_egress else None
        response = self.doh_resolver.resolve(
            name, rtype, client_address=client_hint
        )
        ecs_source = None
        if response.client_subnet is not None:
            ecs_source = response.client_subnet.source
        self.log.append(
            ObliviousQueryRecord(
                resolver_saw=self.ingress_address,
                ecs_source=ecs_source,
                ingress_read_question=False,
            )
        )
        return response

    def resolve_addresses(
        self, name: DnsName | str, rtype: RRType, optimise_for_egress: bool = True
    ) -> list[IPAddress]:
        """Resolve and return the answer addresses."""
        return self.resolve(name, rtype, optimise_for_egress).answer_addresses()


def oblivious_path_for_session(session, doh_resolver: Resolver) -> ObliviousDnsPath:
    """Build the oblivious path for an established relay session."""
    if session is None:
        raise RelayError("oblivious DoH requires an active relay session")
    return ObliviousDnsPath(
        doh_resolver=doh_resolver,
        ingress_address=session.ingress_address,
        egress_address=session.egress_address,
    )
