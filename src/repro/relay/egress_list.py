"""Apple's published egress IP range list.

Apple publishes ``egress-ip-ranges.csv`` "for geolocation and
allow-listing": one row per egress subnet with the country code, region
and city the subnet *represents* (the client's assumed location — not
necessarily the relay node's physical location, as the paper shows).
At the paper's snapshot (2022-05-11) the list held ~238 k subnets, 1.6 %
of them with the city left blank.

CSV schema (matching the published file):

    prefix,country_code,region,city

e.g. ``172.224.224.0/31,US,US-CA,LOSANGELES`` — the city column may be
empty.  IPv6 rows always use a /64 mask.
"""

from __future__ import annotations

import csv
import io
from dataclasses import dataclass
from typing import Iterable, Iterator

from repro.errors import AddressError, EgressListError
from repro.netmodel.addr import Prefix
from repro.netmodel.prefix_trie import DualStackTrie


@dataclass(frozen=True, slots=True)
class EgressEntry:
    """One egress subnet with its represented location."""

    prefix: Prefix
    country_code: str
    region: str
    city: str  # empty string when the location is intentionally blank

    def __post_init__(self) -> None:
        if len(self.country_code) != 2 or not self.country_code.isupper():
            raise EgressListError(
                f"country code must be two uppercase letters, got {self.country_code!r}"
            )
        if self.prefix.version == 6 and self.prefix.length != 64:
            raise EgressListError(
                f"IPv6 egress subnets use /64 masks, got /{self.prefix.length}"
            )

    @property
    def has_city(self) -> bool:
        """Whether the entry carries a city (blank ~1.6 % of the time)."""
        return bool(self.city)

    def to_csv_row(self) -> list[str]:
        """The entry as a CSV row."""
        return [str(self.prefix), self.country_code, self.region, self.city]


class EgressList:
    """The parsed egress range list with indexed queries.

    The prefix trie behind the point queries is built lazily on first
    use: worldgen constructs lists of ~100 k entries (twice — the May
    and January snapshots) and many consumers only ever iterate or
    aggregate them, so paying ~30 bit-levels of trie insert per entry
    up front would dominate world build time.  Duplicate detection uses
    a plain prefix set so ``add`` stays O(1).
    """

    def __init__(self, entries: Iterable[EgressEntry] = ()) -> None:
        self._entries: list[EgressEntry] = []
        self._prefixes: set[Prefix] = set()
        self._trie: DualStackTrie[EgressEntry] | None = None
        for entry in entries:
            self.add(entry)

    def add(self, entry: EgressEntry) -> None:
        """Append an entry; duplicate prefixes are an error."""
        if entry.prefix in self._prefixes:
            raise EgressListError(f"duplicate egress prefix {entry.prefix}")
        self._entries.append(entry)
        self._prefixes.add(entry.prefix)
        if self._trie is not None:
            self._trie.insert(entry.prefix, entry)

    def _index(self) -> DualStackTrie[EgressEntry]:
        """The lookup trie, built on first touch."""
        trie = self._trie
        if trie is None:
            trie = DualStackTrie()
            for entry in self._entries:
                trie.insert(entry.prefix, entry)
            self._trie = trie
        return trie

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self) -> Iterator[EgressEntry]:
        return iter(self._entries)

    def entries(self, version: int | None = None) -> list[EgressEntry]:
        """All entries, optionally filtered by IP version."""
        if version is None:
            return list(self._entries)
        return [e for e in self._entries if e.prefix.version == version]

    def lookup(self, prefix: Prefix) -> EgressEntry | None:
        """The entry covering ``prefix`` exactly or as a supernet."""
        hit = self._index().covering(prefix)
        return hit[1] if hit else None

    def contains_address(self, address) -> bool:
        """Whether an address falls in any listed egress subnet."""
        return self._index().lookup(address) is not None

    def entry_for_address(self, address) -> EgressEntry | None:
        """The entry covering an address, or None."""
        hit = self._index().lookup(address)
        return hit[1] if hit else None

    # ------------------------------------------------------------------
    # Aggregations used by Tables 3/4 and Figures 2/4/5
    # ------------------------------------------------------------------

    def country_codes(self, version: int | None = None) -> set[str]:
        """Distinct country codes across entries."""
        return {e.country_code for e in self.entries(version)}

    def cities(self, version: int | None = None) -> set[tuple[str, str]]:
        """Distinct (country, city) pairs across entries with a city."""
        return {
            (e.country_code, e.city) for e in self.entries(version) if e.has_city
        }

    def subnets_per_country(self, version: int | None = None) -> dict[str, int]:
        """Entry count per country code."""
        counts: dict[str, int] = {}
        for entry in self.entries(version):
            counts[entry.country_code] = counts.get(entry.country_code, 0) + 1
        return counts

    def missing_city_fraction(self) -> float:
        """Fraction of entries with a blank city."""
        if not self._entries:
            return 0.0
        blank = sum(1 for e in self._entries if not e.has_city)
        return blank / len(self._entries)

    def total_ipv4_addresses(self) -> int:
        """Summed address count of all IPv4 subnets (Table 3 'IP Addr.')."""
        return sum(
            e.prefix.num_addresses() for e in self._entries if e.prefix.version == 4
        )

    def churn_against(self, other: "EgressList") -> tuple[int, int, int]:
        """(kept, added, removed) prefix counts of ``self`` vs an older list."""
        mine = {e.prefix for e in self._entries}
        theirs = {e.prefix for e in other._entries}
        return len(mine & theirs), len(mine - theirs), len(theirs - mine)

    # ------------------------------------------------------------------
    # CSV round trip
    # ------------------------------------------------------------------

    def to_csv(self) -> str:
        """Serialise in the published CSV format (no header row)."""
        buffer = io.StringIO()
        writer = csv.writer(buffer, lineterminator="\n")
        for entry in self._entries:
            writer.writerow(entry.to_csv_row())
        return buffer.getvalue()

    @classmethod
    def from_csv(cls, text: str) -> "EgressList":
        """Parse the published CSV format."""
        entries = []
        for lineno, row in enumerate(csv.reader(io.StringIO(text)), start=1):
            if not row or (len(row) == 1 and not row[0].strip()):
                continue
            if len(row) != 4:
                raise EgressListError(
                    f"line {lineno}: expected 4 columns, got {len(row)}"
                )
            prefix_text, country, region, city = (column.strip() for column in row)
            try:
                prefix = Prefix.parse(prefix_text)
            except AddressError as exc:
                raise EgressListError(f"line {lineno}: {exc}") from exc
            entries.append(EgressEntry(prefix, country, region, city))
        return cls(entries)
