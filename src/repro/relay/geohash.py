"""Geohash encoding.

iCloud Private Relay's "maintain general location" option hands the
egress relay a geohash derived from the client's IP geolocation, so the
egress can pick a nearby-seeming address and services receive a coarse
location.  The paper's Section 6 notes an ingress-observing entity can
derive the client's approximate geohash from its IP address — we
implement real geohashes so that inference is computable.
"""

from __future__ import annotations

from repro.netmodel.geo import GeoPoint

_BASE32 = "0123456789bcdefghjkmnpqrstuvwxyz"
_DECODE = {c: i for i, c in enumerate(_BASE32)}


def geohash_encode(point: GeoPoint, precision: int = 4) -> str:
    """Encode a point as a geohash of ``precision`` characters.

    Precision 4 (cell size roughly 39 km x 19 km) matches the coarse
    region granularity the relay's location-preserving mode exposes.
    """
    if precision < 1:
        raise ValueError(f"precision must be >= 1, got {precision}")
    lat_lo, lat_hi = -90.0, 90.0
    lon_lo, lon_hi = -180.0, 180.0
    chars: list[str] = []
    bit = 0
    value = 0
    even = True  # longitude first
    while len(chars) < precision:
        if even:
            mid = (lon_lo + lon_hi) / 2
            if point.lon >= mid:
                value = (value << 1) | 1
                lon_lo = mid
            else:
                value <<= 1
                lon_hi = mid
        else:
            mid = (lat_lo + lat_hi) / 2
            if point.lat >= mid:
                value = (value << 1) | 1
                lat_lo = mid
            else:
                value <<= 1
                lat_hi = mid
        even = not even
        bit += 1
        if bit == 5:
            chars.append(_BASE32[value])
            bit = 0
            value = 0
    return "".join(chars)


def geohash_decode_center(geohash: str) -> GeoPoint:
    """Decode a geohash to the centre point of its cell."""
    if not geohash:
        raise ValueError("empty geohash")
    lat_lo, lat_hi = -90.0, 90.0
    lon_lo, lon_hi = -180.0, 180.0
    even = True
    for char in geohash:
        try:
            value = _DECODE[char]
        except KeyError:
            raise ValueError(f"invalid geohash character {char!r}") from None
        for shift in range(4, -1, -1):
            bit = (value >> shift) & 1
            if even:
                mid = (lon_lo + lon_hi) / 2
                if bit:
                    lon_lo = mid
                else:
                    lon_hi = mid
            else:
                mid = (lat_lo + lat_hi) / 2
                if bit:
                    lat_lo = mid
                else:
                    lat_hi = mid
            even = not even
    return GeoPoint((lat_lo + lat_hi) / 2, (lon_lo + lon_hi) / 2)
