"""The client device (a macOS laptop with Private Relay enabled).

Reproduces the measurement client of Section 3: a device that resolves
``mask.icloud.com`` (falling back to ``mask-h2.icloud.com``) through its
configured DNS, connects through the chosen ingress, and issues
requests with Safari or curl to observation servers.

Two DNS configurations mirror the paper's two scan variants:

* **open** — queries go to a recursive resolver, so ingress addresses
  come live from the authoritative name servers;
* **fixed** — a local unbound-style resolver serves a custom local zone
  pinning the relay domains to chosen addresses, forcing a specific
  ingress relay.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.errors import ConnectionFailed, RelayUnavailable, ResolutionTimeout
from repro.dns.name import DnsName
from repro.faults.plan import fault_key
from repro.dns.resolver import Resolver
from repro.dns.rr import RRType
from repro.netmodel.addr import IPAddress
from repro.netmodel.geo import GeoPoint
from repro.relay.ingress import RelayProtocol
from repro.relay.service import (
    RELAY_DOMAIN_FALLBACK,
    RELAY_DOMAIN_QUIC,
    PrivateRelayService,
    RelaySession,
)


class RequestTool(enum.Enum):
    """The user agent issuing a request (each opens its own connection)."""

    SAFARI = "safari"
    CURL = "curl"


@dataclass
class DnsConfig:
    """The client's DNS setup: open resolution or a fixed local zone."""

    resolver: Resolver | None = None
    fixed_records: dict[tuple[str, RRType], list[IPAddress]] = field(
        default_factory=dict
    )

    @classmethod
    def open(cls, resolver: Resolver) -> "DnsConfig":
        """Resolve live through a recursive resolver."""
        return cls(resolver=resolver)

    @classmethod
    def fixed(cls, records: dict[tuple[str, RRType], list[IPAddress]]) -> "DnsConfig":
        """Serve the relay domains from a pinned local zone.

        Keys are (domain, record type); domains are normalised to their
        dotted-FQDN form.
        """
        normalised = {
            (str(DnsName.parse(name)), rtype): list(addresses)
            for (name, rtype), addresses in records.items()
        }
        return cls(fixed_records=normalised)

    @property
    def is_fixed(self) -> bool:
        """Whether a local zone overrides live resolution."""
        return bool(self.fixed_records)

    def lookup(self, name: str, rtype: RRType) -> list[IPAddress]:
        """Resolve ``name`` under this configuration.

        Raises :class:`ResolutionTimeout` when the resolver never
        answers; returns an empty list for blocked/NXDOMAIN outcomes.
        """
        key = (str(DnsName.parse(name)), rtype)
        if self.is_fixed:
            return list(self.fixed_records.get(key, []))
        if self.resolver is None:
            raise RelayUnavailable("client has no DNS configuration")
        return self.resolver.resolve_addresses(name, rtype)


@dataclass(frozen=True, slots=True)
class RequestObservation:
    """What one relayed request looked like from both ends."""

    timestamp: float
    tool: RequestTool
    protocol: RelayProtocol
    ingress_address: IPAddress
    ingress_asn: int
    egress_operator_asn: int
    egress_address: IPAddress
    egress_asn: int
    body: str


@dataclass
class RelayClient:
    """One Private Relay client device."""

    service: PrivateRelayService
    address: IPAddress
    asn: int
    country: str
    location: GeoPoint | None
    dns: DnsConfig
    preserve_location: bool = True
    #: Connection attempts per protocol before a transient
    #: (fault-injected) failure is given up on.  Real device behaviour:
    #: a handshake timeout is retried a couple of times with backoff
    #: before Safari surfaces an error.
    max_connect_attempts: int = 3

    def resolve_ingress(
        self, protocol: RelayProtocol = RelayProtocol.QUIC, version: int = 4
    ) -> list[IPAddress]:
        """Resolve the relay domain for a protocol and address family."""
        domain = (
            RELAY_DOMAIN_QUIC
            if protocol is RelayProtocol.QUIC
            else RELAY_DOMAIN_FALLBACK
        )
        rtype = RRType.for_ip_version(version)
        return self.dns.lookup(domain, rtype)

    def _establish(
        self, target_authority: str, target_port: int, version: int
    ) -> RelaySession:
        """Resolve, pick an ingress, connect — with TCP fallback."""
        last_error: Exception | None = None
        for protocol in (RelayProtocol.QUIC, RelayProtocol.TCP_FALLBACK):
            try:
                addresses = self.resolve_ingress(protocol, version)
            except ResolutionTimeout as exc:
                last_error = exc
                continue
            if not addresses:
                last_error = RelayUnavailable(
                    f"DNS returned no {protocol.value} ingress addresses "
                    "(service blocked?)"
                )
                continue
            # Clients use the first returned record; the dynamic zone
            # rotates record order, spreading clients across the pod.
            ingress = addresses[0]
            return self._connect_with_retry(
                ingress, target_authority, target_port, protocol
            )
        raise last_error if last_error is not None else RelayUnavailable(
            "relay connection failed"
        )

    def _connect_with_retry(
        self,
        ingress: IPAddress,
        target_authority: str,
        target_port: int,
        protocol: RelayProtocol,
    ) -> RelaySession:
        """Connect, retrying transient failures with deterministic backoff.

        Only :class:`ConnectionFailed` (the fault plane's transient
        handshake failure) is retried; hard refusals — country blocks,
        inactive relays — propagate immediately.  Exhausting the attempt
        budget re-raises the last transient failure.
        """
        attempts = max(1, self.max_connect_attempts)
        registry = self.service.telemetry.registry
        plan = self.service.fault_plan
        key = fault_key(str(self.address))
        for attempt in range(1, attempts + 1):
            try:
                return self.service.connect(
                    client_address=self.address,
                    client_asn=self.asn,
                    client_country=self.country,
                    client_location=self.location,
                    ingress_address=ingress,
                    target_authority=target_authority,
                    target_port=target_port,
                    preserve_location=self.preserve_location,
                    client_key=str(self.address),
                    protocol=protocol,
                )
            except ConnectionFailed:
                if attempt >= attempts:
                    raise
                if registry.enabled:
                    registry.counter(
                        "relay.connect_retries", protocol=protocol.value
                    ).inc()
                if plan is not None:
                    self.service.clock.advance(
                        plan.backoff_wait(1.0, 2.0, 0.5, key, 0, attempt)
                    )
        raise RelayUnavailable("relay connection failed")  # pragma: no cover

    def request(
        self,
        target,
        tool: RequestTool = RequestTool.CURL,
        path: str = "/",
        version: int = 4,
    ) -> RequestObservation:
        """Issue one relayed request to an observation target.

        Every request opens a fresh relay connection (which is what makes
        the egress rotation observable per request).
        """
        session = self._establish(target.hostname, 80, version)
        body = session.fetch(target, path=path, tool=tool.value)
        return RequestObservation(
            timestamp=session.established_at,
            tool=tool,
            protocol=session.protocol,
            ingress_address=session.ingress_address,
            ingress_asn=session.ingress_asn,
            egress_operator_asn=session.egress_operator_asn,
            egress_address=session.egress_address,
            egress_asn=session.egress_asn,
            body=body,
        )

    def request_parallel(
        self, target_web, target_echo, version: int = 4
    ) -> tuple[RequestObservation, RequestObservation]:
        """The paper's scan round: Safari to the web server, curl to the
        echo service, issued back-to-back as parallel connections."""
        safari = self.request(target_web, RequestTool.SAFARI, version=version)
        curl = self.request(target_echo, RequestTool.CURL, path="/plain", version=version)
        return safari, curl
