"""Section 3 — QUIC probing of ingress relays.

Paper findings: standard QUIC handshakes (QScanner, curl) trigger *no*
response from any ingress node — the attempt times out; the ZMap
version-negotiation probe succeeds and advertises QUICv1 alongside
drafts 29 to 27.
"""

from repro.scan import QuicScanner


def test_s3_quic_probing(benchmark, bench_world, april_scan, run_once):
    world = bench_world
    addresses = sorted(april_scan.addresses())
    report = run_once(
        benchmark, lambda: QuicScanner(world.service).scan(list(addresses))
    )
    print()
    print(
        f"probed {report.probed}: {report.handshake_timeouts} handshake "
        f"timeouts, {report.handshake_responses} responses, "
        f"{report.version_negotiations} version negotiations, "
        f"versions {report.dominant_versions()}"
    )
    assert report.probed == len(addresses)
    assert report.all_handshakes_timed_out
    # Every probed relay was still active and answered the VN probe.
    assert report.version_negotiations + report.unreachable == report.probed
    assert report.unreachable <= 1  # at most the late relay's sibling churn
    assert report.dominant_versions() == (
        "QUICv1",
        "draft-29",
        "draft-28",
        "draft-27",
    )
    # All relays advertise the same version set.
    assert len(report.version_sets) == 1
