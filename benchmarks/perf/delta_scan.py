"""Delta-scan CI drill: one worker-count cell of the delta-scan gates.

Seeds the incremental engine from a full scan of both relay domains,
runs three steady-state delta rounds, injects one deployment change of
every churn kind, and runs three more rounds.  Three gates:

* **query budget** — the steady-state delta round may cost at most 30 %
  of a full rescan's queries (``delta_queries_frac``);
* **detection horizon** — every injected change must surface within 3
  delta rounds (``detection_rounds``);
* **state equivalence** — the delta-accumulated state must be
  digest-identical to a fresh full rescan of the churned world.

The first gate is a budget check on the written result; the other two
are exact correctness invariants enforced inside the leg itself (a
violation raises and the drill exits 1 before writing gates output).
The result is written in the ``BENCH_scan.json`` shape so CI uploads
line up with the perf harness artifacts.

Usage::

    PYTHONPATH=src python benchmarks/perf/delta_scan.py --workers 4

Environment: ``REPRO_BENCH_SCALE`` (default 0.2) and
``REPRO_BENCH_SEED`` (default 2022), as for ``run_bench.py``.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from pathlib import Path

from run_bench import DeltaDivergence, _delta_leg, check_delta, current_commit


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--workers",
        type=int,
        default=1,
        help="shard the scans across N worker processes (default 1)",
    )
    parser.add_argument(
        "--output",
        type=Path,
        default=Path("BENCH_scan.json"),
        help="result path (default BENCH_scan.json)",
    )
    args = parser.parse_args(argv)
    scale = float(os.environ.get("REPRO_BENCH_SCALE", "0.2"))
    seed = int(os.environ.get("REPRO_BENCH_SEED", "2022"))
    print(
        f"delta-scan drill at scale={scale} seed={seed} "
        f"workers={args.workers} ..."
    )
    try:
        fields = _delta_leg(scale, seed, args.workers)
    except DeltaDivergence as divergence:
        print("FAIL: delta-scan drill violated a correctness invariant:")
        for problem in divergence.problems:
            print(f"  {problem}")
        return 1
    result = {
        "commit": current_commit(),
        "scale": scale,
        "seed": seed,
        "workers": args.workers,
        **fields,
    }
    args.output.write_text(json.dumps(result, indent=2) + "\n")
    print(json.dumps(result, indent=2))
    print(f"wrote {args.output}")
    return check_delta(result)


if __name__ == "__main__":
    sys.exit(main())
