"""Compare the deterministic totals of two telemetry snapshots.

CI runs the perf smoke matrix at workers=1 and workers=4 and each leg
saves a telemetry snapshot (``run_bench.py --telemetry-out``).  Sharded
scans must reproduce the sequential scan's externally visible results,
so the merged counters in both snapshots must agree exactly on the
:func:`repro.telemetry.deterministic_totals` subset.  This script exits
1 and prints the differing keys when they don't.

Usage::

    PYTHONPATH=src python benchmarks/perf/compare_telemetry.py A.json B.json
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.telemetry import deterministic_totals


def compare(path_a: Path, path_b: Path) -> list[str]:
    """Human-readable differences between two snapshots' totals."""
    totals_a = deterministic_totals(json.loads(path_a.read_text()))
    totals_b = deterministic_totals(json.loads(path_b.read_text()))
    return [
        f"{key}: {path_a.name}={totals_a.get(key)} {path_b.name}={totals_b.get(key)}"
        for key in sorted(set(totals_a) | set(totals_b))
        if totals_a.get(key) != totals_b.get(key)
    ]


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("snapshot_a", type=Path)
    parser.add_argument("snapshot_b", type=Path)
    args = parser.parse_args(argv)
    diffs = compare(args.snapshot_a, args.snapshot_b)
    if diffs:
        print(f"FAIL: {len(diffs)} deterministic totals differ:")
        for diff in diffs:
            print(f"  {diff}")
        return 1
    totals = deterministic_totals(json.loads(args.snapshot_a.read_text()))
    print(f"OK: {len(totals)} deterministic totals identical")
    return 0


if __name__ == "__main__":
    sys.exit(main())
