"""Chaos drill: the always-on daemon's failure playbook, end to end.

Three legs, each proving one DESIGN.md §12 recovery contract against a
real campaign (not a mock):

* **SIGTERM drain** — a checkpointing full campaign is launched as a
  subprocess and sent ``SIGTERM`` the moment its first month checkpoint
  lands.  The process must drain (finish the in-flight month, persist,
  emit ``campaign_interrupted``) and exit 0; a resume with the same
  arguments must complete the calendar and leave checkpoint files
  byte-identical to an uninterrupted reference run.  The drill runs at
  workers 1, 2 and 4, and the worker-invariant projection of the final
  checkpoints (query accounting, probe streams, ingress address sets)
  must be digest-identical across all three.
* **storage-fault matrix** — full and delta campaigns run under the
  ``hostile`` profile's storage rates with every persistence surface
  gated, and the accounting identity must close exactly:
  ``faults.storage.injected == absorbed + surfaced``, with no ``.tmp``
  file left anywhere.
* **hung shard** — a sharded campaign with the watchdog armed runs the
  hostile hang drill; the hang must be detected (``shard_hung``), the
  pool recycled, and the results must match the same campaign run
  without a watchdog bit for bit.

After all legs the drill asserts zero leaked ``/dev/shm/repro-*``
segments.  Exit status 0 means every contract held; 1 lists the
violations.

Usage::

    PYTHONPATH=src python benchmarks/perf/chaos_drill.py

Environment: ``REPRO_BENCH_SCALE`` (default 0.05) and
``REPRO_BENCH_SEED`` (default 2022), as for ``run_bench.py``.
"""

from __future__ import annotations

import argparse
import hashlib
import json
import os
import signal
import subprocess
import sys
import tempfile
import time
from pathlib import Path

STARTUP_TIMEOUT_S = 180.0
POLL_INTERVAL_S = 0.05


class DrillFailure(Exception):
    """A hardening contract did not hold."""


# ----------------------------------------------------------------------
# Leg 1: SIGTERM drain + resume, digest-compared across worker counts
# ----------------------------------------------------------------------


def _campaign_command(scale, seed, workers, checkpoint_dir, event_log=None,
                      resume=False):
    command = [
        sys.executable, "-m", "repro.cli", "campaign",
        "--scale", str(scale),
        "--seed", str(seed),
        "--workers", str(workers),
        "--checkpoint-dir", str(checkpoint_dir),
    ]
    if event_log is not None:
        command += ["--event-log", str(event_log)]
    if resume:
        command.append("--resume")
    return command


def _run_to_completion(command) -> str:
    result = subprocess.run(command, capture_output=True, text=True)
    if result.returncode != 0:
        raise DrillFailure(
            f"campaign exited {result.returncode}:\n{result.stderr[-2000:]}"
        )
    return result.stdout


def _interrupt_on_first_checkpoint(command, checkpoint_dir) -> str:
    """Start the campaign, SIGTERM it at the first checkpoint, expect 0."""
    process = subprocess.Popen(
        command, stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True
    )
    deadline = time.monotonic() + STARTUP_TIMEOUT_S
    try:
        while not list(Path(checkpoint_dir).glob("month-*.json")):
            if process.poll() is not None:
                raise DrillFailure(
                    "campaign finished before the drill could interrupt it "
                    "(raise REPRO_BENCH_SCALE)"
                )
            if time.monotonic() > deadline:
                raise DrillFailure("no checkpoint within the startup window")
            time.sleep(POLL_INTERVAL_S)
        process.send_signal(signal.SIGTERM)
        output, _ = process.communicate(timeout=STARTUP_TIMEOUT_S)
    finally:
        if process.poll() is None:
            process.kill()
            process.wait()
    if process.returncode != 0:
        raise DrillFailure(
            f"drained campaign exited {process.returncode}, expected 0:\n"
            f"{output[-2000:]}"
        )
    if "interrupted: drained in-flight work" not in output:
        raise DrillFailure("drained campaign did not announce the interrupt")
    return output


def _checkpoint_bytes(directory) -> dict[str, str]:
    return {
        path.name: hashlib.sha256(path.read_bytes()).hexdigest()
        for path in sorted(Path(directory).glob("month-*.json"))
    }


def _worker_invariant_digest(directory) -> str:
    """Digest the checkpoint content that must not depend on workers.

    Per month: query/retry accounting, the (value, length, scope) probe
    stream, and the sorted ingress address set.  Per-response address
    *windows* are excluded on purpose — shard rotation streams start at
    seeded offsets (see tests/scan/test_sharded_equivalence.py), so
    windows legitimately differ across worker counts.
    """
    projection = []
    for path in sorted(Path(directory).glob("month-*.json")):
        document = json.loads(path.read_text())
        months = []
        for key in ("default", "fallback"):
            result = document.get(key)
            if result is None:
                months.append(None)
                continue
            addresses = sorted({
                tuple(pair)
                for window, _asn in result["responses"]["table"]
                for pair in window
            })
            months.append({
                "queries": result["queries_sent"],
                "sparse": [result["sparse_queries"], result["sparse_answered"]],
                "retries": result["retries"],
                "stream": [row[:3] for row in result["responses"]["rows"]],
                "addresses": addresses,
            })
        projection.append([document["year"], document["month"], months])
    canonical = json.dumps(projection, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode()).hexdigest()


def _drill_sigterm(scale, seed, workers_list) -> None:
    digests = {}
    for workers in workers_list:
        with tempfile.TemporaryDirectory(prefix="chaos-drain-") as tmp:
            ref_dir = Path(tmp) / "reference"
            drill_dir = Path(tmp) / "drill"
            event_log = Path(tmp) / "events.jsonl"

            _run_to_completion(
                _campaign_command(scale, seed, workers, ref_dir)
            )
            _interrupt_on_first_checkpoint(
                _campaign_command(scale, seed, workers, drill_dir, event_log),
                drill_dir,
            )
            kinds = [
                json.loads(line)["event"]
                for line in event_log.read_text().splitlines()
            ]
            if "campaign_interrupted" not in kinds:
                raise DrillFailure(
                    "no campaign_interrupted event in the drained log"
                )
            if "campaign_finished" in kinds:
                raise DrillFailure("drained campaign also claims it finished")
            drained = len(list(drill_dir.glob("month-*.json")))
            reference = _checkpoint_bytes(ref_dir)
            if not 0 < drained < len(reference):
                raise DrillFailure(
                    f"drain landed {drained} checkpoints of "
                    f"{len(reference)}; expected a strict mid-campaign cut"
                )

            _run_to_completion(
                _campaign_command(
                    scale, seed, workers, drill_dir, resume=True
                )
            )
            resumed = _checkpoint_bytes(drill_dir)
            if resumed != reference:
                diverged = sorted(
                    name for name in reference
                    if resumed.get(name) != reference[name]
                )
                raise DrillFailure(
                    f"workers={workers}: resumed checkpoints diverge from "
                    f"the straight run: {diverged or 'missing files'}"
                )
            digests[workers] = _worker_invariant_digest(drill_dir)
            print(
                f"  workers={workers}: drained at {drained}/{len(reference)} "
                f"months, resume byte-identical, digest {digests[workers][:12]}"
            )
    if len(set(digests.values())) != 1:
        raise DrillFailure(
            f"worker-invariant digests diverge across worker counts: {digests}"
        )


# ----------------------------------------------------------------------
# Leg 2: storage-fault accounting identity on every surface
# ----------------------------------------------------------------------


def _counter_totals(registry, name) -> int:
    return sum(
        entry["value"]
        for entry in registry.snapshot()["counters"]
        if entry["name"] == name
    )


def _assert_accounting_closes(registry, context) -> tuple[int, int, int]:
    injected = _counter_totals(registry, "faults.storage.injected")
    absorbed = _counter_totals(registry, "faults.storage.absorbed")
    surfaced = _counter_totals(registry, "faults.storage.surfaced")
    if injected == 0:
        raise DrillFailure(f"{context}: the storage drill injected nothing")
    if injected != absorbed + surfaced:
        raise DrillFailure(
            f"{context}: accounting identity broken: injected={injected} "
            f"!= absorbed={absorbed} + surfaced={surfaced}"
        )
    return injected, absorbed, surfaced


def _assert_no_temp_files(directory) -> None:
    leaked = list(Path(directory).rglob("*.tmp"))
    if leaked:
        raise DrillFailure(f"leaked temp files: {leaked}")


def _drill_storage(scale, seed) -> None:
    from repro.faults import FaultPlan
    from repro.monitor import EventLog, StatusBoard
    from repro.scan.campaign import ScanCampaign
    from repro.scan.ecs_scanner import EcsScanSettings
    from repro.telemetry import Telemetry
    from repro.worldgen import WorldConfig, build_world

    with tempfile.TemporaryDirectory(prefix="chaos-storage-") as tmp:
        # Full campaign: checkpoint + eventlog surfaces under fire.
        telemetry = Telemetry()
        plan = FaultPlan("hostile", seed=seed)
        world = build_world(WorldConfig(seed=seed, scale=scale))
        events = EventLog(
            Path(tmp) / "events.jsonl",
            clock=world.clock,
            gate=plan.storage,
            registry=telemetry.registry,
            status=StatusBoard(),
        )
        campaign = ScanCampaign(
            server=world.route53,
            routing=world.routing,
            clock=world.clock,
            settings=EcsScanSettings(campaign_seed=seed, fault_plan=plan),
            telemetry=telemetry,
            checkpoint_dir=Path(tmp) / "checkpoints",
            events=events,
        )
        with campaign:
            months = campaign.run(world.scan_months())
        events.close()
        if len(months) != len(world.scan_months()):
            raise DrillFailure("full campaign lost months under storage faults")
        injected, absorbed, surfaced = _assert_accounting_closes(
            telemetry.registry, "full campaign"
        )
        _assert_no_temp_files(tmp)
        print(
            f"  full campaign: injected={injected} absorbed={absorbed} "
            f"surfaced={surfaced} (identity holds)"
        )

        # Delta campaign: the snapshot surface's retry/carry-forward path.
        telemetry = Telemetry()
        plan = FaultPlan("hostile", seed=seed)
        world = build_world(WorldConfig(seed=seed, scale=scale))
        campaign = ScanCampaign(
            server=world.route53,
            routing=world.routing,
            clock=world.clock,
            settings=EcsScanSettings(campaign_seed=seed, fault_plan=plan),
            telemetry=telemetry,
            mode="delta",
            snapshot_dir=Path(tmp) / "snapshots",
        )
        with campaign:
            rounds = campaign.run_continuous(2022, 1, rounds=4)
        if len(rounds) != 4:
            raise DrillFailure("delta campaign lost rounds under storage faults")
        injected, absorbed, surfaced = _assert_accounting_closes(
            telemetry.registry, "delta campaign"
        )
        _assert_no_temp_files(tmp)
        print(
            f"  delta campaign: injected={injected} absorbed={absorbed} "
            f"surfaced={surfaced} (identity holds)"
        )


# ----------------------------------------------------------------------
# Leg 3: hung-shard detection and bit-identical recovery
# ----------------------------------------------------------------------


class _EventSink:
    def __init__(self):
        self.kinds = []

    def emit(self, event, **fields):
        self.kinds.append(event)


def _hostile_campaign(scale, seed, workers, shard_deadline, telemetry, events):
    from repro.faults import FaultPlan
    from repro.scan.campaign import ScanCampaign
    from repro.scan.ecs_scanner import EcsScanSettings
    from repro.worldgen import WorldConfig, build_world

    world = build_world(WorldConfig(seed=seed, scale=scale))
    campaign = ScanCampaign(
        server=world.route53,
        routing=world.routing,
        clock=world.clock,
        settings=EcsScanSettings(
            workers=workers,
            campaign_seed=seed,
            fault_plan=FaultPlan("hostile", seed=seed),
        ),
        telemetry=telemetry,
        events=events,
        shard_deadline=shard_deadline,
    )
    with campaign:
        campaign.run(world.scan_months()[:1])
    return campaign


def _drill_hang(scale, seed, workers, deadline) -> None:
    from repro.telemetry import Telemetry

    telemetry = Telemetry()
    events = _EventSink()
    started = time.monotonic()
    drilled = _hostile_campaign(
        scale, seed, workers, deadline, telemetry, events
    )
    elapsed = time.monotonic() - started
    if "shard_hung" not in events.kinds:
        raise DrillFailure(
            "watchdog never fired (is the hostile hang drill keyed to a "
            "shard this worker count plans?)"
        )
    hung = _counter_totals(telemetry.registry, "shards.hung")
    if hung < 1:
        raise DrillFailure("shards.hung counter did not advance")

    reference = _hostile_campaign(
        scale, seed, workers, None, Telemetry(), _EventSink()
    )
    month, ref_month = drilled.months[0], reference.months[0]
    for scan, ref_scan in (
        (month.default, ref_month.default),
        (month.fallback, ref_month.fallback),
    ):
        if scan is None or ref_scan is None:
            if scan is not ref_scan:
                raise DrillFailure("hang recovery dropped a scan entirely")
            continue
        if (
            scan.queries_sent != ref_scan.queries_sent
            or scan.responses != ref_scan.responses
            or scan.sparse_responses != ref_scan.sparse_responses
        ):
            raise DrillFailure(
                "hang recovery diverged from the undisturbed sharded run"
            )
    print(
        f"  hang detected ({hung} shard[s]), recovered bit-identically "
        f"in {elapsed:.1f}s wall"
    )


def _assert_no_leaked_segments() -> None:
    shm = Path("/dev/shm")
    if not shm.is_dir():
        return
    leaked = [p.name for p in shm.glob(f"repro-{os.getpid()}-*")]
    leaked += [p.name for p in shm.glob("repro-*-hb")
               if not Path(f"/proc/{p.name.split('-')[1]}").is_dir()]
    if leaked:
        raise DrillFailure(f"leaked shared-memory segments: {sorted(set(leaked))}")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--workers",
        type=int,
        nargs="+",
        default=[1, 2, 4],
        help="worker counts for the SIGTERM drain leg (default: 1 2 4)",
    )
    parser.add_argument(
        "--hang-workers",
        type=int,
        default=4,
        help="worker count for the hung-shard leg (default 4; the hostile "
        "profile hangs shard 2, which needs >= 3 planned shards)",
    )
    parser.add_argument(
        "--shard-deadline",
        type=float,
        default=1.0,
        help="watchdog deadline for the hung-shard leg, seconds (default 1.0)",
    )
    parser.add_argument(
        "--skip",
        choices=["sigterm", "storage", "hang"],
        nargs="*",
        default=[],
        help="legs to skip (local iteration only; CI runs all three)",
    )
    args = parser.parse_args(argv)
    scale = float(os.environ.get("REPRO_BENCH_SCALE", "0.05"))
    seed = int(os.environ.get("REPRO_BENCH_SEED", "2022"))
    print(f"chaos drill at scale={scale} seed={seed} ...")
    try:
        if "sigterm" not in args.skip:
            print("leg 1: SIGTERM drain + resume")
            _drill_sigterm(scale, seed, args.workers)
        if "storage" not in args.skip:
            print("leg 2: storage-fault accounting")
            _drill_storage(scale, seed)
        if "hang" not in args.skip:
            print("leg 3: hung-shard watchdog")
            _drill_hang(scale, seed, args.hang_workers, args.shard_deadline)
        _assert_no_leaked_segments()
    except DrillFailure as error:
        print(f"CHAOS DRILL FAILED: {error}", file=sys.stderr)
        return 1
    print("chaos drill passed")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
