"""Scan-engine performance harness.

Times the three stages the fast path covers — world generation, one ECS
scan, and the full monthly campaign — at a pinned seed and scale, writes
the numbers to ``BENCH_scan.json``, and (by default) fails when the
campaign regresses more than the tolerance against the checked-in
``baseline.json``.

Usage::

    PYTHONPATH=src python benchmarks/perf/run_bench.py            # check
    PYTHONPATH=src python benchmarks/perf/run_bench.py --no-check # measure
    PYTHONPATH=src python benchmarks/perf/run_bench.py --update-baseline

Environment:

``REPRO_BENCH_SCALE``
    World scale (default 0.2, the acceptance scale).  CI smoke runs use
    0.05.
``REPRO_BENCH_SEED``
    World seed (default 2022).

Baseline refresh: run with ``--update-baseline`` on a quiet machine and
commit the new ``baseline.json`` together with the change that moved the
numbers.  The baseline records the *same scale* the check runs at; a
check against a baseline from a different scale is refused.
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys
import time
from pathlib import Path

HERE = Path(__file__).resolve().parent
BASELINE_PATH = HERE / "baseline.json"
OUTPUT_PATH = Path("BENCH_scan.json")


def current_commit() -> str:
    try:
        return subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            capture_output=True,
            text=True,
            check=True,
        ).stdout.strip()
    except (subprocess.CalledProcessError, FileNotFoundError):
        return "unknown"


def run_bench(scale: float, seed: int) -> dict:
    from repro.scan.campaign import ScanCampaign
    from repro.scan.ecs_scanner import EcsScanner, EcsScanSettings
    from repro.relay.service import RELAY_DOMAIN_QUIC
    from repro.worldgen import WorldConfig, build_world

    t0 = time.perf_counter()
    world = build_world(WorldConfig(seed=seed, scale=scale))
    worldgen_s = time.perf_counter() - t0

    # One QUIC scan at the April vantage, on its own world so the
    # campaign below starts from a cold server.
    scan_world = build_world(WorldConfig(seed=seed, scale=scale))
    scan_world.clock.advance_to(scan_world.deployment.april_scan_start)
    scanner = EcsScanner(
        scan_world.route53, scan_world.routing, scan_world.clock
    )
    t0 = time.perf_counter()
    scan = scanner.scan(RELAY_DOMAIN_QUIC)
    scan_s = time.perf_counter() - t0

    campaign = ScanCampaign(
        server=world.route53,
        routing=world.routing,
        clock=world.clock,
        settings=EcsScanSettings(),
    )
    t0 = time.perf_counter()
    months = campaign.run(world.scan_months())
    campaign_s = time.perf_counter() - t0

    campaign_queries = sum(
        scan_result.queries_sent
        for month in months
        for scan_result in (month.default, month.fallback)
        if scan_result is not None
    )
    return {
        "commit": current_commit(),
        "scale": scale,
        "seed": seed,
        "worldgen_s": round(worldgen_s, 3),
        "scan_s": round(scan_s, 3),
        "campaign_s": round(campaign_s, 3),
        "queries_per_s": round(campaign_queries / campaign_s, 1),
    }


def check_regression(result: dict, tolerance: float) -> int:
    if not BASELINE_PATH.exists():
        print(f"no baseline at {BASELINE_PATH}; run --update-baseline first")
        return 1
    baseline = json.loads(BASELINE_PATH.read_text())
    if baseline["scale"] != result["scale"]:
        print(
            f"baseline scale {baseline['scale']} != run scale {result['scale']}; "
            "refusing to compare (set REPRO_BENCH_SCALE or refresh the baseline)"
        )
        return 1
    limit = baseline["campaign_s"] * (1.0 + tolerance)
    print(
        f"campaign: {result['campaign_s']:.2f}s "
        f"(baseline {baseline['campaign_s']:.2f}s, limit {limit:.2f}s)"
    )
    if result["campaign_s"] > limit:
        print(
            f"FAIL: campaign regressed >{tolerance:.0%} vs baseline "
            f"commit {baseline.get('commit', '?')}"
        )
        return 1
    print("OK: within tolerance")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--check",
        dest="check",
        action="store_true",
        default=True,
        help="fail on regression vs baseline.json (default)",
    )
    parser.add_argument(
        "--no-check",
        dest="check",
        action="store_false",
        help="measure and write BENCH_scan.json only",
    )
    parser.add_argument(
        "--update-baseline",
        action="store_true",
        help="write this run's numbers to baseline.json",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.2,
        help="allowed fractional campaign_s regression (default 0.2)",
    )
    parser.add_argument(
        "--output",
        type=Path,
        default=OUTPUT_PATH,
        help=f"result path (default {OUTPUT_PATH})",
    )
    args = parser.parse_args(argv)

    scale = float(os.environ.get("REPRO_BENCH_SCALE", "0.2"))
    seed = int(os.environ.get("REPRO_BENCH_SEED", "2022"))
    print(f"benchmarking at scale={scale} seed={seed} ...")
    result = run_bench(scale, seed)
    args.output.write_text(json.dumps(result, indent=2) + "\n")
    print(json.dumps(result, indent=2))
    print(f"wrote {args.output}")

    if args.update_baseline:
        BASELINE_PATH.write_text(json.dumps(result, indent=2) + "\n")
        print(f"wrote {BASELINE_PATH}")
        return 0
    if args.check:
        return check_regression(result, args.tolerance)
    return 0


if __name__ == "__main__":
    sys.exit(main())
