"""Scan-engine performance harness.

Times every measurement stage of the pipeline — world generation, one
ECS scan, the full monthly campaign (sequential and, with ``--workers``
> 1, sharded), an Atlas measurement round, a relay egress-rotation scan
day, and the traceroute campaign — at a pinned seed and scale, writes
the numbers to ``BENCH_scan.json``, and (by default) fails when the
campaign wall time regresses more than the tolerance — or the campaign
throughput (``queries_per_s``) drops more than the tolerance below —
the checked-in ``baseline.json``.

The sharded campaign runs on a fresh same-seed world and is *verified*
against the sequential run before its timing is recorded: any
divergence in query counts, ingress sets, per-AS attribution, or server
stats fails the harness with exit 1.

Telemetry legs: the sharded campaign and extra sequential campaigns
run with live telemetry.  The harness gates (always, even with
``--no-check``) on ``deterministic_totals`` matching between the two —
the same invariant the sharded-telemetry tests and the CI cross-leg
comparison enforce — and on the telemetry-on sequential campaign
staying within 3 % (plus a 0.1 s noise floor) of the telemetry-off one
(check mode only).  A faults-off leg runs the sequential campaign with
the ``none`` fault profile attached: it must reproduce the plain
campaign exactly, and (check mode) stay within 2 % — the robustness
hooks may not tax the fault-free path.  A monitoring leg attaches the
live observability plane (StatusBoard + flushed EventLog + HTTP
endpoint thread) the same way, gated at 2 %: monitoring may observe,
never perturb — the monitored campaign must also reproduce the plain
one exactly.  All overhead legs run as
back-to-back (hooked, plain) pairs in process-CPU seconds and gate on
the best per-pair delta: wall-clock steal on shared machines dwarfs
the single-digit budgets, and even CPU-time noise is time-correlated
at minute scale, so only a paired delta reliably isolates what the
hooks themselves add.  Negative best-pair deltas are clamped at zero —
noise, not a speedup.  A delta-scan leg seeds the incremental engine,
measures the steady-state round cost as a fraction of a full rescan
(gated at 30 %), and drills one deployment change of each kind through
it (every change must surface within 3 rounds, and the accumulated
state must match a fresh full rescan digest-for-digest).  The reported ``campaign_s`` (and
with it ``queries_per_s``) is the best-of-N plain wall time — every
plain run is bit-identical work, so the minimum is the least-noisy
measurement of the same computation.  ``--telemetry-out PATH`` saves
a snapshot: the
sharded campaign's when that leg ran, else the sequential one's (so the
CI workers=1 and workers=4 artifacts compare across worker counts).

Usage::

    PYTHONPATH=src python benchmarks/perf/run_bench.py            # check
    PYTHONPATH=src python benchmarks/perf/run_bench.py --no-check # measure
    PYTHONPATH=src python benchmarks/perf/run_bench.py --update-baseline

Environment:

``REPRO_BENCH_SCALE``
    World scale (default 0.2, the acceptance scale).  CI smoke runs use
    0.05.
``REPRO_BENCH_SEED``
    World seed (default 2022).
``REPRO_BENCH_WORKERS``
    Shard worker count for the sharded campaign leg (default 4; set to
    1 to skip the sharded leg, e.g. in the CI workers=1 matrix cell).

Baseline refresh: run with ``--update-baseline`` on a quiet machine and
commit the new ``baseline.json`` together with the change that moved the
numbers.  The baseline records the *same scale* the check runs at; a
check against a baseline from a different scale is refused.
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys
import tempfile
import time
from pathlib import Path

HERE = Path(__file__).resolve().parent
BASELINE_PATH = HERE / "baseline.json"
OUTPUT_PATH = Path("BENCH_scan.json")


def current_commit() -> str:
    try:
        return subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            capture_output=True,
            text=True,
            check=True,
        ).stdout.strip()
    except (subprocess.CalledProcessError, FileNotFoundError):
        return "unknown"


def _campaign_scans(months):
    for month in months:
        yield month.default
        if month.fallback is not None:
            yield month.fallback


def _verify_sharded(sequential_months, sharded_months) -> list[str]:
    """Divergences between a sequential and a sharded campaign run."""
    problems = []
    seq = list(_campaign_scans(sequential_months))
    sharded = list(_campaign_scans(sharded_months))
    if len(seq) != len(sharded):
        return [f"scan count differs: {len(seq)} vs {len(sharded)}"]
    for a, b in zip(seq, sharded):
        tag = f"{a.domain} @{a.started_at:.0f}"
        if a.queries_sent != b.queries_sent:
            problems.append(f"{tag}: queries {a.queries_sent} vs {b.queries_sent}")
        if a.finished_at != b.finished_at:
            problems.append(f"{tag}: finish {a.finished_at} vs {b.finished_at}")
        if a.addresses() != b.addresses():
            problems.append(f"{tag}: ingress sets differ")
        if a.addresses_by_asn() != b.addresses_by_asn():
            problems.append(f"{tag}: per-AS attribution differs")
        if a.slash24s_by_asn() != b.slash24s_by_asn():
            problems.append(f"{tag}: per-AS subnet counts differ")
    return problems


def _delta_leg(scale: float, seed: int, workers: int) -> dict:
    """The delta-scan engine leg: seed, steady rounds, a churn drill.

    Measures the steady-state round cost as a fraction of a full rescan
    and how many rounds the engine needs to surface one injected change
    of every churn kind.  Two correctness invariants are enforced here
    rather than gated (they are exact, not budgets): every injected
    change must be detected within the refresh horizon, and the
    delta-accumulated state must be digest-identical to a fresh full
    rescan of the churned world.  Violations raise
    :class:`DeltaDivergence`.
    """
    from repro.relay.service import RELAY_DOMAIN_FALLBACK, RELAY_DOMAIN_QUIC
    from repro.scan.ecs_scanner import EcsScanner, EcsScanSettings
    from repro.scan.incremental import DeltaScanEngine, result_digest
    from repro.scan.sharding import ShardedCampaignExecutor
    from repro.worldgen import WorldConfig, build_world
    from repro.worldgen.deployment import DeploymentChurn, scan_time

    world = build_world(WorldConfig(seed=seed, scale=scale))
    world.clock.advance_to(scan_time(2022, 1))
    settings = EcsScanSettings(workers=workers, campaign_seed=seed)
    scanner = EcsScanner(world.route53, world.routing, world.clock, settings)
    executor = scanner
    if workers > 1 and ShardedCampaignExecutor.supported():
        executor = ShardedCampaignExecutor(scanner, workers)
    problems: list[str] = []
    try:
        engine = DeltaScanEngine(executor, refresh_rounds=3)
        t0 = time.perf_counter()
        engine.ensure_seeded()
        seed_s = time.perf_counter() - t0

        steady_frac = 0.0
        round_s = None
        for _ in range(engine.refresh_rounds):
            t0 = time.perf_counter()
            rnd = engine.run_round()
            elapsed = time.perf_counter() - t0
            if round_s is None or elapsed < round_s:
                round_s = elapsed
            steady_frac = max(steady_frac, rnd.queries_frac)

        churn = DeploymentChurn(world.assignment, world.ingress_v4, world.clock.now)
        records = churn.inject_standard(seed=seed)
        detected: dict[int, int] = {}
        for attempt in range(engine.refresh_rounds):
            rnd = engine.run_round()
            for event in rnd.events:
                detected.setdefault(event.value, attempt + 1)
        detection_rounds = 0
        for record in records:
            rounds_needed = detected.get(record.block_value)
            if rounds_needed is None:
                problems.append(
                    f"{record.kind} at {record.prefix} undetected after "
                    f"{engine.refresh_rounds} delta rounds"
                )
            else:
                detection_rounds = max(detection_rounds, rounds_needed)

        for domain in (RELAY_DOMAIN_QUIC, RELAY_DOMAIN_FALLBACK):
            accumulated = result_digest(engine.accumulated(domain))
            fresh = result_digest(executor.scan(domain))
            if accumulated != fresh:
                problems.append(
                    f"{domain}: delta-accumulated state diverges from a "
                    f"fresh full rescan"
                )
    finally:
        if executor is not scanner:
            executor.close()
    if problems:
        raise DeltaDivergence(problems)
    return {
        "delta_seed_s": round(seed_s, 3),
        "delta_round_s": round(round_s, 3),
        "delta_queries_frac": round(steady_frac, 4),
        "detection_rounds": detection_rounds,
    }


def run_bench(scale: float, seed: int, workers: int) -> dict:
    from repro.scan.campaign import ScanCampaign
    from repro.scan.ecs_scanner import EcsScanner, EcsScanSettings
    from repro.scan.sharding import ShardedCampaignExecutor
    from repro.scan.atlas_scanner import AtlasIngressScanner
    from repro.scan.relay_scanner import RelayScanConfig, RelayScanner
    from repro.scan.traceroute_campaign import (
        LabelledTarget,
        run_traceroute_campaign,
    )
    from repro.relay.service import RELAY_DOMAIN_QUIC
    from repro.telemetry import NULL_TELEMETRY, Telemetry, deterministic_totals
    from repro.worldgen import WorldConfig, build_world

    t0 = time.perf_counter()
    world = build_world(WorldConfig(seed=seed, scale=scale))
    worldgen_s = time.perf_counter() - t0

    # One QUIC scan at the April vantage, on its own world so the
    # campaign below starts from a cold server.
    scan_world = build_world(WorldConfig(seed=seed, scale=scale))
    scan_world.clock.advance_to(scan_world.deployment.april_scan_start)
    scanner = EcsScanner(
        scan_world.route53, scan_world.routing, scan_world.clock
    )
    t0 = time.perf_counter()
    scan = scanner.scan(RELAY_DOMAIN_QUIC)
    scan_s = time.perf_counter() - t0

    # The other measurement legs, on the April-vantage world.
    atlas = AtlasIngressScanner(
        scan_world.atlas, scan_world.routing, {714, 36183}
    )
    t0 = time.perf_counter()
    atlas.measure_ingress_v4(RELAY_DOMAIN_QUIC)
    atlas_s = time.perf_counter() - t0

    client = scan_world.make_vantage_client()
    relay_scanner = RelayScanner(
        client, scan_world.web_server, scan_world.echo_server, scan_world.clock
    )
    t0 = time.perf_counter()
    relay_scanner.run(RelayScanConfig(300.0, 21_600.0), "bench")
    relay_scan_s = time.perf_counter() - t0

    targets = [
        LabelledTarget(address, "ingress", asn)
        for asn, addresses in sorted(scan.addresses_by_asn().items())
        for address in sorted(addresses)
    ]
    t0 = time.perf_counter()
    run_traceroute_campaign(
        scan_world.topology, scan_world.vantage_router_id, targets
    )
    traceroute_s = time.perf_counter() - t0

    traceroute_targets = len(targets)
    # Drop the scan world before the campaign legs: the sharded leg
    # forks the interpreter, and every live world in the parent inflates
    # the copy-on-write cost of the workers.
    del scan_world, scanner, scan, atlas, client, relay_scanner, targets

    # Sharded leg first, while the parent heap holds only the two
    # campaign worlds (its fork cost depends on live parent state; the
    # sequential leg's timing does not).
    sharded_s = None
    sharded_months = None
    sharded_snapshot = None
    if workers > 1 and ShardedCampaignExecutor.supported():
        sharded_telemetry = Telemetry()
        sharded_world = build_world(
            WorldConfig(seed=seed, scale=scale), telemetry=sharded_telemetry
        )
        with ScanCampaign(
            server=sharded_world.route53,
            routing=sharded_world.routing,
            clock=sharded_world.clock,
            settings=EcsScanSettings(workers=workers, campaign_seed=seed),
            telemetry=sharded_telemetry,
        ) as sharded_campaign:
            t0 = time.perf_counter()
            sharded_months = sharded_campaign.run(sharded_world.scan_months())
            sharded_s = time.perf_counter() - t0
        sharded_snapshot = sharded_telemetry.snapshot()
        del sharded_world, sharded_campaign, sharded_telemetry

    campaign = ScanCampaign(
        server=world.route53,
        routing=world.routing,
        clock=world.clock,
        settings=EcsScanSettings(),
    )
    t0 = time.perf_counter()
    c0 = time.process_time()
    months = campaign.run(world.scan_months())
    campaign_cpu_s = time.process_time() - c0
    campaign_s = time.perf_counter() - t0

    campaign_queries = sum(
        scan_result.queries_sent for scan_result in _campaign_scans(months)
    )

    # Overhead legs (telemetry-on, faults-off) are measured in
    # **process-CPU seconds**: on shared machines, wall-clock steal
    # dwarfs the 2-3 % budgets (identical campaigns have been observed
    # to differ 3x run to run), while CPU time counts only the
    # instructions this process executed — exactly what a hook's
    # overhead adds.  Each hooked run is paired with an immediate plain
    # re-run and the gate takes the best per-pair delta (see the pairing
    # comment below).  The plain re-runs also tighten the shared
    # campaign base seeded by the headline run above.
    from repro.faults import FaultPlan

    def _campaign_leg(fault_plan=None, with_telemetry=False, with_monitor=False):
        telemetry = Telemetry() if with_telemetry else None
        leg_world = build_world(
            WorldConfig(seed=seed, scale=scale), telemetry=telemetry
        )
        status = events = server = event_dir = None
        if with_monitor:
            from repro.monitor import EventLog, MonitorServer, StatusBoard

            status = StatusBoard()
            event_dir = tempfile.TemporaryDirectory(prefix="repro-monitor-")
            events = EventLog(
                Path(event_dir.name) / "events.jsonl", clock=leg_world.clock
            )
            server = MonitorServer(
                status, telemetry if telemetry is not None else NULL_TELEMETRY
            ).start()
        leg_campaign = ScanCampaign(
            server=leg_world.route53,
            routing=leg_world.routing,
            clock=leg_world.clock,
            settings=EcsScanSettings(fault_plan=fault_plan),
            telemetry=telemetry if telemetry is not None else NULL_TELEMETRY,
            status=status,
            events=events,
        )
        try:
            t0 = time.perf_counter()
            c0 = time.process_time()
            leg_months = leg_campaign.run(leg_world.scan_months())
            cpu = time.process_time() - c0
            elapsed = time.perf_counter() - t0
        finally:
            if server is not None:
                server.stop()
            if events is not None:
                events.close()
            if event_dir is not None:
                event_dir.cleanup()
        snapshot = telemetry.snapshot() if telemetry is not None else None
        return elapsed, cpu, leg_months, snapshot

    OVERHEAD_RUNS = 3
    campaign_base_s = campaign_s
    campaign_base_cpu_s = campaign_cpu_s

    # Overhead legs run as back-to-back (hooked, plain) *pairs* and gate
    # on the minimum per-pair CPU delta.  CPU-time noise on shared boxes
    # is time-correlated at minute scale (a slow window inflates every
    # sample in it by 10-20 %), so comparing independent minima can
    # fabricate large overheads when one side's runs all land in a slow
    # window; members of one pair see the same window, so their delta
    # cancels the drift.
    campaign_telemetry_cpu_s = None
    telemetry_delta_cpu_s = None
    seq_snapshot = None
    for attempt in range(OVERHEAD_RUNS):
        _, cpu, leg_months, snapshot = _campaign_leg(with_telemetry=True)
        if campaign_telemetry_cpu_s is None or cpu < campaign_telemetry_cpu_s:
            campaign_telemetry_cpu_s = cpu
        if attempt == 0:
            problems = _verify_sharded(months, leg_months)
            if problems:
                raise ShardDivergence(
                    [f"telemetry-on sequential: {p}" for p in problems]
                )
            seq_snapshot = snapshot
        del leg_months
        elapsed, plain_cpu, leg_months, _ = _campaign_leg()
        delta = cpu - plain_cpu
        if telemetry_delta_cpu_s is None or delta < telemetry_delta_cpu_s:
            telemetry_delta_cpu_s = delta
        if elapsed < campaign_base_s:
            campaign_base_s = elapsed
        if plain_cpu < campaign_base_cpu_s:
            campaign_base_cpu_s = plain_cpu
        del leg_months

    # Faults-off leg: an attached "none" profile exercises every fault
    # hook (gate checks in the scan kernels, the retry plumbing) without
    # injecting anything.  It must reproduce the plain campaign exactly,
    # and its overhead is gated like telemetry's — robustness hooks may
    # not tax the fault-free path.
    campaign_faults_off_cpu_s = None
    faults_off_delta_cpu_s = None
    for attempt in range(OVERHEAD_RUNS):
        _, cpu, leg_months, _ = _campaign_leg(
            fault_plan=FaultPlan("none", seed=seed)
        )
        if campaign_faults_off_cpu_s is None or cpu < campaign_faults_off_cpu_s:
            campaign_faults_off_cpu_s = cpu
        if attempt == 0:
            problems = _verify_sharded(months, leg_months)
            if problems:
                raise ShardDivergence(
                    [f"faults-off (none profile): {p}" for p in problems]
                )
        del leg_months
        elapsed, plain_cpu, leg_months, _ = _campaign_leg()
        delta = cpu - plain_cpu
        if faults_off_delta_cpu_s is None or delta < faults_off_delta_cpu_s:
            faults_off_delta_cpu_s = delta
        if elapsed < campaign_base_s:
            campaign_base_s = elapsed
        if plain_cpu < campaign_base_cpu_s:
            campaign_base_cpu_s = plain_cpu
        del leg_months

    # Monitoring leg: the live plane (StatusBoard publishes, a flushed
    # EventLog, and an idle HTTP endpoint on its own thread) attached to
    # an otherwise plain campaign.  It must reproduce the plain campaign
    # exactly — monitoring may observe, never perturb — and its overhead
    # is gated at 2 % like the fault hooks': the board is only touched
    # once per scan/month, so the budget is generous.
    campaign_monitor_cpu_s = None
    monitor_delta_cpu_s = None
    for attempt in range(OVERHEAD_RUNS):
        _, cpu, leg_months, _ = _campaign_leg(with_monitor=True)
        if campaign_monitor_cpu_s is None or cpu < campaign_monitor_cpu_s:
            campaign_monitor_cpu_s = cpu
        if attempt == 0:
            problems = _verify_sharded(months, leg_months)
            if problems:
                raise ShardDivergence(
                    [f"monitoring-on sequential: {p}" for p in problems]
                )
        del leg_months
        elapsed, plain_cpu, leg_months, _ = _campaign_leg()
        delta = cpu - plain_cpu
        if monitor_delta_cpu_s is None or delta < monitor_delta_cpu_s:
            monitor_delta_cpu_s = delta
        if elapsed < campaign_base_s:
            campaign_base_s = elapsed
        if plain_cpu < campaign_base_cpu_s:
            campaign_base_cpu_s = plain_cpu
        del leg_months

    # Even the best-of-pairs delta can come out slightly negative when
    # the hooked member of every pair got the quieter CPU window; a
    # negative overhead is measurement noise, not a speedup, so clamp
    # at zero rather than publishing a nonsensical negative cost.
    telemetry_delta_cpu_s = max(telemetry_delta_cpu_s, 0.0)
    faults_off_delta_cpu_s = max(faults_off_delta_cpu_s, 0.0)
    monitor_delta_cpu_s = max(monitor_delta_cpu_s, 0.0)

    delta_fields = _delta_leg(scale, seed, workers)

    result = {
        "commit": current_commit(),
        "scale": scale,
        "seed": seed,
        "workers": workers,
        "worldgen_s": round(worldgen_s, 3),
        "scan_s": round(scan_s, 3),
        "atlas_s": round(atlas_s, 3),
        "relay_scan_s": round(relay_scan_s, 3),
        "traceroute_s": round(traceroute_s, 3),
        "traceroute_targets": traceroute_targets,
        "campaign_s": round(campaign_base_s, 3),
        "queries_per_s": round(campaign_queries / campaign_base_s, 1),
        "campaign_cpu_s": round(campaign_base_cpu_s, 3),
        "campaign_telemetry_cpu_s": round(campaign_telemetry_cpu_s, 3),
        "telemetry_overhead_cpu_s": round(telemetry_delta_cpu_s, 3),
        "telemetry_overhead": round(
            telemetry_delta_cpu_s / campaign_base_cpu_s, 4
        ),
        "campaign_faults_off_cpu_s": round(campaign_faults_off_cpu_s, 3),
        "fault_hook_overhead_cpu_s": round(faults_off_delta_cpu_s, 3),
        "fault_hook_overhead": round(
            faults_off_delta_cpu_s / campaign_base_cpu_s, 4
        ),
        "campaign_monitor_cpu_s": round(campaign_monitor_cpu_s, 3),
        "monitor_overhead_cpu_s": round(monitor_delta_cpu_s, 3),
        "monitor_overhead": round(
            monitor_delta_cpu_s / campaign_base_cpu_s, 4
        ),
        **delta_fields,
        "telemetry": {"metrics": seq_snapshot["metrics"]},
    }
    snapshot_out = seq_snapshot

    if sharded_months is not None:
        problems = _verify_sharded(months, sharded_months)
        if problems:
            raise ShardDivergence(problems)
        result["campaign_sharded_s"] = round(sharded_s, 3)
        result["sharded_speedup"] = round(campaign_base_s / sharded_s, 2)
        # The merged shard totals must be bit-identical to the
        # sequential run's — the same invariant the CI cross-leg
        # comparison checks between the workers=1 and workers=4 jobs.
        seq_totals = deterministic_totals(seq_snapshot)
        sharded_totals = deterministic_totals(sharded_snapshot)
        diffs = [
            f"{key}: sequential {seq_totals.get(key)} vs "
            f"sharded {sharded_totals.get(key)}"
            for key in sorted(set(seq_totals) | set(sharded_totals))
            if seq_totals.get(key) != sharded_totals.get(key)
        ]
        if diffs:
            raise ShardDivergence([f"telemetry totals: {d}" for d in diffs])
        result["telemetry_deterministic_keys"] = len(seq_totals)
        snapshot_out = sharded_snapshot
    return result, snapshot_out


class ShardDivergence(Exception):
    """The sharded campaign did not reproduce the sequential outputs."""

    def __init__(self, problems: list[str]) -> None:
        super().__init__("; ".join(problems))
        self.problems = problems


class DeltaDivergence(Exception):
    """The delta-scan leg missed a change or diverged from a full rescan."""

    def __init__(self, problems: list[str]) -> None:
        super().__init__("; ".join(problems))
        self.problems = problems


#: Telemetry-on vs telemetry-off campaign budget: 3 % of the campaign,
#: with an absolute noise floor for very fast (smoke-scale) runs.
TELEMETRY_OVERHEAD_FRACTION = 0.03
TELEMETRY_OVERHEAD_FLOOR_S = 0.1

#: Attached-but-inactive fault plan ("none" profile) budget: 2 % of the
#: campaign, same absolute noise floor.
FAULT_HOOK_OVERHEAD_FRACTION = 0.02
FAULT_HOOK_OVERHEAD_FLOOR_S = 0.1

#: Live monitoring plane (StatusBoard + EventLog + HTTP endpoint)
#: budget: 2 % of the campaign, same absolute noise floor.
MONITOR_OVERHEAD_FRACTION = 0.02
MONITOR_OVERHEAD_FLOOR_S = 0.1

#: A steady-state delta round may cost at most this fraction of a full
#: rescan's queries.
DELTA_QUERIES_FRAC_LIMIT = 0.30

#: Every injected deployment change must surface within this many delta
#: rounds (the refresh-wheel horizon).
DELTA_DETECTION_ROUNDS_LIMIT = 3


def check_delta(result: dict) -> int:
    frac = result["delta_queries_frac"]
    rounds = result["detection_rounds"]
    print(
        f"delta scan: steady round {frac:.1%} of a full rescan "
        f"(limit {DELTA_QUERIES_FRAC_LIMIT:.0%}), changes detected within "
        f"{rounds} rounds (limit {DELTA_DETECTION_ROUNDS_LIMIT})"
    )
    if frac > DELTA_QUERIES_FRAC_LIMIT:
        print(
            f"FAIL: steady-state delta round exceeded "
            f"{DELTA_QUERIES_FRAC_LIMIT:.0%} of a full rescan"
        )
        return 1
    if rounds > DELTA_DETECTION_ROUNDS_LIMIT:
        print(
            f"FAIL: change detection took more than "
            f"{DELTA_DETECTION_ROUNDS_LIMIT} delta rounds"
        )
        return 1
    print("OK: delta scan within budget")
    return 0


def check_fault_hook_overhead(result: dict) -> int:
    off = result["campaign_cpu_s"]
    delta = result["fault_hook_overhead_cpu_s"]
    budget = max(FAULT_HOOK_OVERHEAD_FRACTION * off, FAULT_HOOK_OVERHEAD_FLOOR_S)
    print(
        f"fault-hook overhead: {delta:+.3f} CPU s (best pair, "
        f"{result['fault_hook_overhead']:+.2%}, budget {budget:.3f}s)"
    )
    if delta > budget:
        print(
            f"FAIL: faults-off campaign exceeded the "
            f"{FAULT_HOOK_OVERHEAD_FRACTION:.0%} fault-hook overhead budget"
        )
        return 1
    print("OK: fault-hook overhead within budget")
    return 0


def check_monitor_overhead(result: dict) -> int:
    off = result["campaign_cpu_s"]
    delta = result["monitor_overhead_cpu_s"]
    budget = max(MONITOR_OVERHEAD_FRACTION * off, MONITOR_OVERHEAD_FLOOR_S)
    print(
        f"monitoring overhead: {delta:+.3f} CPU s (best pair, "
        f"{result['monitor_overhead']:+.2%}, budget {budget:.3f}s)"
    )
    if delta > budget:
        print(
            f"FAIL: monitoring-on campaign exceeded the "
            f"{MONITOR_OVERHEAD_FRACTION:.0%} overhead budget"
        )
        return 1
    print("OK: monitoring overhead within budget")
    return 0


def check_telemetry_overhead(result: dict) -> int:
    off = result["campaign_cpu_s"]
    delta = result["telemetry_overhead_cpu_s"]
    budget = max(TELEMETRY_OVERHEAD_FRACTION * off, TELEMETRY_OVERHEAD_FLOOR_S)
    print(
        f"telemetry overhead: {delta:+.3f} CPU s (best pair, "
        f"{result['telemetry_overhead']:+.2%}, budget {budget:.3f}s)"
    )
    if delta > budget:
        print(
            f"FAIL: telemetry-on campaign exceeded the "
            f"{TELEMETRY_OVERHEAD_FRACTION:.0%} overhead budget"
        )
        return 1
    print("OK: telemetry overhead within budget")
    return 0


def check_regression(result: dict, tolerance: float) -> int:
    if not BASELINE_PATH.exists():
        print(f"no baseline at {BASELINE_PATH}; run --update-baseline first")
        return 1
    baseline = json.loads(BASELINE_PATH.read_text())
    if baseline["scale"] != result["scale"]:
        print(
            f"baseline scale {baseline['scale']} != run scale {result['scale']}; "
            "refusing to compare (set REPRO_BENCH_SCALE or refresh the baseline)"
        )
        return 1
    limit = baseline["campaign_s"] * (1.0 + tolerance)
    print(
        f"campaign: {result['campaign_s']:.2f}s "
        f"(baseline {baseline['campaign_s']:.2f}s, limit {limit:.2f}s)"
    )
    if result["campaign_s"] > limit:
        print(
            f"FAIL: campaign regressed >{tolerance:.0%} vs baseline "
            f"commit {baseline.get('commit', '?')}"
        )
        return 1
    baseline_qps = baseline.get("queries_per_s")
    if baseline_qps:
        floor = baseline_qps * (1.0 - tolerance)
        print(
            f"throughput: {result['queries_per_s']:,.0f} queries/s "
            f"(baseline {baseline_qps:,.0f}, floor {floor:,.0f})"
        )
        if result["queries_per_s"] < floor:
            print(
                f"FAIL: queries_per_s regressed >{tolerance:.0%} vs baseline "
                f"commit {baseline.get('commit', '?')}"
            )
            return 1
    print("OK: within tolerance")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--check",
        dest="check",
        action="store_true",
        default=True,
        help="fail on regression vs baseline.json (default)",
    )
    parser.add_argument(
        "--no-check",
        dest="check",
        action="store_false",
        help="measure and write BENCH_scan.json only",
    )
    parser.add_argument(
        "--update-baseline",
        action="store_true",
        help="write this run's numbers to baseline.json",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.2,
        help="allowed fractional campaign_s regression (default 0.2)",
    )
    parser.add_argument(
        "--output",
        type=Path,
        default=OUTPUT_PATH,
        help=f"result path (default {OUTPUT_PATH})",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=int(os.environ.get("REPRO_BENCH_WORKERS", "4")),
        help="worker count for the sharded campaign leg; 1 skips it "
        "(default $REPRO_BENCH_WORKERS or 4)",
    )
    parser.add_argument(
        "--telemetry-out",
        type=Path,
        default=None,
        metavar="PATH",
        help="write the campaign telemetry snapshot here (the sharded "
        "campaign's when that leg ran, else the sequential one's)",
    )
    args = parser.parse_args(argv)

    if args.telemetry_out is not None:
        # Fail now, not after minutes of benchmarking: the snapshot is
        # written at the very end of the run.
        parent = args.telemetry_out.resolve().parent
        if not parent.is_dir():
            print(
                f"error: --telemetry-out directory {parent} does not exist",
                file=sys.stderr,
            )
            return 2
        if not os.access(parent, os.W_OK):
            print(
                f"error: --telemetry-out directory {parent} is not writable",
                file=sys.stderr,
            )
            return 2

    scale = float(os.environ.get("REPRO_BENCH_SCALE", "0.2"))
    seed = int(os.environ.get("REPRO_BENCH_SEED", "2022"))
    print(
        f"benchmarking at scale={scale} seed={seed} workers={args.workers} ..."
    )
    try:
        result, snapshot = run_bench(scale, seed, args.workers)
    except ShardDivergence as divergence:
        print("FAIL: sharded campaign diverged from sequential:")
        for problem in divergence.problems:
            print(f"  {problem}")
        return 1
    except DeltaDivergence as divergence:
        print("FAIL: delta-scan leg violated a correctness invariant:")
        for problem in divergence.problems:
            print(f"  {problem}")
        return 1
    args.output.write_text(json.dumps(result, indent=2) + "\n")
    summary = {k: v for k, v in result.items() if k != "telemetry"}
    print(json.dumps(summary, indent=2))
    print(f"wrote {args.output}")
    if args.telemetry_out is not None:
        args.telemetry_out.write_text(json.dumps(snapshot, indent=2) + "\n")
        print(f"wrote {args.telemetry_out}")

    if args.update_baseline:
        # The baseline pins timings, not the (bulky) metric values.
        baseline = {k: v for k, v in result.items() if k != "telemetry"}
        BASELINE_PATH.write_text(json.dumps(baseline, indent=2) + "\n")
        print(f"wrote {BASELINE_PATH}")
        return 0
    if args.check:
        status = check_regression(result, args.tolerance)
        return (
            status
            or check_telemetry_overhead(result)
            or check_fault_hook_overhead(result)
            or check_monitor_overhead(result)
            or check_delta(result)
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())
