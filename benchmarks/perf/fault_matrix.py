"""Fault-matrix smoke: one (profile, workers) cell of the CI matrix.

Runs the monthly campaign under a named fault profile and proves the
robustness invariants end to end:

* **worker-count equivalence** — with ``--workers`` > 1 a sharded
  campaign runs next to the sequential reference and every externally
  visible output must match: query accounting, retry/give-up/injection
  accounting, the rate-limit timeline, ingress address sets, per-AS
  attribution, server stats, the longitudinal archive CSVs, and the
  deterministic telemetry totals.  The ``hostile`` profile crashes a
  shard worker on its first attempt, so this leg also exercises pool
  recovery.
* **kill-and-resume** — a checkpointing campaign is run, its later
  month checkpoints are deleted (the simulated kill point), and a
  resumed campaign must reproduce the reference archives bit for bit.

Exit status 0 means every check passed; 1 lists the divergences.

Usage::

    PYTHONPATH=src python benchmarks/perf/fault_matrix.py \
        --profile hostile --workers 4 --telemetry-out fault-telemetry.json

Environment: ``REPRO_BENCH_SCALE`` (default 0.05) and
``REPRO_BENCH_SEED`` (default 2022), as for ``run_bench.py``.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import tempfile
from pathlib import Path


def _campaign_scans(campaign):
    for month in campaign.months:
        yield month.default
        if month.fallback is not None:
            yield month.fallback


def _run_campaign(
    scale: float,
    seed: int,
    profile: str,
    workers: int,
    telemetry=None,
    checkpoint_dir=None,
    resume: bool = False,
):
    from repro.faults import FaultPlan
    from repro.scan.campaign import ScanCampaign
    from repro.scan.ecs_scanner import EcsScanSettings
    from repro.worldgen import WorldConfig, build_world

    plan = None if profile == "none" else FaultPlan(profile, seed=seed)
    world = build_world(WorldConfig(seed=seed, scale=scale))
    campaign = ScanCampaign(
        server=world.route53,
        routing=world.routing,
        clock=world.clock,
        settings=EcsScanSettings(
            workers=workers, campaign_seed=seed, fault_plan=plan
        ),
        telemetry=telemetry if telemetry is not None else _null_telemetry(),
        checkpoint_dir=checkpoint_dir,
        resume=resume,
    )
    with campaign:
        campaign.run(world.scan_months())
    return world, campaign


def _null_telemetry():
    from repro.telemetry import NULL_TELEMETRY

    return NULL_TELEMETRY


def _compare_campaigns(tag: str, reference, candidate) -> list[str]:
    """Divergences between two campaigns' externally visible outputs."""
    ref_world, ref_campaign = reference
    cand_world, cand_campaign = candidate
    problems: list[str] = []
    ref_scans = list(_campaign_scans(ref_campaign))
    cand_scans = list(_campaign_scans(cand_campaign))
    if len(ref_scans) != len(cand_scans):
        return [f"{tag}: scan count {len(ref_scans)} vs {len(cand_scans)}"]
    for a, b in zip(ref_scans, cand_scans):
        scan_tag = f"{tag}: {a.domain} @{a.started_at:.0f}"
        for name in (
            "queries_sent",
            "sparse_queries",
            "sparse_answered",
            "retries",
            "gave_up",
            "fault_injected",
            "fault_wait_seconds",
            "finished_at",
        ):
            if getattr(a, name) != getattr(b, name):
                problems.append(
                    f"{scan_tag}: {name} {getattr(a, name)!r} vs "
                    f"{getattr(b, name)!r}"
                )
        if [(r.subnet, r.scope) for r in a.responses] != [
            (r.subnet, r.scope) for r in b.responses
        ]:
            problems.append(f"{scan_tag}: query streams differ")
        if a.addresses() != b.addresses():
            problems.append(f"{scan_tag}: ingress sets differ")
        if a.addresses_by_asn() != b.addresses_by_asn():
            problems.append(f"{scan_tag}: per-AS attribution differs")
    if ref_world.route53.stats != cand_world.route53.stats:
        problems.append(f"{tag}: server stats differ")
    for archive in ("default_archive", "fallback_archive"):
        if (
            getattr(ref_campaign, archive).to_csv()
            != getattr(cand_campaign, archive).to_csv()
        ):
            problems.append(f"{tag}: {archive} CSV differs")
    return problems


def _check_workers(scale, seed, profile, workers, telemetry_out) -> list[str]:
    from repro.telemetry import Telemetry, deterministic_totals

    seq_telemetry = Telemetry()
    reference = _run_campaign(scale, seed, profile, 1, telemetry=seq_telemetry)
    snapshot = seq_telemetry.snapshot()
    problems: list[str] = []
    if workers > 1:
        sharded_telemetry = Telemetry()
        sharded = _run_campaign(
            scale, seed, profile, workers, telemetry=sharded_telemetry
        )
        problems += _compare_campaigns(
            f"workers 1 vs {workers}", reference, sharded
        )
        seq_totals = deterministic_totals(snapshot)
        snapshot = sharded_telemetry.snapshot()
        sharded_totals = deterministic_totals(snapshot)
        problems += [
            f"telemetry: {key} sequential {seq_totals.get(key)} vs "
            f"sharded {sharded_totals.get(key)}"
            for key in sorted(set(seq_totals) | set(sharded_totals))
            if seq_totals.get(key) != sharded_totals.get(key)
        ]
    if telemetry_out is not None:
        telemetry_out.write_text(json.dumps(snapshot, indent=2) + "\n")
        print(f"wrote {telemetry_out}")
    return problems


def _check_kill_and_resume(scale, seed, profile, workers) -> list[str]:
    with tempfile.TemporaryDirectory(prefix="fault-matrix-ckpt-") as tmp:
        directory = Path(tmp)
        straight = _run_campaign(
            scale, seed, profile, workers, checkpoint_dir=directory
        )
        month_files = sorted(directory.glob("month-*.json"))
        if not month_files:
            return ["kill-and-resume: no checkpoints were written"]
        # The simulated kill: everything after the first half of the
        # campaign is lost and must be re-scanned on resume.
        for path in month_files[len(month_files) // 2 :]:
            path.unlink()
        resumed = _run_campaign(
            scale, seed, profile, workers, checkpoint_dir=directory, resume=True
        )
        return _compare_campaigns("kill-and-resume", straight, resumed)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--profile", default="none",
                        help="fault profile name (none, lossy, hostile)")
    parser.add_argument("--workers", type=int, default=1,
                        help="sharded worker count; 1 skips the sharded leg")
    parser.add_argument("--telemetry-out", type=Path, default=None,
                        metavar="PATH",
                        help="write the cell's telemetry snapshot here")
    args = parser.parse_args(argv)

    scale = float(os.environ.get("REPRO_BENCH_SCALE", "0.05"))
    seed = int(os.environ.get("REPRO_BENCH_SEED", "2022"))
    print(
        f"fault matrix cell: profile={args.profile} workers={args.workers} "
        f"scale={scale} seed={seed}"
    )
    problems = _check_workers(
        scale, seed, args.profile, args.workers, args.telemetry_out
    )
    problems += _check_kill_and_resume(scale, seed, args.profile, args.workers)
    if problems:
        print("FAIL:")
        for problem in problems:
            print(f"  {problem}")
        return 1
    print("OK: worker-count equivalence and kill-and-resume both reproduce")
    return 0


if __name__ == "__main__":
    sys.exit(main())
