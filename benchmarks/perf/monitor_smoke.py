"""Monitoring smoke drill: live endpoints under a real scanning campaign.

Launches a delta campaign as a subprocess with ``--serve-status`` and
``--event-log``, then exercises the monitoring plane from the outside
while the campaign is actually scanning:

* **liveness** — ``/health`` answers 200 within the startup window and
  keeps answering mid-campaign;
* **exposition** — every sample line ``/metrics`` returns parses as
  Prometheus text format (``name{labels} value``, value a float);
* **progress** — the ``rounds_completed`` counter in ``/status``
  advances between polls, proving the status board is wired to the
  live delta loop rather than a startup snapshot;
* **event log** — after a clean exit (rc 0) the log opens with a
  ``log_opened`` header at schema 1, carries one ``round_summary`` per
  round, and closes with ``campaign_finished``.

Usage::

    PYTHONPATH=src python benchmarks/perf/monitor_smoke.py \
        --event-log events.jsonl

Environment: ``REPRO_BENCH_SCALE`` (default 0.1) and
``REPRO_BENCH_SEED`` (default 2022), as for ``run_bench.py``.
"""

from __future__ import annotations

import argparse
import json
import os
import re
import subprocess
import sys
import tempfile
import time
import urllib.request
from pathlib import Path

ANNOUNCE = re.compile(r"serving status on (http://[\d.]+:\d+)")
SAMPLE = re.compile(
    r"^[A-Za-z_:][A-Za-z0-9_:]*(\{[^}]*\})? -?\d+(\.\d+)?([eE][+-]?\d+)?$"
)
STARTUP_TIMEOUT_S = 60.0
POLL_INTERVAL_S = 0.5


class SmokeFailure(Exception):
    """A monitoring-plane invariant did not hold."""


def _get(url: str, timeout: float = 5.0) -> str:
    with urllib.request.urlopen(url, timeout=timeout) as response:
        if response.status != 200:
            raise SmokeFailure(f"{url} answered {response.status}")
        return response.read().decode()


def _wait_for_announcement(process: subprocess.Popen) -> str:
    """Read campaign stdout until the server announces its bound port."""
    deadline = time.monotonic() + STARTUP_TIMEOUT_S
    assert process.stdout is not None
    while time.monotonic() < deadline:
        line = process.stdout.readline()
        if not line:
            raise SmokeFailure(
                "campaign exited before announcing the status server"
            )
        sys.stdout.write(line)
        match = ANNOUNCE.search(line)
        if match:
            return match.group(1)
    raise SmokeFailure("no status-server announcement within startup window")


def _check_metrics(base_url: str) -> int:
    """Fetch /metrics and parse every sample line; return the count."""
    body = _get(base_url + "/metrics")
    samples = 0
    for line in body.splitlines():
        if not line or line.startswith("#"):
            continue
        if not SAMPLE.match(line):
            raise SmokeFailure(f"unparseable metrics sample: {line!r}")
        samples += 1
    if samples == 0:
        raise SmokeFailure("/metrics returned no samples mid-campaign")
    return samples


def _watch_rounds(base_url: str, process: subprocess.Popen) -> list[int]:
    """Poll /status while the campaign runs; collect the round counter."""
    observed: list[int] = []
    while process.poll() is None:
        try:
            payload = json.loads(_get(base_url + "/status"))
        except OSError:
            break  # campaign wound the server down between poll() and GET
        rounds = payload.get("counters", {}).get("rounds_completed", 0)
        if not observed or rounds != observed[-1]:
            observed.append(rounds)
        time.sleep(POLL_INTERVAL_S)
    return observed


def _check_event_log(path: Path, expected_rounds: int) -> int:
    records = [
        json.loads(line) for line in path.read_text().splitlines() if line
    ]
    if not records:
        raise SmokeFailure("event log is empty")
    header = records[0]
    if header["event"] != "log_opened" or header["schema"] != 1:
        raise SmokeFailure(f"bad event-log header: {header}")
    kinds = [record["event"] for record in records]
    summaries = kinds.count("round_summary")
    if summaries != expected_rounds:
        raise SmokeFailure(
            f"expected {expected_rounds} round_summary events, "
            f"found {summaries}"
        )
    if kinds[-1] != "campaign_finished":
        raise SmokeFailure(f"log does not close with campaign_finished: "
                           f"{kinds[-1]}")
    return len(records)


def run_smoke(event_log: Path, scale: float, seed: int, rounds: int) -> None:
    with tempfile.TemporaryDirectory(prefix="monitor-smoke-") as tmp:
        command = [
            sys.executable, "-m", "repro.cli", "campaign",
            "--mode", "delta",
            "--scale", str(scale),
            "--seed", str(seed),
            "--rounds", str(rounds),
            "--snapshot-dir", str(Path(tmp) / "snapshots"),
            "--serve-status", "127.0.0.1:0",
            "--event-log", str(event_log),
        ]
        process = subprocess.Popen(
            command,
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
        )
        try:
            base_url = _wait_for_announcement(process)
            health = json.loads(_get(base_url + "/health"))
            if health.get("status") != "ok":
                raise SmokeFailure(f"/health payload: {health}")
            print(f"health ok at {base_url}")

            samples = _check_metrics(base_url)
            print(f"metrics parse ok ({samples} samples)")

            observed = _watch_rounds(base_url, process)
            print(f"status round counter observed: {observed}")
            if len(observed) < 2 or observed[-1] <= observed[0]:
                raise SmokeFailure(
                    f"round counter did not advance across polls: {observed}"
                )
            remaining_output, _ = process.communicate()
            sys.stdout.write(remaining_output)
        finally:
            if process.poll() is None:
                process.kill()
                process.wait()
        if process.returncode != 0:
            raise SmokeFailure(f"campaign exited {process.returncode}")

    emitted = _check_event_log(event_log, expected_rounds=rounds)
    print(f"event log ok ({emitted} records, {rounds} round summaries)")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--event-log",
        type=Path,
        default=Path("events.jsonl"),
        help="where the campaign writes its event log (default events.jsonl)",
    )
    parser.add_argument(
        "--rounds",
        type=int,
        default=40,
        help="delta rounds to run (default 40; keeps a wide polling window)",
    )
    args = parser.parse_args(argv)
    scale = float(os.environ.get("REPRO_BENCH_SCALE", "0.1"))
    seed = int(os.environ.get("REPRO_BENCH_SEED", "2022"))
    print(
        f"monitoring smoke drill at scale={scale} seed={seed} "
        f"rounds={args.rounds} ..."
    )
    try:
        run_smoke(args.event_log, scale, seed, args.rounds)
    except SmokeFailure as error:
        print(f"MONITOR SMOKE FAILED: {error}", file=sys.stderr)
        return 1
    print("monitoring smoke drill passed")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
