"""Section 4.1 — ECS scan validation via Atlas, IPv6 ingress, blocking.

Paper values: Atlas reports 1382 distinct IPv4 ingress addresses — 200
fewer than the ECS scan's 1586 — with a single Atlas-only address that
appeared during the 40-hour ECS scan window; IPv6 measurements find
1575 addresses (346 Apple + 1229 Akamai-PR); 10 % of probes time out,
~6-7 % fail with a response (72 % NXDOMAIN / 13 % NOERROR / 5 %
REFUSED), and 645 probes (5.5 %) are DNS-blocked.
"""

from repro.relay.service import RELAY_DOMAIN_QUIC
from repro.scan import EcsScanner

from _bench_utils import bench_scale


def test_s41_atlas_validation(benchmark, bench_world, april_scan, atlas_results, run_once):
    validation = atlas_results["validation"]

    # Timed step: the verification ECS scan that recovers the single
    # address Atlas saw first.
    world = bench_world
    verification = run_once(
        benchmark,
        lambda: EcsScanner(world.route53, world.routing, world.clock).scan(
            RELAY_DOMAIN_QUIC
        ),
    )
    print()
    print(
        f"Atlas: {validation.atlas_count} addresses, ECS: {validation.ecs_count}, "
        f"Atlas-only: {len(validation.atlas_only)}, ECS-only: {len(validation.ecs_only)}"
    )
    assert validation.ecs_count > validation.atlas_count
    assert len(validation.atlas_only) == 1
    # The verification scan uncovers the late relay.
    assert validation.atlas_only <= verification.addresses()
    if bench_scale() == 1.0:
        assert validation.ecs_count == 1586
        assert 1300 < validation.atlas_count < 1450  # paper: 1382
        assert 150 < len(validation.ecs_only) < 260  # paper: ~200


def test_s41_ipv6_ingress(benchmark, bench_world, atlas_results, run_once):
    world = bench_world
    report = atlas_results["v6"]
    by_asn = run_once(benchmark, lambda: report.by_asn(world.routing))
    print()
    print(f"IPv6 ingress: {len(report.addresses)} addresses, per AS: {by_asn}")
    assert set(by_asn) == {714, 36183}
    assert by_asn[36183] > 2.5 * by_asn[714]  # paper: 1229 vs 346
    assert report.rounds == 4
    if bench_scale() == 1.0:
        assert len(report.addresses) == 1575
        assert by_asn[714] == 346
        assert by_asn[36183] == 1229


def test_s41_blocking(benchmark, bench_world, atlas_results, run_once):
    report = atlas_results["blocking"]
    shares = run_once(benchmark, lambda: report.rcode_breakdown_shares())
    print()
    print(
        f"timeouts {report.timeout_share:.1%}, failures {report.failure_share:.1%}, "
        f"blocked {report.blocked_probes} ({report.blocked_share:.1%}), "
        f"rcodes {report.rcode_counts}, hijacks {report.hijacked_probes}"
    )
    assert 0.07 < report.timeout_share < 0.13  # paper: 10 %
    assert not report.timeouts_attributed_to_blocking
    assert 0.04 < report.failure_share < 0.09  # paper: 7 %
    assert 0.6 < shares.get("NXDOMAIN", 0.0) < 0.85  # paper: 72 %
    assert 0.05 < shares.get("NOERROR", 0.0) < 0.25  # paper: 13 %
    assert report.hijacked_probes == 1
    assert 0.04 < report.blocked_share < 0.07  # paper: 5.5 %
    if bench_scale() == 1.0:
        assert 600 < report.blocked_probes < 700  # paper: 645
