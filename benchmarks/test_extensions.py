"""Benchmarks for the extension analyses (beyond the paper's figures).

* **correlation attack** — the §6 adversary at fleet scale: only the
  dual-role AS joins (client, destination) pairs;
* **passive impact** — ISP attribution collapse and the IDS egress-list
  mitigation under a relay-heavy workload;
* **QoE backbone ablation** — how much the CDN backbone discount
  recovers of the two-hop latency penalty.

These run on a small dedicated world regardless of REPRO_BENCH_SCALE.
"""

import pytest

from repro import WorldConfig, build_world
from repro.analysis import (
    FlowRecord,
    IspMonitor,
    PassiveFlow,
    ServerSideIds,
    compare_paths,
    correlate_flows,
)
from repro.netmodel.addr import IPAddress
from repro.relay.ingress import RelayProtocol
from repro.relay.service import RELAY_DOMAIN_QUIC
from repro.scan import EcsScanner, RelayScanConfig, RelayScanner


@pytest.fixture(scope="module")
def ext_world():
    world = build_world(WorldConfig(seed=2022, scale=0.01))
    world.clock.advance_to(world.scan_start(2022, 4))
    return world


def test_extension_correlation_attack(benchmark, ext_world, run_once):
    world = ext_world
    vantage = world.ground.vantage_prefix
    ingress_pool = sorted(
        world.ingress_v4.active_addresses(world.clock.now, RelayProtocol.QUIC)
    )
    flows = []
    for i in range(400):
        client_address = IPAddress(4, vantage.value + 8192 + i)
        session = world.service.connect(
            client_address=client_address,
            client_asn=64496,
            client_country="DE",
            client_location=None,
            ingress_address=ingress_pool[i % len(ingress_pool)],
            target_authority=f"site-{i}.example",
            client_key=str(client_address),
        )
        flows.append(FlowRecord(tunnel=session.tunnel))
        world.clock.advance(0.7)

    results = run_once(
        benchmark,
        lambda: {
            asn: correlate_flows(flows, asn)
            for asn in (64496, 714, 36183, 13335)
        },
    )
    print()
    for asn, result in results.items():
        print(
            f"AS{asn}: sees-both={result.observable_flows} "
            f"claimed={len(result.pairs)} precision={result.precision:.0%} "
            f"recall={result.recall:.0%}"
        )
    dual = results[36183]
    assert dual.observable_flows > 0
    assert dual.precision == 1.0
    assert dual.recall == 1.0
    for asn in (64496, 714, 13335):
        assert results[asn].observable_flows == 0
        assert not results[asn].pairs


def test_extension_passive_impact(benchmark, ext_world, run_once):
    world = ext_world
    ecs = EcsScanner(world.route53, world.routing, world.clock).scan(
        RELAY_DOMAIN_QUIC
    )
    world.web_server.clear()
    client = world.make_vantage_client()
    scan = RelayScanner(
        client, world.web_server, world.echo_server, world.clock
    ).run(RelayScanConfig(60.0, 7200.0), "passive")

    def analyze():
        flows = [
            PassiveFlow(r.timestamp, client.address, r.curl.ingress_address,
                        24_000, "web")
            for r in scan.rounds
        ]
        monitor = IspMonitor(ecs.addresses())
        isp = monitor.analyze(flows)
        requests = [(e.timestamp, e.requester) for e in world.web_server.log]
        naive = ServerSideIds(300.0, 3).analyze(requests)
        mitigated = ServerSideIds(
            300.0, 3, egress_list=world.egress_list_may
        ).analyze(requests)
        return isp, naive, mitigated

    isp, naive, mitigated = run_once(benchmark, analyze)
    print()
    print(f"relay share {isp.relay_share:.0%}; IDS alerts naive={len(naive.alerts)} "
          f"mitigated={len(mitigated.alerts)}")
    assert isp.relay_share == 1.0  # every relayed flow detected
    assert isp.unattributable_bytes > 0
    assert naive.alerts  # churn looks anomalous without the list
    assert not mitigated.alerts  # the paper's mitigation works


def test_extension_routing_bottlenecks(benchmark, ext_world, run_once):
    """Future work (i): where is relay traffic routed; any bottlenecks?"""
    from repro.analysis import build_routing_report

    world = ext_world
    clients = [c.asys.number for c in world.ground.client_ases]
    report = run_once(
        benchmark, lambda: build_routing_report(world.as_graph, clients)
    )
    print()
    print(report.render())
    assert report.unreachable_clients == 0
    assert report.single_peer_relay_as()
    for operator, bottleneck in report.bottlenecks().items():
        assert bottleneck is not None
        _asn, share = bottleneck
        # No single transit carries everything — the deployment has no
        # absolute choke point, but load concentrates measurably.
        assert 0.1 < share < 0.9


def test_extension_qoe_backbone_ablation(benchmark, ext_world, run_once):
    world = ext_world
    client = world.make_vantage_client()
    scan = RelayScanner(
        client, world.web_server, world.echo_server, world.clock
    ).run(RelayScanConfig(300.0, 7200.0), "qoe")
    sample = next(
        (r for r in scan.rounds if r.curl.egress_asn == 13335), scan.rounds[0]
    )

    def sweep():
        return {
            factor: compare_paths(
                world.topology,
                world.vantage_router_id,
                sample.curl.ingress_address,
                sample.curl.egress_address,
                world.echo_server.address,
                backbone_factor=factor,
            )
            for factor in (1.0, 0.8, 0.6, 0.4)
        }

    comparisons = run_once(benchmark, sweep)
    print()
    for factor, comparison in comparisons.items():
        print(
            f"backbone x{factor}: direct {comparison.direct_rtt_ms:.1f} ms, "
            f"relayed {comparison.relayed_rtt_ms:.1f} ms "
            f"(+{comparison.overhead_ratio:.0%})"
        )
    # Relaying costs latency; a faster backbone monotonically recovers it.
    rtts = [comparisons[f].relayed_rtt_ms for f in (1.0, 0.8, 0.6, 0.4)]
    assert rtts == sorted(rtts, reverse=True)
    assert comparisons[1.0].overhead_ms >= 0
