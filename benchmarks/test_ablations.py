"""Ablations of the design choices DESIGN.md calls out.

Run on a small world (scale 0.02) regardless of REPRO_BENCH_SCALE —
the un-pruned scans would be prohibitively large at paper scale, which
is itself the point being demonstrated.
"""

import random

import pytest

from repro import WorldConfig, build_world
from repro.relay.egress import EgressPool, RotationPolicy
from repro.relay.service import RELAY_DOMAIN_QUIC
from repro.scan import EcsScanner, EcsScanSettings
from repro.netmodel.addr import IPAddress


@pytest.fixture(scope="module")
def ablation_world():
    return build_world(WorldConfig(seed=2022, scale=0.02))


class _ClientOnlyRouting:
    """Routing view restricted to a sample of client prefixes."""

    def __init__(self, world, max_prefixes: int):
        self._world = world
        self._prefixes = sorted(
            (
                p
                for p in world.routing.routed_v4_prefixes()
                if (world.routing.origin_of(p.network_address) or 0) >= 100_000
            ),
            key=lambda p: p.value,
        )[:max_prefixes]

    def routed_v4_prefixes(self):
        return self._prefixes

    def origin_of(self, address):
        return self._world.routing.origin_of(address)


def test_ablation_scope_pruning(benchmark, ablation_world, run_once):
    """Respecting server ECS scopes vs blindly walking /24s.

    The paper's ethics measure: honouring scopes wider than /24 cuts
    query volume by an order of magnitude at identical coverage.
    """
    world = ablation_world
    routing = _ClientOnlyRouting(world, 60)

    def run_both():
        pruned = EcsScanner(
            world.route53, routing, world.clock,
            EcsScanSettings(rate=1e9, respect_scope=True, prune_unrouted=True),
        ).scan(RELAY_DOMAIN_QUIC)
        naive = EcsScanner(
            world.route53, routing, world.clock,
            EcsScanSettings(rate=1e9, respect_scope=False, prune_unrouted=True),
        ).scan(RELAY_DOMAIN_QUIC)
        return pruned, naive

    pruned, naive = run_once(benchmark, run_both)
    print()
    print(
        f"scope pruning: {pruned.queries_sent} queries vs "
        f"{naive.queries_sent} naive ({naive.queries_sent / pruned.queries_sent:.0f}x)"
    )
    assert naive.queries_sent > 5 * pruned.queries_sent
    assert pruned.addresses() == naive.addresses()


def test_ablation_routed_pruning(benchmark, ablation_world, run_once):
    """Skipping unrouted space: full scans stay bounded by the BGP feed.

    Without pruning, the /24 walk covers all 16.7 M blocks; with it,
    queries track routed space plus a sparse unrouted sample.
    """
    world = ablation_world
    settings = EcsScanSettings(rate=1e9, prune_unrouted=True)
    scan = run_once(
        benchmark,
        lambda: EcsScanner(world.route53, world.routing, world.clock, settings).scan(
            RELAY_DOMAIN_QUIC
        ),
    )
    routed_24s = sum(
        prefix.count_subnets(24) if prefix.length <= 24 else 1
        for prefix in world.routing.routed_v4_prefixes()
    )
    total_24s = 1 << 24
    print()
    print(
        f"routed pruning: {scan.queries_sent} queries "
        f"({scan.sparse_queries} sparse) vs {routed_24s} routed /24s "
        f"and {total_24s} total /24s"
    )
    assert scan.queries_sent < routed_24s
    assert scan.queries_sent < total_24s / 100
    assert scan.sparse_queries > 0


def test_ablation_assignment_locality(benchmark, ablation_world, run_once):
    """Regional pods explain the Atlas coverage gap.

    Tail-country pods hold relays only ever served to client subnets in
    countries without probes; removing them from the count yields the
    addresses Atlas can see at best.
    """
    world = ablation_world
    from repro.relay.ingress import RelayProtocol

    at = world.deployment.april_scan_start
    active = run_once(
        benchmark,
        lambda: [
            r
            for r in world.ingress_v4.relays
            if r.is_active(at) and r.protocol is RelayProtocol.QUIC
        ],
    )
    tail = [r for r in active if r.pod.startswith("CC:")]
    assert tail, "expected tail-pod relays"
    # Every tail pod's country hosts no probes.
    probe_countries = {p.country for p in world.atlas.probes.values()}
    for relay in tail:
        assert relay.pod[3:] not in probe_countries
    print()
    print(
        f"assignment locality: {len(tail)} of {len(active)} relays are "
        "invisible to probe-based measurement"
    )


def test_ablation_rotation_policy(benchmark, run_once):
    """Per-connection rotation vs the VPN-like sticky baseline."""
    addresses = [IPAddress(4, (172 << 24) | (232 << 16) | i) for i in range(6)]

    def run_policies():
        results = {}
        for policy in (RotationPolicy.PER_CONNECTION, RotationPolicy.STICKY):
            pool = EgressPool(36183, "DE", addresses, policy, stickiness=0.08)
            rng = random.Random(42)
            draws = [pool.select("client", rng) for _ in range(2000)]
            changes = sum(1 for a, b in zip(draws, draws[1:]) if a != b)
            results[policy] = changes / (len(draws) - 1)
        return results

    rates = run_once(benchmark, run_policies)
    print()
    print(
        f"rotation policy: per-connection change rate "
        f"{rates[RotationPolicy.PER_CONNECTION]:.1%}, sticky "
        f"{rates[RotationPolicy.STICKY]:.1%}"
    )
    assert rates[RotationPolicy.PER_CONNECTION] > 0.66
    assert rates[RotationPolicy.STICKY] == 0.0
