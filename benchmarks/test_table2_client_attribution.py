"""Table 2 — client ASes served by each ingress operator (April scan).

Paper values: Akamai-only 994 M users / 34 627 ASes / 1.1 M subnets;
Apple-only 105 M / 20 807 / 0.2 M; Both 2 373 M / 17 301 / 10.6 M with
Apple holding 76 % of the "Both" subnets and 69 % of all subnets.
"""

from repro.analysis import build_table2

from _bench_utils import bench_scale


def test_table2_client_attribution(benchmark, bench_world, april_scan, run_once):
    world = bench_world
    table2 = run_once(
        benchmark, lambda: build_table2(april_scan, world.routing, world.population)
    )
    print()
    print(table2.render())

    config = world.config
    assert table2.akamai_only_ases == config.s(config.akamai_only_as_count, 4)
    assert table2.apple_only_ases == config.s(config.apple_only_as_count, 4)
    assert table2.both_ases == config.s(config.both_as_count, 4)

    def close(measured: int, target: int, tolerance: float = 0.1) -> bool:
        return abs(measured - target) <= tolerance * target

    assert close(table2.akamai_only_slash24s, config.s(config.akamai_only_slash24s, 16))
    assert close(table2.apple_only_slash24s, config.s(config.apple_only_slash24s, 8))
    assert close(table2.both_slash24s, config.s(config.both_slash24s, 32))
    assert close(table2.both_population, config.s(config.both_population))
    # The two headline shares.
    assert 0.72 < table2.apple_share_of_both < 0.80  # paper: 76 %
    assert 0.65 < table2.apple_share_of_all_subnets < 0.73  # paper: 69 %
    # "Both" ASes hold the largest user share.
    assert table2.both_population > table2.akamai_only_population
    assert table2.akamai_only_population > table2.apple_only_population
    if bench_scale() == 1.0:
        assert table2.both_ases == 17301
