"""Figure 3 — egress operator changes over the course of a scan day.

Two step series (open DNS resolution vs fixed local DNS), 5-minute
request rounds over 24 hours.  Shape targets: only Cloudflare and
Akamai-PR appear at the vantage (Fastly absent), each series shows only
a handful of operator changes with no regular pattern, and forcing the
ingress does not change egress behaviour.
"""

from repro.analysis import build_rotation_report


def test_fig3_operator_changes(benchmark, bench_world, relay_scans, run_once):
    world = bench_world
    open_day = relay_scans["open_day"]
    fixed_day = relay_scans["fixed_day"]
    report = run_once(
        benchmark,
        lambda: build_rotation_report(open_day, fixed_day, world.egress_list_may),
    )

    figure = report.figure3_series()
    assert set(figure) == {"open", "fixed"}
    assert len(figure["open"]) == 288  # 24 h at 5-minute rounds
    assert len(figure["fixed"]) == 288

    # Only the two locally present operators appear; Fastly never does.
    assert report.operators_seen() <= {"Cloudflare", "Akamai_PR"}

    changes = report.operator_change_counts()
    print()
    print(f"operator changes per scan day: {changes}")
    for when, old, new in open_day.operator_changes():
        print(f"  open:  t={when / 3600:5.1f}h  AS{old} -> AS{new}")
    for when, old, new in fixed_day.operator_changes():
        print(f"  fixed: t={when / 3600:5.1f}h  AS{old} -> AS{new}")
    # "A handful" of changes per day, in both variants.
    assert changes["open"] <= 12
    assert changes["fixed"] <= 12
    assert not report.forced_ingress_changes_behaviour()
