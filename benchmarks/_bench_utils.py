"""Helpers shared by the benchmark modules."""

from __future__ import annotations

import os


def bench_scale() -> float:
    """The benchmark world scale (REPRO_BENCH_SCALE, default 1.0)."""
    return float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))
