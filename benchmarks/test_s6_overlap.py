"""Section 6 — the correlation surface of AS36183.

Paper findings: the Akamai private-relay AS hosts both ingress and
egress relays; traceroutes to an ingress and an egress address end at
the same last-hop router; of the 478 IPv4 + 1335 IPv6 prefixes the AS
announces, ingress relays sit in 201 and egress relays in 1472 — never
sharing a prefix — for a 92.2 % used fraction; and the AS first became
visible in BGP in June 2021, the month of the service launch.
"""

from repro.analysis import build_overlap_report

from _bench_utils import bench_scale

AKAMAI_PR = 36183


def test_s6_overlap(benchmark, bench_world, april_scan, atlas_results, relay_scans, run_once):
    world = bench_world
    fine = relay_scans["fine"]
    used_ingress = sorted(
        a for a in fine.ingress_addresses()
        if world.routing.origin_of(a) == AKAMAI_PR
    )
    used_egress = sorted(
        r.curl.egress_address for r in fine.rounds if r.curl.egress_asn == AKAMAI_PR
    )
    report = run_once(
        benchmark,
        lambda: build_overlap_report(
            world.routing,
            world.history,
            april_scan.addresses(),
            atlas_results["v6"].addresses,
            world.egress_list_may,
            world.topology,
            world.vantage_router_id,
            used_ingress[0] if used_ingress else None,
            used_egress[0] if used_egress else None,
        ),
    )
    print()
    print(report.render())

    assert report.overlap_asns == {AKAMAI_PR}
    assert report.shared_last_hop
    assert report.shared_prefixes == 0
    assert report.first_seen == (2021, 6)
    assert report.months_examined == 77
    assert 0.85 < report.used_fraction <= 1.0  # paper: 92.2 %
    if bench_scale() == 1.0:
        assert 470 < report.announced_v4 < 490  # paper: 478
        assert 1320 < report.announced_v6 < 1350  # paper: 1335
        assert 190 < report.ingress_prefixes < 215  # paper: 201
        assert 1450 < report.egress_prefixes < 1490  # paper: 1472
        assert 0.90 < report.used_fraction < 0.95  # paper: 92.2 %
