"""Figure 4 — CDFs of subnets over cities and countries per operator.

Four panels: (a) IPv4 cities, (b) IPv6 cities, (c) IPv4 countries,
(d) IPv6 countries.  Shape targets: every CDF is monotone and heavily
top-weighted (the US dominates), Akamai-PR's IPv6 city panel extends to
by far the most locations (~14 k at paper scale), and the country
panels saturate quickly (a handful of CCs hold most subnets).
"""

from repro.analysis import build_location_cdfs
from repro.netmodel.asn import WellKnownAS

from _bench_utils import bench_scale

AKAMAI_PR = int(WellKnownAS.AKAMAI_PR)
FASTLY = int(WellKnownAS.FASTLY)


def test_fig4_location_cdfs(benchmark, bench_world, run_once):
    world = bench_world
    cdfs = run_once(
        benchmark,
        lambda: build_location_cdfs(world.egress_list_may, world.routing),
    )
    panels = {(c.asn, c.version, c.granularity): c for c in cdfs}
    # All four operators appear in all four panels.
    operators = {AKAMAI_PR, int(WellKnownAS.AKAMAI_EG), int(WellKnownAS.CLOUDFLARE), FASTLY}
    for version in (4, 6):
        for granularity in ("city", "country"):
            present = {asn for (asn, v, g) in panels if v == version and g == granularity}
            assert operators <= present

    for cdf in cdfs:
        series = cdf.series()
        fractions = [y for _x, y in series]
        assert fractions == sorted(fractions)
        assert abs(fractions[-1] - 1.0) < 1e-9

    # Panel (b): Akamai-PR's IPv6 city extent dwarfs Fastly's (the gap
    # compresses at small scales, where city budgets floor).
    pr_v6_cities = panels[(AKAMAI_PR, 6, "city")]
    fastly_v6_cities = panels[(FASTLY, 6, "city")]
    factor = 3.0 if bench_scale() >= 0.5 else 1.8
    assert pr_v6_cities.location_count() > factor * fastly_v6_cities.location_count()
    # Country panels: the top countries hold a disproportionate share
    # (the long tail gets a minimum of one subnet each, so the head's
    # share shrinks at small scales).
    head_share = 0.5 if bench_scale() >= 0.5 else 0.25
    for (asn, version, granularity), cdf in panels.items():
        if granularity != "country":
            continue
        total = sum(cdf.counts)
        if total < 2 * cdf.location_count():
            # Degenerate small-scale panel: barely one subnet per CC.
            continue
        assert sum(cdf.counts[:5]) / total > head_share

    print()
    for (asn, version, granularity), cdf in sorted(panels.items()):
        print(
            f"AS{asn} IPv{version} {granularity:>7}: "
            f"{cdf.location_count():5d} locations"
        )
    if bench_scale() == 1.0:
        assert pr_v6_cities.location_count() > 10_000  # paper: 14 085
