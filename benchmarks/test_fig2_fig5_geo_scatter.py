"""Figures 2 and 5 — geolocation of egress subnets per providing AS.

The figures are world maps of subnet locations.  The benchmark
regenerates the underlying scatter series and asserts their shape: all
four operators produce point clouds; the clouds concentrate in North
America and Europe (58 % of subnets represent the US); Cloudflare's
cloud spans the most countries.
"""

from repro.analysis import build_egress_facts, build_geo_scatter
from repro.netmodel.asn import WellKnownAS

from _bench_utils import bench_scale

AKAMAI_PR = int(WellKnownAS.AKAMAI_PR)
AKAMAI_EG = int(WellKnownAS.AKAMAI_EG)
CLOUDFLARE = int(WellKnownAS.CLOUDFLARE)
FASTLY = int(WellKnownAS.FASTLY)


def test_fig2_fig5_geo_scatter(benchmark, bench_world, run_once):
    world = bench_world
    scatter = run_once(
        benchmark,
        lambda: build_geo_scatter(
            world.egress_list_may, world.routing, world.gazetteer
        ),
    )
    assert set(scatter) == {AKAMAI_PR, AKAMAI_EG, CLOUDFLARE, FASTLY}
    for asn, points in scatter.items():
        assert points, f"no scatter points for AS{asn}"
        assert all(-90 <= lat <= 90 and -180 <= lon <= 180 for lat, lon in points)

    # The NA/EU concentration: most points sit in the northern-western
    # quadrant band (lat > 0, lon < 60) where NA and EU centroids lie.
    def na_eu_share(points):
        hits = sum(1 for lat, lon in points if lat > 5 and lon < 65)
        return hits / len(points)

    assert na_eu_share(scatter[AKAMAI_PR]) > 0.5
    assert na_eu_share(scatter[CLOUDFLARE]) > 0.5

    facts = build_egress_facts(
        world.egress_list_may, world.routing, world.egress_list_jan, world.geodb
    )
    print()
    print(facts.render())
    for asn, points in sorted(scatter.items()):
        print(f"AS{asn}: {len(points)} located subnets")
    assert facts.us_share > 0.40  # paper: 58 %
    assert facts.second_cc_share < 0.10  # paper: DE at 3.6 %
    assert facts.cc_coverage[CLOUDFLARE] == max(facts.cc_coverage.values())
    if bench_scale() == 1.0:
        assert facts.us_share > 0.5
        assert facts.cc_coverage[CLOUDFLARE] == 248
        assert facts.cc_coverage[AKAMAI_PR] == 236
        assert facts.uniquely_covered.get(CLOUDFLARE, 0) >= 10  # paper: 11
        assert 100 < facts.ccs_below_50 < 160  # paper: 123
