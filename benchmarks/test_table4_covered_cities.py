"""Table 4 — distinct cities covered by egress subnets per operator.

Paper values (all / IPv4 / IPv6): Akamai-PR 14088/853/14085, Akamai-EG
7507/455/7507, Cloudflare 5228/1134/5228, Fastly 848/848/848.  The
headline shape: Akamai and Cloudflare cover a *manifold* of cities with
IPv6 subnets, Fastly does not.
"""

from repro.analysis import build_table4
from repro.netmodel.asn import WellKnownAS

from _bench_utils import bench_scale

AKAMAI_PR = int(WellKnownAS.AKAMAI_PR)
AKAMAI_EG = int(WellKnownAS.AKAMAI_EG)
CLOUDFLARE = int(WellKnownAS.CLOUDFLARE)
FASTLY = int(WellKnownAS.FASTLY)


def test_table4_covered_cities(benchmark, bench_world, run_once):
    world = bench_world
    table4 = run_once(
        benchmark, lambda: build_table4(world.egress_list_may, world.routing)
    )
    print()
    print(table4.render())

    pr = table4.row(AKAMAI_PR)
    eg = table4.row(AKAMAI_EG)
    cf = table4.row(CLOUDFLARE)
    fastly = table4.row(FASTLY)
    # The manifold observation: v6 city coverage dwarfs v4 for Akamai
    # and Cloudflare; Fastly's v4 and v6 coverage are the same size.
    # (The gap compresses at small scales, where city budgets floor.)
    factor = 3.0 if bench_scale() >= 0.5 else 1.8
    assert pr.cities_v6 > factor * pr.cities_v4
    assert eg.cities_v6 > factor * eg.cities_v4
    assert cf.cities_v6 > 1.2 * cf.cities_v4
    assert abs(fastly.cities_v6 - fastly.cities_v4) <= 0.25 * max(fastly.cities_v4, 1)
    # Ordering: Akamai-PR covers the most cities overall; the union is
    # essentially its v6 set.
    assert pr.cities_all == max(r.cities_all for r in table4.rows)
    assert pr.cities_all <= pr.cities_v4 + pr.cities_v6
    assert pr.cities_all >= pr.cities_v6
    # IPv4-only city coverage is in the same band for the three big
    # operators ("an even distribution across operators (800 to 1000)").
    v4_counts = [pr.cities_v4, cf.cities_v4, fastly.cities_v4]
    band = 2.0 if bench_scale() >= 0.5 else 4.0
    assert max(v4_counts) < band * max(1, min(v4_counts))
