"""Shared fixtures for the benchmark suite.

The benchmarks reproduce every table and figure at paper scale by
default; set ``REPRO_BENCH_SCALE`` (e.g. ``0.05``) for a faster pass.
World generation and the scan campaign are session-scoped — individual
benchmarks time the analysis step they cover and assert the paper's
shape on the results.
"""

from __future__ import annotations

import os

import pytest

from _bench_utils import bench_scale

from repro import WorldConfig, build_world
from repro.relay.service import RELAY_DOMAIN_QUIC
from repro.scan import (
    AtlasIngressScanner,
    RelayScanConfig,
    RelayScanner,
    ScanCampaign,
    classify_blocking,
)
from repro.worldgen.world import CONTROL_DOMAIN

INGRESS_ASNS = {714, 36183}


@pytest.fixture(scope="session")
def bench_world():
    """The world every benchmark runs against."""
    seed = int(os.environ.get("REPRO_BENCH_SEED", "2022"))
    return build_world(WorldConfig(seed=seed, scale=bench_scale()))


@pytest.fixture(scope="session")
def monthly_scans(bench_world):
    """The Jan–Apr ECS campaign: (year, month, default, fallback|None)."""
    world = bench_world
    campaign = ScanCampaign(world.route53, world.routing, world.clock)
    campaign.run(world.scan_months())
    return campaign.table1_input()


@pytest.fixture(scope="session")
def april_scan(monthly_scans):
    """The April default-domain scan (the paper's 1586-address scan)."""
    return monthly_scans[-1][2]


@pytest.fixture(scope="session")
def atlas_results(bench_world, april_scan):
    """Atlas validation + IPv6 discovery + blocking classification."""
    world = bench_world
    atlas_time = world.deployment.april_scan_start + 40 * 3600.0
    if world.clock.now < atlas_time:
        world.clock.advance_to(atlas_time)
    scanner = AtlasIngressScanner(world.atlas, world.routing, INGRESS_ASNS)
    validation = scanner.validate_against_ecs(
        RELAY_DOMAIN_QUIC, april_scan.addresses()
    )
    v6_report = None
    for _ in range(4):
        v6_report = scanner.measure_ingress_v6(RELAY_DOMAIN_QUIC, v6_report)
    blocking = classify_blocking(
        world.atlas, world.routing, RELAY_DOMAIN_QUIC, CONTROL_DOMAIN, INGRESS_ASNS
    )
    return {"validation": validation, "v6": v6_report, "blocking": blocking}


@pytest.fixture(scope="session")
def relay_scans(bench_world):
    """Open + fixed scan days (Figure 3) and the 48 h fine scan."""
    from repro.dns.rr import RRType
    from repro.relay.client import DnsConfig
    from repro.relay.ingress import RelayProtocol

    world = bench_world
    open_client = world.make_vantage_client()
    open_day = RelayScanner(
        open_client, world.web_server, world.echo_server, world.clock
    ).run(RelayScanConfig(300.0, 86400.0), "open")
    ingress = sorted(
        world.ingress_v4.active_addresses(world.clock.now, RelayProtocol.QUIC)
    )[0]
    fixed_client = world.make_vantage_client(
        DnsConfig.fixed({("mask.icloud.com", RRType.A): [ingress]})
    )
    fixed_day = RelayScanner(
        fixed_client, world.web_server, world.echo_server, world.clock
    ).run(RelayScanConfig(300.0, 86400.0), "fixed")
    fine = RelayScanner(
        open_client, world.web_server, world.echo_server, world.clock
    ).run(RelayScanConfig(30.0, 2 * 86400.0), "open-30s")
    return {"open_day": open_day, "fixed_day": fixed_day, "fine": fine}


def once(benchmark, func):
    """Run ``func`` exactly once under the benchmark timer."""
    return benchmark.pedantic(func, rounds=1, iterations=1)


@pytest.fixture()
def run_once():
    """Expose the single-round benchmark helper to test modules."""
    return once
