"""Table 3 — egress subnets per operating AS.

Paper values (IPv4 subnets / BGP prefixes / addresses; IPv6 subnets /
prefixes / CCs): Akamai-PR 9890/301/57589 and 142826/1172/236;
Akamai-EG 1602/1/5100 and 23495/1/24; Cloudflare 18218/112/18218 and
26988/2/248; Fastly 8530/81/17060 and 8530/81/236.
"""

from repro.analysis import build_table3
from repro.netmodel.asn import WellKnownAS

from _bench_utils import bench_scale

AKAMAI_PR = int(WellKnownAS.AKAMAI_PR)
AKAMAI_EG = int(WellKnownAS.AKAMAI_EG)
CLOUDFLARE = int(WellKnownAS.CLOUDFLARE)
FASTLY = int(WellKnownAS.FASTLY)


def test_table3_egress_subnets(benchmark, bench_world, run_once):
    world = bench_world
    table3 = run_once(
        benchmark, lambda: build_table3(world.egress_list_may, world.routing)
    )
    print()
    print(table3.render())

    config = world.config
    # Subnet counts per operator match the scaled paper values.
    assert table3.row(AKAMAI_PR).v4_subnets == config.s(config.egress_v4_akamai_pr[0], 8)
    assert table3.row(AKAMAI_EG).v4_subnets == config.s(config.egress_v4_akamai_eg[0], 8)
    assert table3.row(CLOUDFLARE).v4_subnets == config.s(config.egress_v4_cloudflare[0], 8)
    assert table3.row(FASTLY).v4_subnets == config.s(config.egress_v4_fastly[0], 8)
    # Address-shape: Cloudflare /32s, Fastly /31s, Akamai larger subnets.
    assert table3.row(CLOUDFLARE).v4_addresses == table3.row(CLOUDFLARE).v4_subnets
    assert table3.row(FASTLY).v4_addresses == 2 * table3.row(FASTLY).v4_subnets
    pr = table3.row(AKAMAI_PR)
    assert 5.0 < pr.v4_addresses / pr.v4_subnets < 6.5  # paper: 5.8
    # BGP-prefix structure: Akamai-EG announces a single prefix for all
    # its subnets; Akamai-PR has by far the most IPv6 prefixes.
    assert table3.row(AKAMAI_EG).v4_bgp_prefixes == 1
    assert table3.row(AKAMAI_EG).v6_bgp_prefixes == 1
    assert pr.v6_bgp_prefixes == max(r.v6_bgp_prefixes for r in table3.rows)
    # Who wins: Cloudflare most IPv4 subnets, Akamai-PR most IPv6 subnets
    # and the most IPv4 addresses.
    assert table3.row(CLOUDFLARE).v4_subnets == max(r.v4_subnets for r in table3.rows)
    assert pr.v6_subnets == max(r.v6_subnets for r in table3.rows)
    assert pr.v4_addresses == max(r.v4_addresses for r in table3.rows)
    if bench_scale() == 1.0:
        assert table3.row(AKAMAI_PR).v4_bgp_prefixes == 301
        assert table3.row(CLOUDFLARE).v6_countries == 248
        assert abs(pr.v4_addresses - 57589) < 8
        assert 230_000 < table3.total_subnets() < 250_000  # paper: ~238 k
