"""Section 4.3 — egress address rotation through the relay.

Paper findings from the 48-hour, 30-second-interval scan: the egress
address changes in more than 66 % of back-to-back requests; only six
distinct addresses from four subnets appear over the window; parallel
Safari/curl connections observe different addresses; forcing a specific
ingress via local DNS changes nothing.
"""

from repro.analysis import build_rotation_report


def test_s43_rotation(benchmark, bench_world, relay_scans, run_once):
    world = bench_world
    fine = relay_scans["fine"]
    fixed = relay_scans["fixed_day"]
    report = run_once(
        benchmark, lambda: build_rotation_report(fine, fixed, world.egress_list_may)
    )
    print()
    print(report.render())

    assert len(fine) == 5760  # 48 h at 30 s
    # Address rotation: per-connection selection => high change rate.
    assert report.address_change_rate() > 0.66
    # A small address pool drawn from a handful of subnets.
    distinct = report.distinct_address_count()
    subnets = report.distinct_subnet_count()
    assert 3 <= distinct <= 14  # paper: 6
    assert 2 <= subnets <= distinct  # paper: 4
    # Parallel connections diverge routinely.
    assert report.parallel_divergence_rate() > 0.5
    # Forced ingress: no observable egress behaviour change.
    assert not report.forced_ingress_changes_behaviour()
    # Only the locally present operators are seen.
    assert report.operators_seen() <= {"Cloudflare", "Akamai_PR"}
