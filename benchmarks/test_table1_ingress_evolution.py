"""Table 1 — ingress relay addresses per AS, January through April.

Paper values (scale 1.0):

    ====== ===== ======= ===== =======
    Month  Apple  Akamai  FB-A  FB-Ak
    ====== ===== ======= ===== =======
    Jan     365    823     —     —
    Feb     355    845    356    0
    Mar     347    945    334    25
    Apr     349   1237    336   1062
    ====== ===== ======= ===== =======

plus +34 % QUIC growth and +293 % fallback growth.
"""

from repro.analysis import build_table1

from _bench_utils import bench_scale


def test_table1_ingress_evolution(benchmark, bench_world, monthly_scans, run_once):
    table1 = run_once(benchmark, lambda: build_table1(monthly_scans))
    print()
    print(table1.render())

    scale = bench_scale()
    config = bench_world.config
    # Measured counts equal the deployed (scaled) paper counts exactly:
    # the ECS scan uncovers the complete fleet.
    for row, month in zip(table1.rows, config.ingress_months):
        assert row.default_apple == config.s(month.quic_apple, 4)
        assert row.default_akamai == config.s(month.quic_akamai, 8)
    april = table1.rows[-1]
    if scale == 1.0:
        assert april.default_total == 1586
        assert april.fallback_total == 1398
    # Shape: Akamai's share grows to ~3/4; fallback starts Apple-only.
    assert april.default_akamai / april.default_total > 0.7
    assert table1.rows[1].fallback_akamai == 0
    assert table1.quic_growth() > 0.2  # paper: +34 %
    assert table1.fallback_growth() > 1.5  # paper: +293 %
