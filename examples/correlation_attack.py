#!/usr/bin/env python3
"""Section 6 demonstration: who can correlate relay traffic?

Apple's claim: "No one entity can see both who a user is (IP address)
and what they are accessing (origin server)".  This example generates
relayed connections from many clients, hands each candidate observer AS
the flow observations it can legitimately collect, runs the timing
correlation attack, and reports precision/recall per observer.

The result mirrors the paper: the dual-role AS36183 joins client and
destination for the flows it carries on both sides; single-role
operators recover nothing.

Usage::

    python examples/correlation_attack.py [--scale 0.01] [--flows 300]
"""

from __future__ import annotations

import argparse

from repro import WorldConfig, build_world
from repro.analysis import FlowRecord, correlate_flows
from repro.netmodel.addr import IPAddress
from repro.netmodel.asn import operator_name
from repro.relay.ingress import RelayProtocol


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=float, default=0.01)
    parser.add_argument("--seed", type=int, default=2022)
    parser.add_argument("--flows", type=int, default=300)
    args = parser.parse_args()

    world = build_world(WorldConfig(seed=args.seed, scale=args.scale))
    world.clock.advance_to(world.scan_start(2022, 4))

    # Many distinct clients at the vantage network, each opening one
    # relayed connection to a distinct destination.
    vantage = world.ground.vantage_prefix
    ingress_pool = sorted(
        world.ingress_v4.active_addresses(world.clock.now, RelayProtocol.QUIC)
    )
    flows = []
    for i in range(args.flows):
        client_address = IPAddress(4, vantage.value + 4096 + i)
        session = world.service.connect(
            client_address=client_address,
            client_asn=64496,
            client_country="DE",
            client_location=None,
            ingress_address=ingress_pool[i % len(ingress_pool)],
            target_authority=f"site-{i}.example",
            client_key=str(client_address),
        )
        flows.append(FlowRecord(tunnel=session.tunnel))
        world.clock.advance(0.75)  # connections spaced over time

    observers = {
        64496: "client ISP (vantage AS)",
        714: "Apple (ingress only)",
        36183: "Akamai_PR (ingress AND egress)",
        13335: "Cloudflare (egress only)",
    }
    print(f"{args.flows} relayed connections; per-observer correlation:\n")
    print(f"{'observer':<34} {'flows seen both sides':>22} {'claimed':>8} "
          f"{'precision':>10} {'recall':>8}")
    for asn, label in observers.items():
        result = correlate_flows(flows, asn)
        print(
            f"{label + ' AS' + str(asn):<34} {result.observable_flows:>22} "
            f"{len(result.pairs):>8} {result.precision:>10.1%} "
            f"{result.recall:>8.1%}"
        )
    print(
        "\nOnly the AS hosting both relay layers can join (client, "
        "destination) pairs — the paper's Section 6 finding."
    )


if __name__ == "__main__":
    main()
