#!/usr/bin/env python3
"""Run the complete reproduction and emit a paper-vs-measured report.

This is the harness that regenerates every table and figure of the
paper in one pass and prints (or writes) a Markdown report comparing
each published number against the measured one.  At ``--scale 1.0`` it
takes on the order of ten minutes; the committed ``EXPERIMENTS.md`` was
produced by this script at scale 1.0.

Usage::

    python examples/reproduce_paper.py --scale 1.0 --output EXPERIMENTS.md
"""

from __future__ import annotations

import argparse
import sys
import time

from repro import WorldConfig, build_world
from repro.analysis import (
    build_egress_facts,
    build_location_cdfs,
    build_overlap_report,
    build_rotation_report,
    build_table1,
    build_table2,
    build_table3,
    build_table4,
)
from repro.dns.rr import RRType
from repro.netmodel.asn import WellKnownAS
from repro.relay.client import DnsConfig
from repro.relay.ingress import RelayProtocol
from repro.relay.service import RELAY_DOMAIN_FALLBACK, RELAY_DOMAIN_QUIC
from repro.scan import (
    AtlasIngressScanner,
    EcsScanner,
    QuicScanner,
    RelayScanConfig,
    RelayScanner,
    classify_blocking,
)
from repro.worldgen.world import CONTROL_DOMAIN

INGRESS_ASNS = {714, 36183}
AKAMAI_PR = int(WellKnownAS.AKAMAI_PR)


def emit(lines: list[str], text: str = "") -> None:
    lines.append(text)


def row(lines, artefact, quantity, paper, measured):
    emit(lines, f"| {artefact} | {quantity} | {paper} | {measured} |")


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=float, default=1.0)
    parser.add_argument("--seed", type=int, default=2022)
    parser.add_argument("--output", type=str, default=None)
    args = parser.parse_args()

    started = time.time()
    world = build_world(WorldConfig(seed=args.seed, scale=args.scale))
    scanner = EcsScanner(world.route53, world.routing, world.clock)

    # ---- §4.1 campaign ---------------------------------------------------
    monthly = []
    for year, month in world.scan_months():
        world.clock.advance_to(world.scan_start(year, month))
        default = scanner.scan(RELAY_DOMAIN_QUIC)
        fallback = None
        if (year, month) != (2022, 1):
            fallback = scanner.scan(RELAY_DOMAIN_FALLBACK)
        monthly.append((year, month, default, fallback))
        print(f"  scanned {year}-{month:02d}", file=sys.stderr)
    april = monthly[-1][2]
    table1 = build_table1(monthly)
    table2 = build_table2(april, world.routing, world.population)

    atlas_time = world.deployment.april_scan_start + 40 * 3600.0
    if world.clock.now < atlas_time:
        world.clock.advance_to(atlas_time)
    atlas = AtlasIngressScanner(world.atlas, world.routing, INGRESS_ASNS)
    validation = atlas.validate_against_ecs(RELAY_DOMAIN_QUIC, april.addresses())
    v6_report = None
    for _ in range(4):
        v6_report = atlas.measure_ingress_v6(RELAY_DOMAIN_QUIC, v6_report)
    v6_by_asn = v6_report.by_asn(world.routing)
    blocking = classify_blocking(
        world.atlas, world.routing, RELAY_DOMAIN_QUIC, CONTROL_DOMAIN, INGRESS_ASNS
    )
    print("  atlas done", file=sys.stderr)

    # ---- §4.2 egress ------------------------------------------------------
    table3 = build_table3(world.egress_list_may, world.routing)
    table4 = build_table4(world.egress_list_may, world.routing)
    facts = build_egress_facts(
        world.egress_list_may, world.routing, world.egress_list_jan, world.geodb
    )
    cdfs = {(c.asn, c.version, c.granularity): c
            for c in build_location_cdfs(world.egress_list_may, world.routing)}

    # ---- §4.3 / §6 relay scans --------------------------------------------
    open_client = world.make_vantage_client()
    open_day = RelayScanner(
        open_client, world.web_server, world.echo_server, world.clock
    ).run(RelayScanConfig(300.0, 86400.0), "open")
    forced_ingress = sorted(
        world.ingress_v4.active_addresses(world.clock.now, RelayProtocol.QUIC)
    )[0]
    fixed_client = world.make_vantage_client(
        DnsConfig.fixed({("mask.icloud.com", RRType.A): [forced_ingress]})
    )
    fixed_day = RelayScanner(
        fixed_client, world.web_server, world.echo_server, world.clock
    ).run(RelayScanConfig(300.0, 86400.0), "fixed")
    fine = RelayScanner(
        open_client, world.web_server, world.echo_server, world.clock
    ).run(RelayScanConfig(30.0, 2 * 86400.0), "open-30s")
    rotation = build_rotation_report(fine, fixed_day, world.egress_list_may)
    print("  relay scans done", file=sys.stderr)

    quic = QuicScanner(world.service).scan(sorted(april.addresses()))

    used_ingress = sorted(
        a for a in fine.ingress_addresses() if world.routing.origin_of(a) == AKAMAI_PR
    )
    used_egress = sorted(
        r.curl.egress_address for r in fine.rounds if r.curl.egress_asn == AKAMAI_PR
    )
    overlap = build_overlap_report(
        world.routing, world.history, april.addresses(), v6_report.addresses,
        world.egress_list_may, world.topology, world.vantage_router_id,
        used_ingress[0] if used_ingress else None,
        used_egress[0] if used_egress else None,
    )

    # ---- report -------------------------------------------------------------
    lines: list[str] = []
    emit(lines, "# EXPERIMENTS — paper vs. measured")
    emit(lines)
    emit(lines, f"Generated by `examples/reproduce_paper.py --scale {args.scale} "
                f"--seed {args.seed}` in {time.time() - started:.0f} s.")
    emit(lines)
    emit(lines, "All *measured* values come from running the measurement pipeline")
    emit(lines, "(`repro.scan` + `repro.analysis`) against the simulated world —")
    emit(lines, "never from reading ground truth.  At scale 1.0 the world is")
    emit(lines, "calibrated to the paper's aggregates; the match below shows the")
    emit(lines, "pipeline *recovers* them.  Scale < 1.0 shrinks populations")
    emit(lines, "linearly.")
    emit(lines)
    emit(lines, "| Artefact | Quantity | Paper | Measured |")
    emit(lines, "|---|---|---|---|")

    apr = table1.rows[-1]
    jan = table1.rows[0]
    row(lines, "Table 1", "Jan QUIC relays (Apple/Akamai)", "365 / 823",
        f"{jan.default_apple} / {jan.default_akamai}")
    row(lines, "Table 1", "Apr QUIC relays (Apple/Akamai)", "349 / 1237",
        f"{apr.default_apple} / {apr.default_akamai}")
    row(lines, "Table 1", "Apr fallback relays (Apple/Akamai)", "336 / 1062",
        f"{apr.fallback_apple} / {apr.fallback_akamai}")
    row(lines, "Table 1", "QUIC growth Jan→Apr", "+34 %", f"{table1.quic_growth():+.0%}")
    row(lines, "Table 1", "Fallback growth Feb→Apr", "+293 %",
        f"{table1.fallback_growth():+.0%}")
    row(lines, "Table 2", "Akamai-only (ASes / subnets / users)",
        "34 627 / 1.1 M / 994 M",
        f"{table2.akamai_only_ases} / {table2.akamai_only_slash24s} / "
        f"{table2.akamai_only_population}")
    row(lines, "Table 2", "Apple-only (ASes / subnets / users)",
        "20 807 / 0.2 M / 105 M",
        f"{table2.apple_only_ases} / {table2.apple_only_slash24s} / "
        f"{table2.apple_only_population}")
    row(lines, "Table 2", "Both (ASes / subnets / users)",
        "17 301 / 10.6 M / 2 373 M",
        f"{table2.both_ases} / {table2.both_slash24s} / {table2.both_population}")
    row(lines, "Table 2", "Apple share of 'Both' subnets", "76 %",
        f"{table2.apple_share_of_both:.0%}")
    row(lines, "§4.1", "Apple share of all served subnets", "69 %",
        f"{table2.apple_share_of_all_subnets:.0%}")
    row(lines, "§4.1", "ECS scan duration", "up to 40 h",
        f"{april.duration_hours():.0f} h (simulated)")
    row(lines, "§4.1", "Atlas vs ECS IPv4 addresses", "1382 vs 1586",
        f"{validation.atlas_count} vs {validation.ecs_count}")
    row(lines, "§4.1", "Atlas-only addresses", "1", f"{len(validation.atlas_only)}")
    row(lines, "§4.1", "IPv6 ingress (total; Apple/Akamai)", "1575; 346 / 1229",
        f"{len(v6_report.addresses)}; {v6_by_asn.get(714, 0)} / "
        f"{v6_by_asn.get(AKAMAI_PR, 0)}")
    row(lines, "§4.1", "probe timeouts", "10 %", f"{blocking.timeout_share:.1%}")
    row(lines, "§4.1", "failures with response", "7 %", f"{blocking.failure_share:.1%}")
    row(lines, "§4.1", "NXDOMAIN / NOERROR / REFUSED share", "72 / 13 / 5 %",
        f"{blocking.rcode_share_of_failures('NXDOMAIN'):.0%} / "
        f"{blocking.rcode_share_of_failures('NOERROR'):.0%} / "
        f"{blocking.rcode_share_of_failures('REFUSED'):.0%}")
    row(lines, "§4.1", "blocked probes", "645 (5.5 %)",
        f"{blocking.blocked_probes} ({blocking.blocked_share:.1%})")
    row(lines, "§4.1", "DNS hijacks observed", "1", f"{blocking.hijacked_probes}")

    def t3(asn):
        r = table3.row(asn)
        return (f"{r.v4_subnets} / {r.v4_bgp_prefixes} / {r.v4_addresses} ; "
                f"{r.v6_subnets} / {r.v6_bgp_prefixes} / {r.v6_countries}")

    row(lines, "Table 3", "Akamai-PR (v4 sub/pfx/addr ; v6 sub/pfx/CC)",
        "9890 / 301 / 57589 ; 142826 / 1172 / 236", t3(AKAMAI_PR))
    row(lines, "Table 3", "Akamai-EG", "1602 / 1 / 5100 ; 23495 / 1 / 24",
        t3(int(WellKnownAS.AKAMAI_EG)))
    row(lines, "Table 3", "Cloudflare", "18218 / 112 / 18218 ; 26988 / 2 / 248",
        t3(int(WellKnownAS.CLOUDFLARE)))
    row(lines, "Table 3", "Fastly", "8530 / 81 / 17060 ; 8530 / 81 / 236",
        t3(int(WellKnownAS.FASTLY)))
    row(lines, "Table 3", "total egress subnets", "~238 k", f"{table3.total_subnets()}")

    def t4(asn):
        r = table4.row(asn)
        return f"{r.cities_all} / {r.cities_v4} / {r.cities_v6}"

    row(lines, "Table 4", "Akamai-PR cities (all/v4/v6)", "14088 / 853 / 14085",
        t4(AKAMAI_PR))
    row(lines, "Table 4", "Akamai-EG cities", "7507 / 455 / 7507",
        t4(int(WellKnownAS.AKAMAI_EG)))
    row(lines, "Table 4", "Cloudflare cities", "5228 / 1134 / 5228",
        t4(int(WellKnownAS.CLOUDFLARE)))
    row(lines, "Table 4", "Fastly cities", "848 / 848 / 848",
        t4(int(WellKnownAS.FASTLY)))
    row(lines, "Fig 2/5", "US subnet share / #2 CC", "58 % / DE 3.6 %",
        f"{facts.us_share:.0%} / {facts.second_cc} {facts.second_cc_share:.1%}")
    row(lines, "Fig 2/5", "CCs below 50 subnets", "123", f"{facts.ccs_below_50}")
    row(lines, "Fig 2/5", "CC coverage CF / APR / Fastly / AEG",
        "248 / 236 / 236 / 24",
        " / ".join(str(facts.cc_coverage.get(int(a), 0)) for a in (
            WellKnownAS.CLOUDFLARE, WellKnownAS.AKAMAI_PR,
            WellKnownAS.FASTLY, WellKnownAS.AKAMAI_EG)))
    row(lines, "Fig 2/5", "CCs uniquely covered (all Cloudflare)", "11",
        f"{facts.uniquely_covered.get(int(WellKnownAS.CLOUDFLARE), 0)}")
    row(lines, "§4.2", "Akamai-PR extra CCs over Akamai-EG", "212",
        f"{facts.akamai_pr_extra_over_eg}")
    row(lines, "§4.2", "blank-city entries", "1.6 %",
        f"{facts.missing_city_fraction:.1%}")
    row(lines, "§4.2", "list growth since January", "+15 %",
        f"{facts.growth_since_jan:+.0%}")
    row(lines, "§4.2", "geo-DB adopted published mapping", "most subnets",
        f"{facts.geodb_adoption:.0%}")
    pr_cdf = cdfs[(AKAMAI_PR, 6, "city")]
    row(lines, "Fig 4", "Akamai-PR IPv6 city-CDF extent", "14 085",
        f"{pr_cdf.location_count()}")
    row(lines, "Fig 3", "operator changes per day (open / fixed)",
        "a handful / a handful",
        f"{len(open_day.operator_changes())} / {len(fixed_day.operator_changes())}")
    row(lines, "Fig 3", "operators at vantage", "Cloudflare + Akamai-PR (no Fastly)",
        " + ".join(sorted(rotation.operators_seen())))
    row(lines, "§4.3", "egress address change rate", "> 66 %",
        f"{rotation.address_change_rate():.0%}")
    row(lines, "§4.3", "distinct addresses / subnets over 48 h", "6 / 4",
        f"{rotation.distinct_address_count()} / {rotation.distinct_subnet_count()}")
    row(lines, "§4.3", "parallel connections diverge", "yes",
        f"{rotation.parallel_divergence_rate():.0%} of rounds")
    row(lines, "§4.3", "forced ingress changes egress behaviour", "no",
        "yes" if rotation.forced_ingress_changes_behaviour() else "no")
    row(lines, "§3", "QUIC handshakes answered", "0 (timeout)",
        f"{quic.handshake_responses}")
    row(lines, "§3", "version negotiation versions", "QUICv1, drafts 29-27",
        ", ".join(quic.dominant_versions()))
    row(lines, "§6", "ASes hosting ingress AND egress", "AS36183",
        ", ".join(f"AS{a}" for a in sorted(overlap.overlap_asns)))
    row(lines, "§6", "ingress/egress share a last hop", "yes",
        "yes" if overlap.shared_last_hop else "no")
    row(lines, "§6", "AS36183 announced prefixes (v4+v6)", "478 + 1335",
        f"{overlap.announced_v4} + {overlap.announced_v6}")
    row(lines, "§6", "prefixes with ingress / egress / both", "201 / 1472 / 0",
        f"{overlap.ingress_prefixes} / {overlap.egress_prefixes} / "
        f"{overlap.shared_prefixes}")
    row(lines, "§6", "used prefix fraction", "92.2 %", f"{overlap.used_fraction:.1%}")
    row(lines, "§6", "AS36183 first BGP occurrence", "2021-06",
        f"{overlap.first_seen[0]}-{overlap.first_seen[1]:02d}"
        if overlap.first_seen else "never")

    emit(lines)
    emit(lines, "## Rendered tables")
    for table in (table1, table2, table3, table4):
        emit(lines)
        emit(lines, "```")
        emit(lines, table.render())
        emit(lines, "```")
    emit(lines)
    emit(lines, "## Notes")
    emit(lines)
    emit(lines, "- Scan volumes and durations are simulated-time quantities; the")
    emit(lines, f"  April ECS scan sent {april.queries_sent} queries over")
    emit(lines, f"  {april.duration_hours():.1f} simulated hours under the 2.2 q/s limit.")
    emit(lines, "- Rotation statistics depend on the seeded RNG; the asserted")
    emit(lines, "  property is the paper's (>66 % change rate, small pools),")
    emit(lines, "  not an exact count.")
    emit(lines, "- See DESIGN.md for the substitution table (what the paper used")
    emit(lines, "  → what this repo builds → why behaviour is preserved).")

    report = "\n".join(lines) + "\n"
    if args.output:
        with open(args.output, "w") as handle:
            handle.write(report)
        print(f"wrote {args.output}", file=sys.stderr)
    else:
        print(report)


if __name__ == "__main__":
    main()
