#!/usr/bin/env python3
"""The Section 4.1 blocking study and the resolver survey.

Classifies, per probe, whether iCloud Private Relay is blocked at the
DNS level: timeouts cross-checked against a control domain, forged
NXDOMAIN / NOERROR-without-data / REFUSED responses, and one DNS
hijack pointing at a filtering service.  Also surveys which public
resolvers the probe population sits behind (whoami-style measurement).

Usage::

    python examples/blocking_study.py [--scale 0.1]
"""

from __future__ import annotations

import argparse

from repro import WorldConfig, build_world
from repro.netmodel.addr import Prefix
from repro.relay.service import RELAY_DOMAIN_QUIC
from repro.scan import AtlasIngressScanner, classify_blocking
from repro.worldgen.internet import RESOLVER_BLOCKS
from repro.worldgen.world import CONTROL_DOMAIN

INGRESS_ASNS = {714, 36183}


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=float, default=0.1)
    parser.add_argument("--seed", type=int, default=2022)
    args = parser.parse_args()

    world = build_world(WorldConfig(seed=args.seed, scale=args.scale))
    world.clock.advance_to(world.scan_start(2022, 4))

    print(
        f"Probe platform: {len(world.atlas)} probes in "
        f"{len(world.atlas.distinct_asns())} ASes and "
        f"{len(world.atlas.distinct_countries())} countries"
    )
    print(f"Regional distribution: {world.atlas.probes_by_region()}")

    # -- resolver survey ---------------------------------------------------
    scanner = AtlasIngressScanner(world.atlas, world.routing)
    blocks = {
        provider: Prefix.parse(block)
        for provider, (block, _asn) in RESOLVER_BLOCKS.items()
    }
    shares = scanner.survey_resolvers(blocks)
    print("\nResolver survey (whoami-style):")
    for provider, share in sorted(shares.items(), key=lambda kv: -kv[1]):
        print(f"  {provider:>10}: {share:6.1%}")
    print(
        f"  => {scanner.public_resolver_share(shares):.0%} of probes sit "
        "behind a public resolver (paper: more than half)"
    )

    # -- blocking classification -------------------------------------------
    report = classify_blocking(
        world.atlas, world.routing, RELAY_DOMAIN_QUIC, CONTROL_DOMAIN, INGRESS_ASNS
    )
    print("\nBlocking study:")
    print(f"  probes measured:        {report.total_probes}")
    print(
        f"  timeouts:               {report.timeouts} ({report.timeout_share:.1%}) "
        f"— control domain: {report.timeouts_control} "
        f"(=> blocking? {report.timeouts_attributed_to_blocking})"
    )
    print(
        f"  failed with a response: {report.failures_with_response} "
        f"({report.failure_share:.1%})"
    )
    for rcode, count in sorted(report.rcode_counts.items(), key=lambda kv: -kv[1]):
        print(
            f"    {rcode:>9}: {count:5d} "
            f"({report.rcode_share_of_failures(rcode):5.1%} of failures)"
        )
    print(f"  DNS hijacks:            {report.hijacked_probes}")
    print(f"  REFUSED verified:       {report.refused_verified}")
    print(
        f"  => blocked probes:      {report.blocked_probes} "
        f"({report.blocked_share:.1%}; paper: 645 probes, 5.5 %)"
    )


if __name__ == "__main__":
    main()
