#!/usr/bin/env python3
"""Quickstart: build a world, enumerate ingress relays, inspect egress.

Runs in a few seconds on a scale-0.02 world.  The same code drives the
full-scale reproduction — only the ``--scale`` changes.

Usage::

    python examples/quickstart.py [--scale 0.02] [--seed 2022]
"""

from __future__ import annotations

import argparse

from repro import WorldConfig, build_world
from repro.analysis import build_table3
from repro.relay.service import RELAY_DOMAIN_QUIC
from repro.scan import EcsScanner


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=float, default=0.02, help="world scale (1.0 = paper scale)")
    parser.add_argument("--seed", type=int, default=2022)
    args = parser.parse_args()

    print(f"Building a scale-{args.scale} world (seed {args.seed}) ...")
    world = build_world(WorldConfig(seed=args.seed, scale=args.scale))

    # 1. Enumerate ingress relays with an ECS scan (the paper's core scan).
    world.clock.advance_to(world.scan_start(2022, 4))
    scanner = EcsScanner(world.route53, world.routing, world.clock)
    result = scanner.scan(RELAY_DOMAIN_QUIC)
    by_asn = {asn: len(addrs) for asn, addrs in result.addresses_by_asn().items()}
    print(
        f"\nECS scan: {result.queries_sent} queries over "
        f"{result.duration_hours():.1f} simulated hours uncovered "
        f"{len(result.addresses())} ingress addresses:"
    )
    for asn, count in sorted(by_asn.items()):
        print(f"  AS{asn}: {count} addresses")

    # 2. Inspect the published egress list (Table 3).
    table3 = build_table3(world.egress_list_may, world.routing)
    print()
    print(table3.render())

    # 3. One relayed request: the web server sees only the egress address.
    client = world.make_vantage_client()
    observation = client.request(world.web_server)
    print(
        f"\nRelayed request: client {client.address} -> ingress "
        f"{observation.ingress_address} (AS{observation.ingress_asn}) -> egress "
        f"{observation.egress_address} (AS{observation.egress_asn})"
    )
    print(f"The server logged: {world.web_server.log[-1].requester} (not the client!)")


if __name__ == "__main__":
    main()
