#!/usr/bin/env python3
"""The Section 4.3 / Section 6 study: scans through the relay.

Runs the paper's measurement client from the vantage: 5-minute rounds
over a scan day (open DNS and forced-ingress variants → Figure 3), a
48-hour 30-second-interval scan (rotation statistics), QUIC probing of
ingress nodes, and the traceroute check that Akamai-PR ingress and
egress share a last hop.

Usage::

    python examples/relay_rotation_study.py [--scale 0.02]
"""

from __future__ import annotations

import argparse

from repro import WorldConfig, build_world
from repro.analysis import build_overlap_report, build_rotation_report
from repro.dns.rr import RRType
from repro.netmodel.asn import operator_name
from repro.relay.client import DnsConfig
from repro.relay.ingress import RelayProtocol
from repro.relay.service import RELAY_DOMAIN_QUIC
from repro.scan import (
    EcsScanner,
    QuicScanner,
    RelayScanConfig,
    RelayScanner,
)

AKAMAI_PR = 36183


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=float, default=0.02)
    parser.add_argument("--seed", type=int, default=2022)
    args = parser.parse_args()

    world = build_world(WorldConfig(seed=args.seed, scale=args.scale))
    world.clock.advance_to(world.scan_start(2022, 4))

    # Ingress addresses, needed to force a specific ingress via local DNS.
    ecs = EcsScanner(world.route53, world.routing, world.clock).scan(
        RELAY_DOMAIN_QUIC
    )
    akamai_ingress = sorted(
        a for a in ecs.addresses() if world.routing.origin_of(a) == AKAMAI_PR
    )[0]

    # -- Figure 3: one scan day, open vs fixed DNS ------------------------
    open_client = world.make_vantage_client()
    open_day = RelayScanner(
        open_client, world.web_server, world.echo_server, world.clock
    ).run(RelayScanConfig(300.0, 86400.0), "open")
    fixed_client = world.make_vantage_client(
        DnsConfig.fixed({("mask.icloud.com", RRType.A): [akamai_ingress]})
    )
    fixed_day = RelayScanner(
        fixed_client, world.web_server, world.echo_server, world.clock
    ).run(RelayScanConfig(300.0, 86400.0), "fixed")

    print("Figure 3 — egress operator changes over a scan day:")
    for series in (open_day, fixed_day):
        changes = series.operator_changes()
        print(f"  {series.label}: {len(series)} rounds, {len(changes)} operator changes")
        for when, old, new in changes:
            print(
                f"    t={when / 3600.0:5.1f}h  {operator_name(old)} -> {operator_name(new)}"
            )

    # -- 48-hour fine-grained rotation scan --------------------------------
    fine = RelayScanner(
        open_client, world.web_server, world.echo_server, world.clock
    ).run(RelayScanConfig(30.0, 2 * 86400.0), "open-30s")
    report = build_rotation_report(fine, fixed_day, world.egress_list_may)
    print("\nRotation statistics (48 h at 30 s intervals):")
    print(report.render())

    # -- QUIC probing -------------------------------------------------------
    probe_targets = sorted(ecs.addresses())[:20]
    quic = QuicScanner(world.service).scan(list(probe_targets))
    print(
        f"\nQUIC probing of {quic.probed} ingress addresses: "
        f"{quic.handshake_timeouts} handshakes timed out (responses: "
        f"{quic.handshake_responses}); version negotiation advertises "
        f"{', '.join(quic.dominant_versions())}"
    )

    # -- Section 6: the correlation surface --------------------------------
    # Traceroute the Akamai-PR ingress and egress addresses the vantage's
    # own scans actually used (they are served by the same regional site).
    used_ingress = sorted(
        a for a in fine.ingress_addresses()
        if world.routing.origin_of(a) == AKAMAI_PR
    )
    akamai_egress = sorted(
        r.curl.egress_address for r in fine.rounds if r.curl.egress_asn == AKAMAI_PR
    )
    overlap = build_overlap_report(
        world.routing,
        world.history,
        ecs.addresses(),
        set(),
        world.egress_list_may,
        world.topology,
        world.vantage_router_id,
        used_ingress[0] if used_ingress else None,
        akamai_egress[0] if akamai_egress else None,
    )
    print("\nSection 6 — correlation surface:")
    print(overlap.render())


if __name__ == "__main__":
    main()
