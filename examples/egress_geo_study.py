#!/usr/bin/env python3
"""The Section 4.2 egress study: Tables 3/4, Figures 2/4/5, geo facts.

Parses the published egress range list, attributes subnets to operator
ASes via BGP, and reports the deployment's geographic shape — including
the US bias, the CC-coverage overlap structure, and the finding that a
commercial geolocation DB simply adopted Apple's published mapping.

Optionally exports the figure data series as CSV files.

Usage::

    python examples/egress_geo_study.py [--scale 0.05] [--export-dir OUT]
"""

from __future__ import annotations

import argparse
import csv
import pathlib

from repro import WorldConfig, build_world
from repro.analysis import (
    build_egress_facts,
    build_geo_scatter,
    build_location_cdfs,
    build_table3,
    build_table4,
)
from repro.netmodel.asn import operator_name


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=float, default=0.05)
    parser.add_argument("--seed", type=int, default=2022)
    parser.add_argument("--export-dir", type=pathlib.Path, default=None)
    args = parser.parse_args()

    world = build_world(WorldConfig(seed=args.seed, scale=args.scale))
    egress = world.egress_list_may

    print(f"Egress list snapshot: {len(egress)} subnets "
          f"(January snapshot: {len(world.egress_list_jan)})")
    print()
    print(build_table3(egress, world.routing).render())
    print()
    print(build_table4(egress, world.routing).render())
    print()
    facts = build_egress_facts(egress, world.routing, world.egress_list_jan, world.geodb)
    print(facts.render())

    # Figure 4: CDFs of subnets over cities/countries per operator.
    print("\nFigure 4 (CDF extents — locations per operator/version):")
    for cdf in build_location_cdfs(egress, world.routing):
        print(
            f"  {operator_name(cdf.asn):>10} IPv{cdf.version} {cdf.granularity:>7}: "
            f"{cdf.location_count()} locations, "
            f"top-10 hold {sum(cdf.counts[:10]) / max(1, sum(cdf.counts)):.0%} of subnets"
        )

    if args.export_dir is not None:
        args.export_dir.mkdir(parents=True, exist_ok=True)
        scatter = build_geo_scatter(egress, world.routing, world.gazetteer)
        for asn, points in scatter.items():
            path = args.export_dir / f"fig2_scatter_{operator_name(asn)}.csv"
            with path.open("w", newline="") as handle:
                writer = csv.writer(handle)
                writer.writerow(["lat", "lon"])
                writer.writerows(points)
            print(f"wrote {path} ({len(points)} points)")
        for cdf in build_location_cdfs(egress, world.routing):
            path = (
                args.export_dir
                / f"fig4_cdf_{operator_name(cdf.asn)}_v{cdf.version}_{cdf.granularity}.csv"
            )
            with path.open("w", newline="") as handle:
                writer = csv.writer(handle)
                writer.writerow(["rank", "cumulative_fraction"])
                writer.writerows(cdf.series())
            print(f"wrote {path}")


if __name__ == "__main__":
    main()
