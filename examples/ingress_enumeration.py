#!/usr/bin/env python3
"""The Section 4.1 campaign: monthly ECS scans, Atlas validation, IPv6.

Reproduces Tables 1 and 2, the ECS-vs-Atlas comparison (1586 vs 1382
with a single Atlas-only address at paper scale), and the IPv6 ingress
enumeration (1575 addresses across the same two ASes).

Usage::

    python examples/ingress_enumeration.py [--scale 0.05]
"""

from __future__ import annotations

import argparse

from repro import WorldConfig, build_world
from repro.analysis import build_table1, build_table2
from repro.relay.service import RELAY_DOMAIN_FALLBACK, RELAY_DOMAIN_QUIC
from repro.scan import AtlasIngressScanner, EcsScanner

INGRESS_ASNS = {714, 36183}


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=float, default=0.05)
    parser.add_argument("--seed", type=int, default=2022)
    args = parser.parse_args()

    world = build_world(WorldConfig(seed=args.seed, scale=args.scale))
    scanner = EcsScanner(world.route53, world.routing, world.clock)

    # -- monthly campaign (January through April 2022) -------------------
    monthly = []
    for year, month in world.scan_months():
        world.clock.advance_to(world.scan_start(year, month))
        default = scanner.scan(RELAY_DOMAIN_QUIC)
        fallback = None
        if (year, month) != (2022, 1):  # the January fallback scan is absent
            fallback = scanner.scan(RELAY_DOMAIN_FALLBACK)
        monthly.append((year, month, default, fallback))
        print(
            f"{year}-{month:02d}: {len(default.addresses())} QUIC relays "
            f"({default.queries_sent} queries, "
            f"{default.duration_hours():.1f} h simulated)"
        )
    april = monthly[-1][2]

    table1 = build_table1(monthly)
    print()
    print(table1.render())
    print(
        f"QUIC relays grew {table1.quic_growth():+.0%}; the TCP fallback "
        f"fleet grew {table1.fallback_growth():+.0%} (paper: +34 % / +293 %)"
    )

    table2 = build_table2(april, world.routing, world.population)
    print()
    print(table2.render())
    print(
        f"Apple serves {table2.apple_share_of_all_subnets:.0%} of all client "
        "subnets from a quarter of the addresses (paper: 69 %)"
    )

    # -- Atlas validation -------------------------------------------------
    atlas_time = world.deployment.april_scan_start + 40 * 3600.0
    if world.clock.now < atlas_time:
        world.clock.advance_to(atlas_time)
    atlas = AtlasIngressScanner(world.atlas, world.routing, INGRESS_ASNS)
    validation = atlas.validate_against_ecs(RELAY_DOMAIN_QUIC, april.addresses())
    print(
        f"\nRIPE-Atlas-style validation: Atlas saw {validation.atlas_count} "
        f"addresses, the ECS scan {validation.ecs_count}; "
        f"{len(validation.atlas_only)} Atlas-only (a relay that came online "
        f"after the 40-hour ECS scan), {len(validation.ecs_only)} ECS-only."
    )

    # -- IPv6 (four AAAA rounds) ------------------------------------------
    v6_report = None
    for _ in range(4):
        v6_report = atlas.measure_ingress_v6(RELAY_DOMAIN_QUIC, v6_report)
    by_asn = v6_report.by_asn(world.routing)
    print(
        f"IPv6 ingress via Atlas: {len(v6_report.addresses)} addresses "
        f"({', '.join(f'AS{a}: {n}' for a, n in sorted(by_asn.items()))}; "
        "paper: 1575 = 346 Apple + 1229 Akamai)"
    )


if __name__ == "__main__":
    main()
