#!/usr/bin/env python3
"""Network-operator impact study (the paper's §6 discussion).

What changes for passive network analysis once clients move behind the
relay?  This example runs three operator perspectives:

1. an **ISP monitor** attributing access-network flows to services —
   with relay adoption, attribution collapses for relayed flows and the
   ingress relays surface as dominant destinations;
2. a **server-side IDS** watching request sources — egress rotation
   looks like anomalous address churn until the published egress list
   is consulted (the paper's mitigation);
3. the **QoE view** — direct vs relayed round-trip times over the
   simulated topology, with and without the CDN-backbone optimisation.

Usage::

    python examples/operator_impact_study.py [--scale 0.01]
"""

from __future__ import annotations

import argparse

from repro import WorldConfig, build_world
from repro.analysis import (
    IspMonitor,
    PassiveFlow,
    ServerSideIds,
    build_routing_report,
    compare_paths,
)
from repro.relay.service import RELAY_DOMAIN_QUIC
from repro.scan import EcsScanner, RelayScanConfig, RelayScanner


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=float, default=0.01)
    parser.add_argument("--seed", type=int, default=2022)
    args = parser.parse_args()

    world = build_world(WorldConfig(seed=args.seed, scale=args.scale))
    world.clock.advance_to(world.scan_start(2022, 4))

    # The ingress dataset an operator would take from our published scans.
    ecs = EcsScanner(world.route53, world.routing, world.clock).scan(
        RELAY_DOMAIN_QUIC
    )
    ingress_dataset = ecs.addresses()
    print(f"ingress dataset: {len(ingress_dataset)} addresses")

    # ---- 1. ISP monitor ---------------------------------------------------
    client = world.make_vantage_client()
    scan = RelayScanner(
        client, world.web_server, world.echo_server, world.clock
    ).run(RelayScanConfig(60.0, 7200.0), "traffic")
    flows = []
    for round_ in scan.rounds:
        # What the client ISP sees: flows towards the ingress relay.
        flows.append(
            PassiveFlow(
                round_.timestamp,
                client.address,
                round_.curl.ingress_address,
                24_000,
                true_service="web",
            )
        )
    # Plus some unrelayed baseline traffic.
    flows += [
        PassiveFlow(i * 60.0, client.address, world.echo_server.address, 8_000, "echo")
        for i in range(30)
    ]
    monitor = IspMonitor(
        ingress_dataset, service_map={world.echo_server.address: "echo"}
    )
    report = monitor.analyze(flows)
    print("\nISP monitor:")
    print(f"  flows: {report.total_flows}, relayed: {report.relay_flows} "
          f"({report.relay_share:.0%})")
    print(f"  attributable services: {report.attributed}")
    print(f"  unattributable bytes:  {report.unattributable_bytes}")
    print(f"  top destination is an ingress relay: "
          f"{report.top_destinations[0][0] in ingress_dataset}")
    print(f"  service-attribution error: {monitor.attribution_error(flows):.0%}")

    # ---- 2. server-side IDS ------------------------------------------------
    requests = [(e.timestamp, e.requester) for e in world.web_server.log]
    naive = ServerSideIds(window_seconds=300.0, churn_threshold=3).analyze(requests)
    mitigated = ServerSideIds(
        window_seconds=300.0, churn_threshold=3, egress_list=world.egress_list_may
    ).analyze(requests)
    print("\nserver-side IDS (address churn):")
    print(f"  naive:     {len(naive.alerts)} alerts over "
          f"{naive.windows_evaluated} windows")
    print(f"  mitigated: {len(mitigated.alerts)} alerts "
          f"({mitigated.relay_addresses_recognised} requests recognised as "
          "relay egress via the published list)")

    # ---- 3. AS-level routing (future work i) -------------------------------
    clients = [c.asys.number for c in world.ground.client_ases]
    routing_report = build_routing_report(world.as_graph, clients)
    print("\nAS-level routing towards the ingress layer:")
    print("  " + routing_report.render().replace("\n", "\n  "))

    # ---- 4. QoE ---------------------------------------------------------------
    # Prefer a Cloudflare round: its egress sits behind a different site
    # than the ingress, so the inter-relay backbone segment is non-trivial.
    sample = next(
        (r for r in scan.rounds if r.curl.egress_asn == 13335), scan.rounds[0]
    )
    for factor, label in ((1.0, "no backbone optimisation"), (0.6, "Argo-style backbone")):
        comparison = compare_paths(
            world.topology,
            world.vantage_router_id,
            sample.curl.ingress_address,
            sample.curl.egress_address,
            world.echo_server.address,
            backbone_factor=factor,
        )
        print(
            f"\nQoE ({label}): direct {comparison.direct_rtt_ms:.1f} ms vs "
            f"relayed {comparison.relayed_rtt_ms:.1f} ms "
            f"(+{comparison.overhead_ms:.1f} ms)"
        )


if __name__ == "__main__":
    main()
